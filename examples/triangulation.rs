//! Minimum-weight triangulation of convex polygons: weighted vertices and
//! geometric (perimeter-cost) variants, with an ASCII rendering of the
//! chosen diagonals.
//!
//! ```text
//! cargo run --release --example triangulation
//! ```

use sublinear_dp::prelude::*;

fn main() {
    // A weighted hexagon (the classic textbook instance).
    let poly = WeightedPolygon::new(vec![3, 7, 4, 5, 2, 6]);
    let (cost, diagonals) = poly.optimal_triangulation();
    println!("weighted hexagon, vertex weights [3, 7, 4, 5, 2, 6]");
    println!("  minimum triangulation weight: {cost}");
    println!("  diagonals: {diagonals:?}");
    assert_eq!(diagonals.len(), 6 - 3);

    // Parallel solver agreement.
    let sub = solve_sublinear(&poly, &SolverConfig::default());
    assert_eq!(sub.value(), cost);
    println!("  parallel solver agrees: {}", sub.value());

    // Geometric: a squashed ellipse — the optimum avoids long chords.
    let m = 16usize;
    let pts: Vec<(f64, f64)> = (0..m)
        .map(|t| {
            let a = 2.0 * std::f64::consts::PI * t as f64 / m as f64;
            (2.0 * a.cos(), 0.6 * a.sin())
        })
        .collect();
    let ellipse = PointPolygon::new(pts);
    let (perimeter_cost, diags) = ellipse.optimal_triangulation();
    println!("\nsquashed ellipse with {m} vertices:");
    println!("  total triangle-perimeter cost: {perimeter_cost:.4}");
    println!("  diagonals ({}): {diags:?}", diags.len());

    // Compare with the fan triangulation from vertex 0.
    let fan_cost: f64 = {
        let d = |a: usize, b: usize| {
            let pa = (
                2.0 * (2.0 * std::f64::consts::PI * a as f64 / m as f64).cos(),
                0.6 * (2.0 * std::f64::consts::PI * a as f64 / m as f64).sin(),
            );
            let pb = (
                2.0 * (2.0 * std::f64::consts::PI * b as f64 / m as f64).cos(),
                0.6 * (2.0 * std::f64::consts::PI * b as f64 / m as f64).sin(),
            );
            ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt()
        };
        (1..m - 1)
            .map(|k| d(0, k) + d(k, k + 1) + d(0, k + 1))
            .sum()
    };
    println!("  fan triangulation cost:        {fan_cost:.4}");
    println!(
        "  optimal saves {:.2}% over the fan",
        100.0 * (1.0 - perimeter_cost / fan_cost)
    );
    assert!(perimeter_cost <= fan_cost + 1e-9);

    // Large instance through the reduced (§5) solver.
    let big = sublinear_dp::apps::generators::random_polygon(65, 30, 7);
    let red = solve_reduced(&big, &ReducedConfig::default());
    let oracle = solve_sequential(&big);
    assert_eq!(red.value(), oracle.root());
    println!(
        "\n64-gon via the §5 reduced-processor algorithm: {} (oracle {}) — ok",
        red.value(),
        oracle.root()
    );
}
