//! Convergence study (§6/§7): how the optimal tree's *shape* dictates the
//! number of iterations the algorithm needs — zigzag Theta(sqrt n),
//! skewed/balanced/random O(log n) — and what the §7 stopping rules save.
//!
//! ```text
//! cargo run --release --example convergence_study [n]
//! ```

use sublinear_dp::apps::generators;
use sublinear_dp::prelude::*;

fn iterations<P: DpProblem<u64> + ?Sized>(p: &P, term: Termination) -> (u64, u64) {
    let cfg = SolverConfig {
        exec: ExecBackend::Parallel,
        termination: term,
        record_trace: false,
        ..Default::default()
    };
    let sol = solve_sublinear(p, &cfg);
    (sol.trace.iterations, sol.trace.schedule_bound)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    println!("optimal-tree shape vs iterations to fixpoint, n = {n}");
    println!(
        "(schedule bound 2*ceil(sqrt(n)) = {}, log2(n) = {:.1})\n",
        sublinear_dp::core::schedule_bound(n),
        (n as f64).log2()
    );

    let instances: Vec<(&str, sublinear_dp::core::problem::TabulatedProblem<u64>)> = vec![
        (
            "zigzag-forced   (Fig. 2a, worst case)",
            generators::zigzag_instance(n),
        ),
        ("skewed-forced   (Fig. 2b)", generators::skewed_instance(n)),
        (
            "balanced-forced (complete)",
            generators::balanced_instance(n),
        ),
        (
            "random-forced   (§6 model)",
            generators::random_shape_instance(n, 2024),
        ),
    ];
    println!("{:<40} {:>9} {:>12}", "instance", "fixpoint", "w-stable-2");
    for (name, p) in &instances {
        let (fx, _) = iterations(p, Termination::Fixpoint);
        let (ws, _) = iterations(p, Termination::WStableTwice);
        println!("{name:<40} {fx:>9} {ws:>12}");
    }

    println!("\nrandom matrix chains (5 seeds):");
    println!("{:<40} {:>9} {:>12}", "instance", "fixpoint", "w-stable-2");
    for seed in 0..5u64 {
        let p = generators::random_chain(n, 100, seed);
        let (fx, _) = iterations(&p, Termination::Fixpoint);
        let (ws, _) = iterations(&p, Termination::WStableTwice);
        println!(
            "{:<40} {fx:>9} {ws:>12}",
            format!("random chain (seed {seed})")
        );
    }

    println!(
        "\nThe zigzag shape pins the algorithm to its Theta(sqrt n) worst case because the \
         restricted a-square cannot compose partial trees across a turn; every other shape \
         admits binary decompositions and converges in O(log n) iterations (§6). The §7 \
         'w unchanged twice' heuristic stops earlier still and — capped by the schedule — \
         is always exact."
    );
}
