//! PRAM cost accounting (E5 companion): replay the three parallel
//! algorithms on the CREW cost model, print their work/depth/processor
//! figures, Brent times and a Gantt timeline, and run a fully audited
//! exclusive-write execution.
//!
//! ```text
//! cargo run --release --example pram_accounting [n]
//! ```

use sublinear_dp::apps::generators;
use sublinear_dp::core::pram_exec::{
    account_reduced, account_rytter, account_sublinear, audited_sublinear_value,
};
use sublinear_dp::core::prelude::*;
use sublinear_dp::pram::Timeline;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let p = generators::random_chain(n, 60, 7);
    let oracle = solve_sequential(&p).root();
    println!("instance: random matrix chain, n = {n}, c(0,n) = {oracle}\n");

    let runs = [
        ("sublinear (§2)", account_sublinear(&p)),
        ("reduced   (§5)", account_reduced(&p)),
        ("rytter    [8]", account_rytter(&p)),
    ];
    for (name, run) in &runs {
        assert_eq!(run.value, oracle);
        let m = run.pram.metrics().clone();
        let procs = run.pram.processors_for_depth(1.0);
        println!("--- {name}: {} iterations ---", run.iterations);
        println!(
            "  work {:>12}   depth {:>6}   processors-for-depth {:>9}   PT {}",
            m.work,
            m.depth,
            procs,
            procs as u128 * m.depth as u128
        );
        println!("  work by operation: {:?}", run.pram.work_by_operation());
        for p_count in [1u64, 64, 4096, procs] {
            println!(
                "  Brent time on p = {:>9}: {}",
                p_count,
                run.pram.brent_time(p_count)
            );
        }
        let tl = Timeline::schedule(&run.pram, procs.max(1) / 4 + 1);
        println!("  timeline at a quarter of the processors-for-depth:");
        for line in tl.render_gantt(56).lines() {
            println!("    {line}");
        }
        println!();
    }

    println!("--- audited CREW execution (every read/write checked) ---");
    let value = audited_sublinear_value(&p).expect("exclusive-write discipline violated");
    assert_eq!(value, oracle);
    println!("audited run: c(0,n) = {value} — no write conflicts, no synchrony violations");
}
