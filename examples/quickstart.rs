//! Quickstart: solve a matrix-chain instance with the paper's sublinear
//! parallel algorithm and recover the optimal parenthesization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sublinear_dp::prelude::*;

fn main() {
    // The CLRS 15.2 example: six matrices with dimensions
    // 30x35, 35x15, 15x5, 5x10, 10x20, 20x25.
    let chain = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25]);

    // The paper's algorithm (§2): 2*ceil(sqrt(n)) iterations of
    // a-activate / a-square / a-pebble, executed data-parallel with rayon.
    let solution = solve_sublinear(&chain, &SolverConfig::default());
    println!("minimum scalar multiplications: {}", solution.value());
    println!(
        "iterations: {} (schedule bound 2*ceil(sqrt(n)) = {})",
        solution.trace.iterations, solution.trace.schedule_bound
    );

    // Recover and print the witness parenthesization.
    let (cost, order) = chain.optimal_order();
    assert_eq!(cost, solution.value());
    println!("optimal order: {}", chain.render(&order));

    // Cross-check against the sequential oracle and the §5 variant.
    assert_eq!(solve_sequential(&chain).root(), solution.value());
    assert_eq!(
        solve_reduced(&chain, &ReducedConfig::default()).value(),
        solution.value()
    );
    println!("sequential / reduced cross-checks: ok");
}
