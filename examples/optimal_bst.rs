//! Optimal binary search trees: the CLRS instance, tree rendering, and a
//! comparison of the O(n^3) DP, the Knuth O(n^2) speedup and the paper's
//! parallel algorithm.
//!
//! ```text
//! cargo run --release --example optimal_bst
//! ```

use sublinear_dp::apps::obst::BstNode;
use sublinear_dp::prelude::*;

fn render(node: &BstNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match node {
        BstNode::Dummy(i) => out.push_str(&format!("{indent}d{i}\n")),
        BstNode::Key { key, left, right } => {
            out.push_str(&format!("{indent}k{key}\n"));
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
    }
}

fn main() {
    // CLRS Figure 15.10 (probabilities x 100 for exact arithmetic):
    // p = [.15, .10, .05, .10, .20], q = [.05, .10, .05, .05, .05, .10].
    let bst = OptimalBst::new(vec![15, 10, 5, 10, 20], vec![5, 10, 5, 5, 5, 10]);
    let (cost, tree) = bst.optimal_tree();
    println!(
        "CLRS example: expected search cost = {}.{:02}",
        cost / 100,
        cost % 100
    );
    assert_eq!(cost, 275);
    let mut s = String::new();
    render(&tree, 0, &mut s);
    println!("optimal tree (k = keys, d = dummies):\n{s}");

    // The three solvers agree; Knuth's O(n^2) speedup is valid for OBST
    // (quadrangle inequality).
    let w_full = solve_sequential(&bst);
    let w_knuth = solve_knuth(&bst);
    assert!(w_full.table_eq(&w_knuth));
    let sub = solve_sublinear(&bst, &SolverConfig::default());
    assert_eq!(sub.value(), 275);
    println!("O(n^3) DP, O(n^2) Knuth and the parallel solver all agree: 2.75");

    // A bigger random instance: show the cost of ignoring frequencies.
    let m = 255usize;
    let big = sublinear_dp::apps::generators::random_obst(m, 1000, 99);
    let (opt, opt_tree) = big.optimal_tree();
    // A balanced-but-frequency-blind tree for comparison: build via the
    // parenthesization of a complete shape.
    let balanced_cost = {
        fn complete(i: usize, j: usize) -> ParenTree {
            if j == i + 1 {
                ParenTree::Leaf { i }
            } else {
                let k = (i + j).div_ceil(2);
                ParenTree::Node {
                    i,
                    j,
                    k,
                    left: Box::new(complete(i, k)),
                    right: Box::new(complete(k, j)),
                }
            }
        }
        let t = complete(0, m + 1);
        let b = OptimalBst::to_bst(&t);
        big.bst_cost(&b)
    };
    println!("\nrandom instance with {m} keys:");
    println!("  optimal tree cost:          {opt}");
    println!("  frequency-blind balanced:   {balanced_cost}");
    println!(
        "  optimality gain:            {:.1}%",
        100.0 * (1.0 - opt as f64 / balanced_cost as f64)
    );
    let depth = {
        fn h(n: &BstNode) -> usize {
            match n {
                BstNode::Dummy(_) => 0,
                BstNode::Key { left, right, .. } => 1 + h(left).max(h(right)),
            }
        }
        h(&opt_tree)
    };
    println!(
        "  optimal tree height:        {depth} (log2({m}) = {:.1})",
        (m as f64).log2()
    );
}
