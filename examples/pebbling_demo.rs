//! The §3 pebbling game, move by move, on the Fig. 2 tree shapes — watch
//! the zigzag tree crawl at Theta(sqrt n) while the complete tree races
//! in log n moves.
//!
//! ```text
//! cargo run --release --example pebbling_demo [n]
//! ```

use sublinear_dp::pebble::game::{PebbleGame, SquareRule};
use sublinear_dp::pebble::render::spine_profile;
use sublinear_dp::pebble::{gen, lemma_move_bound};

fn run(name: &str, tree: &sublinear_dp::pebble::FullBinaryTree) {
    let n = tree.n_leaves();
    let mut game = PebbleGame::new(tree, SquareRule::Modified);
    println!(
        "--- {name} (n = {n}, bound {} moves) ---",
        lemma_move_bound(n)
    );
    let total_nodes = tree.n_nodes();
    while !game.root_pebbled() {
        let stats = game.do_move();
        let pebbled = game.pebble_count();
        let bar_len = 40 * pebbled / total_nodes;
        println!(
            "move {:>3}: activated {:>4}  squared {:>5}  newly pebbled {:>4}  [{}{}]",
            game.moves(),
            stats.activated,
            stats.squared,
            stats.pebbled,
            "#".repeat(bar_len),
            " ".repeat(40 - bar_len),
        );
    }
    println!(
        "root pebbled after {} moves (bound {})\n",
        game.moves(),
        lemma_move_bound(n)
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    let zig = gen::zigzag(n);
    println!("zigzag spine: {}", spine_profile(&zig));
    run("zigzag (Fig. 2a — worst case)", &zig);

    run("complete (Fig. 2b)", &gen::complete(n));
    run("skewed (Fig. 2b)", &gen::skewed(n, gen::Side::Left));

    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1);
    run(
        "random uniform-split (§6 model)",
        &gen::random_split(n, &mut rng),
    );

    println!("--- same zigzag under Rytter's pointer-jump square ---");
    let mut game = PebbleGame::new(&zig, SquareRule::PointerJump);
    let stats = game.play();
    println!(
        "pointer jumping pebbles the zigzag in {} moves (vs Theta(sqrt n) = ~{:.0} modified)",
        stats.moves,
        1.4 * (n as f64).sqrt()
    );
}
