//! Matrix-chain multiplication, the full tour: all five solvers on one
//! instance, iteration traces, and the effect of association order.
//!
//! ```text
//! cargo run --release --example matrix_chain [n]
//! ```

use sublinear_dp::core::reconstruct::tree_cost;
use sublinear_dp::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    println!("matrix chain with n = {n} random matrices (seeded)\n");
    let chain = sublinear_dp::apps::generators::random_chain(n, 100, 2024);

    // 1. Sequential oracle.
    let w = solve_sequential(&chain);
    println!("sequential O(n^3):              c(0,n) = {}", w.root());

    // 2. Wavefront (the practical multicore algorithm, [10]).
    let wav = solve_wavefront_default(&chain);
    println!("wavefront O(n) x O(n^2) procs:  c(0,n) = {}", wav.root());

    // 3. The paper's sublinear algorithm with trace.
    let cfg = SolverConfig {
        exec: ExecBackend::Parallel,
        termination: Termination::Fixpoint,
        record_trace: true,
        ..Default::default()
    };
    let sub = solve_sublinear(&chain, &cfg);
    println!(
        "sublinear (paper §2):           c(0,n) = {} in {}/{} iterations ({:?})",
        sub.value(),
        sub.trace.iterations,
        sub.trace.schedule_bound,
        sub.trace.stop
    );

    // 4. The §5 reduced-processor variant.
    let red = solve_reduced(&chain, &ReducedConfig::default());
    println!("reduced (paper §5):             c(0,n) = {}", red.value());

    // 5. Rytter's baseline.
    let ryt = solve_rytter(&chain, &RytterConfig::default());
    println!(
        "rytter [8]:                     c(0,n) = {} in {} iterations",
        ryt.value(),
        ryt.trace.iterations
    );

    assert!(w.table_eq(&sub.w) && w.table_eq(&red.w) && w.table_eq(&ryt.w));

    // The witness tree, and how bad the naive left-to-right order is.
    let (cost, tree) = chain.optimal_order();
    println!("\noptimal parenthesization: {}", chain.render(&tree));
    println!("optimal cost:             {cost}");
    let left_to_right = {
        // Fold ((A1 A2) A3) ... An as an explicit tree and cost it.
        fn leftist(i: usize, j: usize) -> ParenTree {
            if j == i + 1 {
                ParenTree::Leaf { i }
            } else {
                ParenTree::Node {
                    i,
                    j,
                    k: j - 1,
                    left: Box::new(leftist(i, j - 1)),
                    right: Box::new(ParenTree::Leaf { i: j - 1 }),
                }
            }
        }
        tree_cost(&chain, &leftist(0, n))
    };
    println!("left-to-right cost:       {left_to_right}");
    println!(
        "optimal saves {:.1}% over naive association",
        100.0 * (1.0 - cost as f64 / left_to_right as f64)
    );

    // Per-iteration trace of the sublinear run.
    println!("\niteration trace (square candidates, changed flags):");
    for rec in &sub.trace.per_iteration {
        println!(
            "  iter {:>2}: square={:>10} pebble_changed={} root_finite={}",
            rec.iteration, rec.square.candidates, rec.pebble.changed, rec.root_finite
        );
    }
}
