//! Hand-rolled argument parsing (no external parser dependency).
//!
//! Algorithm names, descriptions and flag applicability come from the
//! [`Algorithm`] registry in `pardp-core` — the CLI maintains no
//! algorithm table of its own.

use std::fmt;
use std::time::Duration;

use pardp_core::prelude::{
    Algorithm, ExecBackend, LogLevel, ProblemSpec, SolveKnob, SolveOptions, SpecError,
    SquareStrategy,
};

/// A parsing or execution error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError(e.0)
    }
}

/// The problem family of a `solve` command is the shared wire type
/// [`ProblemSpec`] — the family rules (arities, positivity) live in
/// `pardp_core::spec` only, so the `solve` parser, the `batch` job
/// reader, and the `serve` daemon agree on what a valid instance is.
pub type Problem = ProblemSpec;

/// The action of a `pardp cache <action> <dir>` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Print record counts, file size, and per-family/per-algorithm
    /// breakdowns of a persistent store directory.
    Stat,
    /// Delete every cached record (the directory itself stays).
    Clear,
}

/// The tree shape of a `game` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Fig. 2a zigzag caterpillar.
    Zigzag,
    /// Balanced splits.
    Complete,
    /// Left caterpillar.
    Skewed,
    /// Uniform random splits (seeded).
    Random,
}

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// `pardp solve <family> ...`
    Solve {
        /// The instance.
        problem: Problem,
        /// Solver selection (from the `pardp-core` registry).
        algo: Algorithm,
        /// Execution backend, if `--backend` was given explicitly (only
        /// accepted for algorithms with [`Algorithm::is_parallel`]).
        backend: Option<ExecBackend>,
        /// `a-square` kernel, if `--tile` was given explicitly (only
        /// accepted for algorithms with [`Algorithm::supports_tile`]).
        tile: Option<SquareStrategy>,
        /// Print the witness structure.
        witness: bool,
        /// Print the per-iteration trace (iterative algorithms only).
        trace: bool,
        /// Persistent solution-store directory (`--cache <dir>`); `None`
        /// solves cold (the default, or explicit `--no-cache`).
        cache: Option<String>,
    },
    /// `pardp batch <jobs.jsonl>`
    Batch {
        /// Path to the JSONL job file (one problem spec per line).
        path: String,
        /// Default algorithm for jobs without an `"algo"` field.
        algo: Algorithm,
        /// Backend the batch fans out over (`--backend`, default
        /// parallel).
        backend: Option<ExecBackend>,
        /// Regime threshold override (`--large-cells`): jobs with more
        /// `w`-table cells than this run on the parallel per-problem
        /// path.
        large_cells: Option<usize>,
        /// Persistent solution-store directory (`--cache <dir>`); `None`
        /// solves cold (the default, or explicit `--no-cache`).
        cache: Option<String>,
        /// Structured event log destination (`--log <path|->`): a JSONL
        /// file, or `-` for stderr. `None` disables telemetry.
        log: Option<String>,
        /// Event severity threshold (`--log-level`, default `info`).
        log_level: LogLevel,
    },
    /// `pardp serve (--addr <host:port> | --pipe)`
    Serve {
        /// TCP listen address (e.g. `127.0.0.1:7070`; port 0 picks one).
        addr: Option<String>,
        /// Serve one session over stdin/stdout instead of TCP.
        pipe: bool,
        /// Default algorithm for jobs without an `"algo"` field.
        algo: Algorithm,
        /// Worker pool the daemon drains jobs over (`--backend`).
        backend: Option<ExecBackend>,
        /// Regime threshold override (`--large-cells`), as in `batch`.
        large_cells: Option<usize>,
        /// Queue bound override (`--queue`); beyond it jobs are rejected
        /// with `overloaded`.
        queue: Option<usize>,
        /// Persistent solution-store directory (`--cache <dir>`); `None`
        /// serves cold (the default, or explicit `--no-cache`).
        cache: Option<String>,
        /// Per-job solve deadline (`--job-timeout <seconds>`): a job
        /// still solving after this is cancelled and answered with a
        /// `timeout` error line.
        job_timeout: Option<Duration>,
        /// Per-connection idle read timeout (`--idle-timeout <seconds>`,
        /// TCP only): silent connections are dropped.
        idle_timeout: Option<Duration>,
        /// Structured event log destination (`--log <path|->`): a JSONL
        /// file, or `-` for stderr (stdout stays a clean protocol
        /// channel). `None` disables telemetry.
        log: Option<String>,
        /// Event severity threshold (`--log-level`, default `info`).
        log_level: LogLevel,
    },
    /// `pardp cache (stat | clear) <dir>`
    Cache {
        /// What to do with the store.
        action: CacheAction,
        /// The persistent store directory.
        dir: String,
    },
    /// `pardp game <shape> <n>`
    Game {
        /// Tree shape.
        shape: Shape,
        /// Leaves.
        n: usize,
        /// Use Rytter's pointer-jump square.
        jump: bool,
        /// RNG seed for random shapes.
        seed: u64,
    },
    /// `pardp model <n> [--processors p]`
    Model {
        /// Problem size.
        n: usize,
        /// Processor count for Brent scheduling (0 = peak demand).
        processors: u64,
    },
    /// `pardp bound <n>`
    Bound {
        /// Problem size.
        n: usize,
    },
    /// `pardp help`
    Help,
}

/// The names of all algorithms that accept `--backend`, comma-separated.
fn parallel_algo_names() -> String {
    Algorithm::ALL
        .iter()
        .filter(|a| a.is_parallel())
        .map(|a| a.name())
        .collect::<Vec<_>>()
        .join(" | ")
}

/// The names of all algorithms that accept `--tile` / `--trace`.
fn tile_algo_names() -> String {
    Algorithm::ALL
        .iter()
        .filter(|a| a.supports_tile())
        .map(|a| a.name())
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Usage text. The algorithm list is generated from the
/// [`Algorithm`] registry, so it can never drift from the solvers the
/// core actually exposes.
pub fn usage() -> String {
    format!(
        "\
pardp — sublinear parallel dynamic programming (Huang–Liu–Viswanathan 1990/1992)

USAGE:
  pardp solve chain <d0,d1,...>        [--algo A] [--backend B] [--tile T] [--witness] [--trace] [--cache DIR]
  pardp solve obst --p <p1,..> --q <q0,..> [--algo A] [--backend B] [--tile T] [--witness]
  pardp solve polygon <w0,w1,...>      [--algo A] [--backend B] [--tile T] [--witness]
  pardp solve merge <l0,l1,...>        [--algo A] [--backend B] [--tile T] [--witness]
  pardp batch <jobs.jsonl>             [--algo A] [--backend B] [--large-cells C] [--cache DIR] [--log PATH|-] [--log-level L]
  pardp serve (--addr <host:port> | --pipe) [--algo A] [--backend B] [--large-cells C] [--queue N] [--cache DIR] [--job-timeout S] [--idle-timeout S] [--log PATH|-] [--log-level L]
  pardp cache (stat | clear) <dir>
  pardp game <zigzag|complete|skewed|random> <n> [--rule jump] [--seed S]
  pardp model <n> [--processors P]
  pardp bound <n>
  pardp help

ALGORITHMS (--algo, default sublinear):
{algos}\
BACKENDS (--backend): seq | parallel (default) | threads:<k> | <k>
  Selects the execution backend of the parallel solvers ({parallel}):
  single-threaded reference, the work-stealing pool at host size, or the
  pool capped at k workers. A bare number is shorthand for threads:<k>
  and must be at least 1 — write parallel to use every host core.
  Rejected for the purely sequential algorithms.
BATCH (pardp batch): solve many instances concurrently over one pool.
  Each input line is one JSON job:
    {{\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}}
    {{\"family\":\"obst\",\"values\":[15,10],\"q\":[5,10,5],\"algo\":\"reduced\"}}
  family: chain | obst | polygon | merge; values: dims / key freqs /
  vertex weights / run lengths; q: obst dummy frequencies; algo:
  optional per-job override of --algo. Output is JSONL: one result line
  per job (in input order) and a final summary line. Jobs with more
  than --large-cells w-table cells (default {large_cells}) run one at a
  time on the whole pool; the rest run whole-problem-per-worker.
SERVE (pardp serve): a persistent solving daemon over the same JSONL
  job schema as batch — one response line per request, in request
  order, bit-identical to a batch run apart from wall_seconds. TCP
  (--addr, thread per connection) or a single stdin/stdout session
  (--pipe). Extra request lines: {{\"cmd\":\"stats\"}} (counters and
  per-regime throughput) and {{\"cmd\":\"shutdown\"}} (stop admitting,
  drain every accepted job, exit; ctrl-C does the same). When the
  bounded queue (--queue, default {queue}) is full, a job is rejected
  immediately with {{\"job\":i,\"error\":\"overloaded\",\"kind\":\"overloaded\"}}.
  Every error line carries a machine-readable kind field: invalid |
  rejected | overloaded | timeout | internal. A panicking solve is
  isolated (kind internal) and the daemon keeps serving. --job-timeout S
  cancels a job still solving S seconds after a worker picks it up
  (kind timeout; fractional seconds accepted); --idle-timeout S drops a
  TCP connection that sends nothing for S seconds.
OBSERVABILITY (--log PATH|- [--log-level debug|info|error]): structured
  JSONL event stream for batch and serve — per-job lifecycle events
  (admitted, regime, cache, completed, plus rejected/fault/panic/timeout
  on failures) with gap-free sequence numbers, and a final summary
  event mirroring the stderr drain line. --log FILE writes the stream
  to FILE; --log - streams it to stderr, keeping stdout a clean
  protocol channel. The default level info omits connection open/close
  events (debug); error keeps failures only. Without --log nothing is
  emitted and output is byte-identical. {{\"cmd\":\"stats\"}} additionally
  reports p50/p90/p99 answer latency, queue_high_watermark, per-kind
  error counters, and aggregate Work/Span.
CACHING (--cache DIR | --no-cache): persistent solution store.
  With --cache DIR, solve/batch/serve reuse solutions stored under DIR
  (created on first use): repeats are served from the store
  bit-identically, and chain jobs that extend a cached prefix warm-start
  from it. --no-cache forces cold solves (the default). `pardp cache
  stat <dir>` prints record counts and sizes; `pardp cache clear <dir>`
  deletes the records. Knuth and --trace runs always solve cold.
TILING (--tile): auto (default) | naive | <t>
  a-square kernel of the iterative solvers ({tile}):
  flat-slice blocked/streamed with an auto-picked or explicit tile edge
  (a positive integer, e.g. --tile 64), or the naive per-cell reference.
  0 and other degenerate edges are rejected. The reduced and rytter
  solvers need no tile subdivision, so any positive edge selects the
  same streamed kernel as auto. All accepted choices produce identical
  tables. Rejected for algorithms without an a-square kernel.
",
        algos = Algorithm::listing(),
        parallel = parallel_algo_names(),
        tile = tile_algo_names(),
        large_cells = pardp_core::batch::DEFAULT_LARGE_JOB_CELLS,
        queue = pardp_core::serve::DEFAULT_QUEUE_CAPACITY,
    )
}

fn parse_list(s: &str) -> Result<Vec<u64>, CliError> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<u64>()
                .map_err(|_| CliError(format!("'{t}' is not a non-negative integer")))
        })
        .collect()
}

fn take_flag(rest: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = rest.iter().position(|a| a == flag) {
        rest.remove(pos);
        true
    } else {
        false
    }
}

fn take_value(rest: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = rest.iter().position(|a| a == flag) {
        if pos + 1 >= rest.len() {
            return Err(CliError(format!("{flag} needs a value")));
        }
        let v = rest.remove(pos + 1);
        rest.remove(pos);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Take a `--flag <seconds>` value as a duration: positive, finite,
/// fractions allowed (`0.5` is half a second).
fn take_seconds(rest: &mut Vec<String>, flag: &str) -> Result<Option<Duration>, CliError> {
    match take_value(rest, flag)? {
        None => Ok(None),
        Some(s) => {
            let secs: f64 = s
                .parse()
                .map_err(|_| CliError(format!("bad {flag} '{s}' (expected seconds, e.g. 2.5)")))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(CliError(format!(
                    "{flag} needs a positive number of seconds (got '{s}'); \
                     drop the flag to disable the timeout"
                )));
            }
            Ok(Some(Duration::from_secs_f64(secs)))
        }
    }
}

/// Take the shared `--log <path|->` / `--log-level <level>` pair of
/// `batch` and `serve`. The level defaults to `info`; giving it
/// without `--log` is pointless and rejected so a typo cannot silently
/// drop the event stream.
fn take_log(rest: &mut Vec<String>) -> Result<(Option<String>, LogLevel), CliError> {
    let log = take_value(rest, "--log")?;
    if let Some(path) = &log {
        if path.is_empty() {
            return Err(CliError(
                "--log needs a destination: a file path, or - for stderr".into(),
            ));
        }
    }
    let level = match take_value(rest, "--log-level")? {
        None => LogLevel::Info,
        Some(s) => {
            if log.is_none() {
                return Err(CliError(
                    "--log-level needs --log <path|-> (there is no event stream to filter)".into(),
                ));
            }
            LogLevel::parse(&s).map_err(CliError)?
        }
    };
    Ok((log, level))
}

/// Take the shared `--cache <dir>` / `--no-cache` pair of `solve`,
/// `batch`, and `serve`. Solving cold is already the default, so
/// `--no-cache` mostly serves scripts that want to force it explicitly —
/// but combining it with a directory is contradictory and rejected.
fn take_cache(rest: &mut Vec<String>) -> Result<Option<String>, CliError> {
    let dir = take_value(rest, "--cache")?;
    let off = take_flag(rest, "--no-cache");
    if off && dir.is_some() {
        return Err(CliError(
            "give one of --cache <dir> (reuse solutions across runs) or \
             --no-cache (solve everything cold), not both"
                .into(),
        ));
    }
    if let Some(d) = &dir {
        if d.is_empty() {
            return Err(CliError(
                "--cache needs a directory path; use --no-cache to solve cold".into(),
            ));
        }
    }
    Ok(dir)
}

/// Parse `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Parsed, CliError> {
    let mut rest: Vec<String> = argv.to_vec();
    if rest.is_empty() {
        return Ok(Parsed::Help);
    }
    let cmd = rest.remove(0);
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Parsed::Help),
        "solve" => {
            let algo = match take_value(&mut rest, "--algo")? {
                Some(s) => s.parse::<Algorithm>().map_err(CliError)?,
                None => Algorithm::Sublinear,
            };
            let backend = match take_value(&mut rest, "--backend")? {
                Some(s) => Some(s.parse::<ExecBackend>().map_err(CliError)?),
                None => None,
            };
            let tile = match take_value(&mut rest, "--tile")? {
                Some(s) => Some(s.parse::<SquareStrategy>().map_err(CliError)?),
                None => None,
            };
            let witness = take_flag(&mut rest, "--witness");
            let trace = take_flag(&mut rest, "--trace");
            let cache = take_cache(&mut rest)?;
            // Flags a non-capable algorithm would silently ignore are
            // rejected with pointed errors. The applicability rules are
            // `SolveOptions::validate_knob` — the same check the batch
            // reader and the serve daemon apply to per-job overrides —
            // so a flag and its JSONL field can never drift apart.
            let flag_check = |given: bool, opts: SolveOptions, knob: SolveKnob, flag: &str| {
                if !given {
                    return Ok(());
                }
                opts.validate_knob(algo, knob)
                    .map_err(|e| CliError(format!("{flag} {}", e.message)))
            };
            let d = SolveOptions::default();
            flag_check(backend.is_some(), d, SolveKnob::Exec, "--backend")?;
            flag_check(
                tile.is_some(),
                tile.map_or(d, |t| d.square(t)),
                SolveKnob::Square,
                "--tile",
            )?;
            flag_check(
                trace,
                d.record_trace(trace),
                SolveKnob::RecordTrace,
                "--trace",
            )?;
            if rest.is_empty() {
                return Err(CliError("solve needs a problem family".into()));
            }
            let family = rest.remove(0);
            let problem = match family.as_str() {
                "chain" => ProblemSpec::chain(parse_list(
                    rest.first()
                        .ok_or_else(|| CliError("chain needs dimensions".into()))?,
                )?)?,
                "obst" => {
                    let p = parse_list(
                        &take_value(&mut rest, "--p")?
                            .ok_or_else(|| CliError("obst needs --p".into()))?,
                    )?;
                    let q = parse_list(
                        &take_value(&mut rest, "--q")?
                            .ok_or_else(|| CliError("obst needs --q".into()))?,
                    )?;
                    ProblemSpec::obst(p, q)?
                }
                "polygon" => ProblemSpec::polygon(parse_list(
                    rest.first()
                        .ok_or_else(|| CliError("polygon needs weights".into()))?,
                )?)?,
                "merge" => ProblemSpec::merge(parse_list(
                    rest.first()
                        .ok_or_else(|| CliError("merge needs run lengths".into()))?,
                )?)?,
                other => {
                    return Err(CliError(format!(
                        "unknown problem family '{other}' (expected chain | obst | \
                         polygon | merge)"
                    )))
                }
            };
            Ok(Parsed::Solve {
                problem,
                algo,
                backend,
                tile,
                witness,
                trace,
                cache,
            })
        }
        "batch" => {
            let algo = match take_value(&mut rest, "--algo")? {
                Some(s) => s.parse::<Algorithm>().map_err(CliError)?,
                None => Algorithm::Sublinear,
            };
            let backend = match take_value(&mut rest, "--backend")? {
                Some(s) => Some(s.parse::<ExecBackend>().map_err(CliError)?),
                None => None,
            };
            let large_cells = match take_value(&mut rest, "--large-cells")? {
                Some(s) => Some(s.parse::<usize>().map_err(|_| {
                    CliError(format!("bad --large-cells '{s}' (expected a cell count)"))
                })?),
                None => None,
            };
            let cache = take_cache(&mut rest)?;
            let (log, log_level) = take_log(&mut rest)?;
            if rest.is_empty() {
                return Err(CliError(
                    "batch needs a JSONL job file (one problem per line)".into(),
                ));
            }
            Ok(Parsed::Batch {
                path: rest.remove(0),
                algo,
                backend,
                large_cells,
                cache,
                log,
                log_level,
            })
        }
        "serve" => {
            let algo = match take_value(&mut rest, "--algo")? {
                Some(s) => s.parse::<Algorithm>().map_err(CliError)?,
                None => Algorithm::Sublinear,
            };
            let backend = match take_value(&mut rest, "--backend")? {
                Some(s) => Some(s.parse::<ExecBackend>().map_err(CliError)?),
                None => None,
            };
            let large_cells = match take_value(&mut rest, "--large-cells")? {
                Some(s) => Some(s.parse::<usize>().map_err(|_| {
                    CliError(format!("bad --large-cells '{s}' (expected a cell count)"))
                })?),
                None => None,
            };
            let queue = match take_value(&mut rest, "--queue")? {
                Some(s) => {
                    let q: usize = s.parse().map_err(|_| {
                        CliError(format!("bad --queue '{s}' (expected a job count)"))
                    })?;
                    if q == 0 {
                        return Err(CliError(
                            "--queue 0 would reject every job as overloaded; give a \
                             positive bound (or drop the flag for the default)"
                                .into(),
                        ));
                    }
                    Some(q)
                }
                None => None,
            };
            let cache = take_cache(&mut rest)?;
            let (log, log_level) = take_log(&mut rest)?;
            let job_timeout = take_seconds(&mut rest, "--job-timeout")?;
            let idle_timeout = take_seconds(&mut rest, "--idle-timeout")?;
            let addr = take_value(&mut rest, "--addr")?;
            let pipe = take_flag(&mut rest, "--pipe");
            if addr.is_some() == pipe {
                return Err(CliError(
                    "serve needs exactly one of --addr <host:port> (TCP daemon) or \
                     --pipe (one session over stdin/stdout)"
                        .into(),
                ));
            }
            if pipe && idle_timeout.is_some() {
                return Err(CliError(
                    "--idle-timeout applies to TCP connections only; --pipe reads \
                     stdin to EOF"
                        .into(),
                ));
            }
            Ok(Parsed::Serve {
                addr,
                pipe,
                algo,
                backend,
                large_cells,
                queue,
                cache,
                job_timeout,
                idle_timeout,
                log,
                log_level,
            })
        }
        "cache" => {
            if rest.is_empty() {
                return Err(CliError(
                    "cache needs an action: cache stat <dir> | cache clear <dir>".into(),
                ));
            }
            let action = match rest.remove(0).as_str() {
                "stat" => CacheAction::Stat,
                "clear" => CacheAction::Clear,
                other => {
                    return Err(CliError(format!(
                        "unknown cache action '{other}' (expected stat | clear)"
                    )))
                }
            };
            if rest.is_empty() {
                return Err(CliError(
                    "cache needs the store directory (the --cache <dir> of a \
                     previous solve/batch/serve run)"
                        .into(),
                ));
            }
            Ok(Parsed::Cache {
                action,
                dir: rest.remove(0),
            })
        }
        "game" => {
            // --rule jump | modified
            let rule = take_value(&mut rest, "--rule")?;
            let jump = match rule.as_deref() {
                Some("jump") => true,
                Some("modified") | None => false,
                Some(other) => return Err(CliError(format!("unknown --rule '{other}'"))),
            };
            let seed = match take_value(&mut rest, "--seed")? {
                Some(s) => s.parse().map_err(|_| CliError("bad --seed".into()))?,
                None => 1,
            };
            if rest.len() < 2 {
                return Err(CliError("game needs <shape> <n>".into()));
            }
            let shape = match rest[0].as_str() {
                "zigzag" => Shape::Zigzag,
                "complete" => Shape::Complete,
                "skewed" => Shape::Skewed,
                "random" => Shape::Random,
                other => return Err(CliError(format!("unknown shape '{other}'"))),
            };
            let n: usize = rest[1]
                .parse()
                .map_err(|_| CliError(format!("bad n '{}'", rest[1])))?;
            if n == 0 {
                return Err(CliError("n must be positive".into()));
            }
            Ok(Parsed::Game {
                shape,
                n,
                jump,
                seed,
            })
        }
        "model" => {
            let processors = match take_value(&mut rest, "--processors")? {
                Some(s) => s.parse().map_err(|_| CliError("bad --processors".into()))?,
                None => 0,
            };
            let n: usize = rest
                .first()
                .ok_or_else(|| CliError("model needs <n>".into()))?
                .parse()
                .map_err(|_| CliError("bad n".into()))?;
            if n == 0 || n > 128 {
                return Err(CliError("model supports 1 <= n <= 128".into()));
            }
            Ok(Parsed::Model { n, processors })
        }
        "bound" => {
            let n: usize = rest
                .first()
                .ok_or_else(|| CliError("bound needs <n>".into()))?
                .parse()
                .map_err(|_| CliError("bad n".into()))?;
            Ok(Parsed::Bound { n })
        }
        other => Err(CliError(format!(
            "unknown command '{other}'; try 'pardp help'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parse_solve_chain_defaults() {
        let p = parse(&argv("solve chain 30,35,15")).unwrap();
        assert_eq!(
            p,
            Parsed::Solve {
                problem: ProblemSpec::Chain {
                    dims: vec![30, 35, 15]
                },
                algo: Algorithm::Sublinear,
                backend: None,
                tile: None,
                witness: false,
                trace: false,
                cache: None,
            }
        );
    }

    #[test]
    fn parse_tile_selection() {
        for (spec, expect) in [
            ("auto", SquareStrategy::Auto),
            ("naive", SquareStrategy::Naive),
            ("32", SquareStrategy::Tiled(32)),
        ] {
            let p = parse(&argv(&format!("solve --tile {spec} chain 2,3,4"))).unwrap();
            match p {
                Parsed::Solve { tile, .. } => assert_eq!(tile, Some(expect), "{spec}"),
                other => panic!("{other:?}"),
            }
        }
        let err = parse(&argv("solve --tile blocky chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("unknown square strategy"), "{err}");
        // Degenerate tile edges get a specific rejection, not a silent
        // fallback to auto.
        let err = parse(&argv("solve --tile 0 chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("degenerate"), "{err}");
        assert!(err.0.contains("auto"), "{err}");
    }

    #[test]
    fn parse_backend_error_messages() {
        let err = parse(&argv("solve --backend threads: chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("missing a worker count"), "{err}");
        let err = parse(&argv("solve --backend threads:lots chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("bad worker count 'lots'"), "{err}");
        // `--backend 0` / `threads:0` used to silently mean "all host
        // cores"; they are rejected with a pointer at `parallel` now.
        for spec in ["0", "threads:0"] {
            let err = parse(&argv(&format!("solve --backend {spec} chain 2,3,4"))).unwrap_err();
            assert!(err.0.contains("zero workers"), "{spec}: {err}");
            assert!(err.0.contains("parallel"), "{spec}: {err}");
        }
    }

    #[test]
    fn parse_batch_command() {
        let p = parse(&argv("batch jobs.jsonl")).unwrap();
        assert_eq!(
            p,
            Parsed::Batch {
                path: "jobs.jsonl".into(),
                algo: Algorithm::Sublinear,
                backend: None,
                large_cells: None,
                cache: None,
                log: None,
                log_level: LogLevel::Info,
            }
        );
        let p = parse(&argv(
            "batch --algo reduced --backend threads:2 --large-cells 50 jobs.jsonl",
        ))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Batch {
                path: "jobs.jsonl".into(),
                algo: Algorithm::Reduced,
                backend: Some(ExecBackend::Threads(2)),
                large_cells: Some(50),
                cache: None,
                log: None,
                log_level: LogLevel::Info,
            }
        );
        let err = parse(&argv("batch")).unwrap_err();
        assert!(err.0.contains("JSONL"), "{err}");
        let err = parse(&argv("batch --large-cells many jobs.jsonl")).unwrap_err();
        assert!(err.0.contains("--large-cells"), "{err}");
        let err = parse(&argv("batch --backend 0 jobs.jsonl")).unwrap_err();
        assert!(err.0.contains("zero workers"), "{err}");
    }

    #[test]
    fn parse_serve_command() {
        let p = parse(&argv("serve --pipe")).unwrap();
        assert_eq!(
            p,
            Parsed::Serve {
                addr: None,
                pipe: true,
                algo: Algorithm::Sublinear,
                backend: None,
                large_cells: None,
                queue: None,
                cache: None,
                job_timeout: None,
                idle_timeout: None,
                log: None,
                log_level: LogLevel::Info,
            }
        );
        let p = parse(&argv(
            "serve --addr 127.0.0.1:0 --algo reduced --backend threads:2 \
             --large-cells 50 --queue 8 --job-timeout 2.5 --idle-timeout 30",
        ))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Serve {
                addr: Some("127.0.0.1:0".into()),
                pipe: false,
                algo: Algorithm::Reduced,
                backend: Some(ExecBackend::Threads(2)),
                large_cells: Some(50),
                queue: Some(8),
                cache: None,
                job_timeout: Some(Duration::from_millis(2500)),
                idle_timeout: Some(Duration::from_secs(30)),
                log: None,
                log_level: LogLevel::Info,
            }
        );
        // Exactly one transport: neither and both are rejected.
        let err = parse(&argv("serve")).unwrap_err();
        assert!(err.0.contains("exactly one"), "{err}");
        let err = parse(&argv("serve --addr 127.0.0.1:0 --pipe")).unwrap_err();
        assert!(err.0.contains("exactly one"), "{err}");
        // A zero queue bound can never admit a job.
        let err = parse(&argv("serve --pipe --queue 0")).unwrap_err();
        assert!(err.0.contains("overloaded"), "{err}");
        let err = parse(&argv("serve --pipe --backend 0")).unwrap_err();
        assert!(err.0.contains("zero workers"), "{err}");
    }

    #[test]
    fn parse_serve_timeouts() {
        // Zero, negative, and non-numeric timeouts are rejected.
        for bad in ["0", "-1", "soon", "inf"] {
            let err = parse(&argv(&format!("serve --pipe --job-timeout {bad}"))).unwrap_err();
            assert!(err.0.contains("--job-timeout"), "{bad}: {err}");
        }
        let err = parse(&argv("serve --addr 127.0.0.1:0 --idle-timeout x")).unwrap_err();
        assert!(err.0.contains("seconds"), "{err}");
        // --idle-timeout is meaningless without a socket.
        let err = parse(&argv("serve --pipe --idle-timeout 5")).unwrap_err();
        assert!(err.0.contains("TCP"), "{err}");
        // Fractional seconds work.
        match parse(&argv("serve --pipe --job-timeout 0.25")).unwrap() {
            Parsed::Serve { job_timeout, .. } => {
                assert_eq!(job_timeout, Some(Duration::from_millis(250)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_log_flags_on_batch_and_serve() {
        match parse(&argv("batch --log events.jsonl jobs.jsonl")).unwrap() {
            Parsed::Batch { log, log_level, .. } => {
                assert_eq!(log.as_deref(), Some("events.jsonl"));
                assert_eq!(log_level, LogLevel::Info);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve --pipe --log - --log-level debug")).unwrap() {
            Parsed::Serve { log, log_level, .. } => {
                assert_eq!(log.as_deref(), Some("-"));
                assert_eq!(log_level, LogLevel::Debug);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve --pipe --log e.jsonl --log-level error")).unwrap() {
            Parsed::Serve { log, log_level, .. } => {
                assert_eq!(log.as_deref(), Some("e.jsonl"));
                assert_eq!(log_level, LogLevel::Error);
            }
            other => panic!("{other:?}"),
        }
        // Unknown levels name the accepted set.
        let err = parse(&argv("serve --pipe --log - --log-level verbose")).unwrap_err();
        assert!(err.0.contains("debug"), "{err}");
        // --log-level without a stream to filter is a likely typo.
        let err = parse(&argv("serve --pipe --log-level info")).unwrap_err();
        assert!(err.0.contains("--log"), "{err}");
        // An empty destination is rejected with the accepted forms.
        let empty: Vec<String> = ["batch", "--log", "", "jobs.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = parse(&empty).unwrap_err();
        assert!(err.0.contains("destination"), "{err}");
    }

    #[test]
    fn parse_cache_flags_on_solve_batch_serve() {
        // --cache parses on all three commands.
        match parse(&argv("solve --cache /tmp/store chain 2,3,4")).unwrap() {
            Parsed::Solve { cache, .. } => assert_eq!(cache.as_deref(), Some("/tmp/store")),
            other => panic!("{other:?}"),
        }
        match parse(&argv("batch --cache /tmp/store jobs.jsonl")).unwrap() {
            Parsed::Batch { cache, .. } => assert_eq!(cache.as_deref(), Some("/tmp/store")),
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve --pipe --cache /tmp/store")).unwrap() {
            Parsed::Serve { cache, .. } => assert_eq!(cache.as_deref(), Some("/tmp/store")),
            other => panic!("{other:?}"),
        }
        // --no-cache is an accepted explicit default.
        match parse(&argv("batch --no-cache jobs.jsonl")).unwrap() {
            Parsed::Batch { cache, .. } => assert_eq!(cache, None),
            other => panic!("{other:?}"),
        }
        // The contradictory combination is rejected with both spellings
        // named, on every command that takes the pair.
        for cmd in [
            "solve --cache /tmp/s --no-cache chain 2,3,4",
            "batch --no-cache --cache /tmp/s jobs.jsonl",
            "serve --pipe --cache /tmp/s --no-cache",
        ] {
            let err = parse(&argv(cmd)).unwrap_err();
            assert!(err.0.contains("--cache"), "{cmd}: {err}");
            assert!(err.0.contains("--no-cache"), "{cmd}: {err}");
            assert!(err.0.contains("not both"), "{cmd}: {err}");
        }
        // --cache without a path.
        let err = parse(&argv("solve --cache")).unwrap_err();
        assert!(err.0.contains("--cache needs a value"), "{err}");
    }

    #[test]
    fn parse_cache_subcommand() {
        assert_eq!(
            parse(&argv("cache stat /tmp/store")).unwrap(),
            Parsed::Cache {
                action: CacheAction::Stat,
                dir: "/tmp/store".into(),
            }
        );
        assert_eq!(
            parse(&argv("cache clear /tmp/store")).unwrap(),
            Parsed::Cache {
                action: CacheAction::Clear,
                dir: "/tmp/store".into(),
            }
        );
        let err = parse(&argv("cache")).unwrap_err();
        assert!(err.0.contains("stat"), "{err}");
        assert!(err.0.contains("clear"), "{err}");
        let err = parse(&argv("cache vacuum /tmp/store")).unwrap_err();
        assert!(err.0.contains("unknown cache action 'vacuum'"), "{err}");
        let err = parse(&argv("cache stat")).unwrap_err();
        assert!(err.0.contains("store directory"), "{err}");
    }

    #[test]
    fn parse_solve_with_flags() {
        let p = parse(&argv("solve --algo reduced --witness chain 2,3,4")).unwrap();
        match p {
            Parsed::Solve {
                algo,
                witness,
                trace,
                backend,
                ..
            } => {
                assert_eq!(algo, Algorithm::Reduced);
                assert_eq!(backend, None);
                assert!(witness);
                assert!(!trace);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_backend_selection() {
        for (spec, expect) in [
            ("seq", ExecBackend::Sequential),
            ("sequential", ExecBackend::Sequential),
            ("parallel", ExecBackend::Parallel),
            ("threads:4", ExecBackend::Threads(4)),
            ("2", ExecBackend::Threads(2)),
        ] {
            let p = parse(&argv(&format!("solve --backend {spec} chain 2,3,4"))).unwrap();
            match p {
                Parsed::Solve { backend, .. } => assert_eq!(backend, Some(expect), "{spec}"),
                other => panic!("{other:?}"),
            }
        }
        let err = parse(&argv("solve --backend bogus chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("unknown backend"), "{err}");
    }

    #[test]
    fn unknown_algo_lists_the_registry() {
        let err = parse(&argv("solve --algo blort chain 2,3,4")).unwrap_err();
        for a in Algorithm::ALL {
            assert!(err.0.contains(a.name()), "{err}");
            assert!(err.0.contains(a.description()), "{err}");
        }
    }

    #[test]
    fn inapplicable_flag_combos_are_rejected() {
        // --backend on a purely sequential algorithm.
        let err = parse(&argv("solve --algo seq --backend parallel chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("--backend has no effect"), "{err}");
        assert!(err.0.contains("wavefront"), "{err}");
        let err = parse(&argv("solve --algo knuth --backend 4 chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("--backend has no effect"), "{err}");
        // --tile on algorithms without an a-square kernel.
        let err = parse(&argv("solve --algo sequential --tile 8 chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("--tile has no effect"), "{err}");
        assert!(err.0.contains("sublinear"), "{err}");
        let err = parse(&argv("solve --algo wavefront --tile naive chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("--tile has no effect"), "{err}");
        // --trace on non-iterative algorithms.
        let err = parse(&argv("solve --algo wavefront --trace chain 2,3,4")).unwrap_err();
        assert!(err.0.contains("--trace has no effect"), "{err}");
        // The capable combinations still parse.
        assert!(parse(&argv(
            "solve --algo reduced --tile 8 --backend seq chain 2,3,4"
        ))
        .is_ok());
        assert!(parse(&argv("solve --algo wavefront --backend 4 chain 2,3,4")).is_ok());
        assert!(parse(&argv("solve --algo rytter --trace chain 2,3,4")).is_ok());
    }

    #[test]
    fn parse_obst_requires_matching_lengths() {
        assert!(parse(&argv("solve obst --p 1,2 --q 1,2,3")).is_ok());
        let err = parse(&argv("solve obst --p 1,2 --q 1,2")).unwrap_err();
        assert!(err.0.contains("exactly 3"));
    }

    #[test]
    fn parse_game() {
        let p = parse(&argv("game zigzag 128 --rule jump --seed 9")).unwrap();
        assert_eq!(
            p,
            Parsed::Game {
                shape: Shape::Zigzag,
                n: 128,
                jump: true,
                seed: 9
            }
        );
    }

    #[test]
    fn parse_model_and_bound() {
        assert_eq!(
            parse(&argv("model 32")).unwrap(),
            Parsed::Model {
                n: 32,
                processors: 0
            }
        );
        assert_eq!(
            parse(&argv("model 32 --processors 500")).unwrap(),
            Parsed::Model {
                n: 32,
                processors: 500
            }
        );
        assert_eq!(parse(&argv("bound 100")).unwrap(), Parsed::Bound { n: 100 });
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(&argv("solve"))
            .unwrap_err()
            .0
            .contains("problem family"));
        assert!(parse(&argv("solve chain"))
            .unwrap_err()
            .0
            .contains("dimensions"));
        assert!(parse(&argv("solve chain x,y"))
            .unwrap_err()
            .0
            .contains("not a non-negative"));
        assert!(parse(&argv("frobnicate"))
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(&argv("game zigzag 0"))
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&argv("model 5000"))
            .unwrap_err()
            .0
            .contains("n <= 128"));
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Parsed::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Parsed::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Parsed::Help);
    }
}
