//! Command execution: build the instance, run the chosen solver, format
//! the results.

use pardp_apps::{MatrixChain, MergeOrder, OptimalBst, WeightedPolygon};
use pardp_core::pram_exec::{model_reduced, model_rytter, model_sublinear};
use pardp_core::prelude::*;
use pardp_core::reconstruct::reconstruct_root;
use pardp_core::rytter::rytter_schedule;
use pardp_pebble::game::{moves_to_pebble, SquareRule};
use pardp_pebble::{gen, lemma_move_bound};
use pardp_pram::Timeline;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::args::{usage, CliError, Parsed, Problem, Shape};

/// Execute a parsed command, producing the output text.
pub fn execute(parsed: &Parsed) -> Result<String, CliError> {
    match parsed {
        Parsed::Help => Ok(usage()),
        Parsed::Bound { n } => {
            let b = pardp_core::schedule_bound(*n);
            Ok(format!(
                "n = {n}: schedule bound 2*ceil(sqrt(n)) = {b} iterations \
                 (Lemma 3.3 move bound = {})\n",
                lemma_move_bound(*n)
            ))
        }
        Parsed::Game {
            shape,
            n,
            jump,
            seed,
        } => run_game(*shape, *n, *jump, *seed),
        Parsed::Model { n, processors } => run_model(*n, *processors),
        Parsed::Solve {
            problem,
            algo,
            backend,
            tile,
            witness,
            trace,
        } => run_solve(problem, *algo, *backend, *tile, *witness, *trace),
    }
}

fn run_game(shape: Shape, n: usize, jump: bool, seed: u64) -> Result<String, CliError> {
    let tree = match shape {
        Shape::Zigzag => gen::zigzag(n),
        Shape::Complete => gen::complete(n),
        Shape::Skewed => gen::skewed(n, gen::Side::Left),
        Shape::Random => gen::random_split(n, &mut SmallRng::seed_from_u64(seed)),
    };
    let rule = if jump {
        SquareRule::PointerJump
    } else {
        SquareRule::Modified
    };
    let moves = moves_to_pebble(&tree, rule);
    Ok(format!(
        "shape = {shape:?}, n = {n}, rule = {rule:?}\n\
         root pebbled after {moves} moves (bound {})\n",
        lemma_move_bound(n)
    ))
}

fn run_model(n: usize, processors: u64) -> Result<String, CliError> {
    let mut out = String::new();
    out.push_str(&format!(
        "PRAM cost models at n = {n} (full worst-case schedules)\n\n"
    ));
    for (name, pram) in [
        ("sublinear (§2)", model_sublinear(n)),
        ("reduced   (§5)", model_reduced(n)),
        ("rytter    [8]", model_rytter(n, rytter_schedule(n))),
    ] {
        let m = pram.metrics().clone();
        let p = if processors == 0 {
            pram.processors_for_depth(1.0)
        } else {
            processors
        };
        let t = pram.brent_time(p);
        out.push_str(&format!(
            "{name}: work {:>14}  depth {:>8}  time on p={p}: {t}  PT = {}\n",
            m.work,
            m.depth,
            p as u128 * t as u128
        ));
        if n <= 24 {
            let tl = Timeline::schedule(&pram, p);
            out.push_str(&tl.render_gantt(60));
        }
        out.push('\n');
    }
    Ok(out)
}

fn run_solve(
    problem: &Problem,
    algo: Algorithm,
    backend: Option<ExecBackend>,
    tile: Option<SquareStrategy>,
    witness: bool,
    trace: bool,
) -> Result<String, CliError> {
    match problem {
        Problem::Chain(dims) => {
            let mc = MatrixChain::new(dims.clone());
            let (out, w) = solve_with(&mc, algo, backend, tile, trace)?;
            let mut s = format!("matrix chain, n = {}\n{out}", mc.n_matrices());
            if witness {
                let tree = reconstruct_root(&mc, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                s.push_str(&format!("optimal order: {}\n", mc.render(&tree)));
            }
            Ok(s)
        }
        Problem::Obst { p, q } => {
            let bst = OptimalBst::new(p.clone(), q.clone());
            let (out, w) = solve_with(&bst, algo, backend, tile, trace)?;
            let mut s = format!("optimal BST, {} keys\n{out}", bst.n_keys());
            if witness {
                let tree = reconstruct_root(&bst, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                let b = OptimalBst::to_bst(&tree);
                s.push_str(&format!(
                    "in-order keys: {:?}\n",
                    OptimalBst::inorder_keys(&b)
                ));
                if let pardp_apps::obst::BstNode::Key { key, .. } = b {
                    s.push_str(&format!("root key: k{key}\n"));
                }
            }
            Ok(s)
        }
        Problem::Polygon(weights) => {
            let poly = WeightedPolygon::new(weights.clone());
            let (out, w) = solve_with(&poly, algo, backend, tile, trace)?;
            let mut s = format!(
                "polygon triangulation, {} vertices\n{out}",
                poly.n_vertices()
            );
            if witness {
                let tree = reconstruct_root(&poly, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                let diags = pardp_apps::triangulation::diagonals_of(&tree, poly.n_vertices() - 1);
                s.push_str(&format!("diagonals: {diags:?}\n"));
            }
            Ok(s)
        }
        Problem::Merge(lengths) => {
            let m = MergeOrder::new(lengths.clone());
            let (out, w) = solve_with(&m, algo, backend, tile, trace)?;
            let mut s = format!("merge order, {} runs\n{out}", m.lengths().len());
            if witness {
                let tree = reconstruct_root(&m, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                s.push_str(&format!("schedule: {:?}\n", m.schedule(&tree)));
            }
            Ok(s)
        }
    }
}

/// Append the per-iteration op counters of a solve trace (used by the
/// paper algorithms' `--trace` output).
fn push_iteration_trace(s: &mut String, trace: &pardp_core::trace::SolveTrace) {
    for r in &trace.per_iteration {
        s.push_str(&format!(
            "  iter {:>3}: activate {:>8} square {:>10} pebble {:>8} changed={}\n",
            r.iteration,
            r.activate.candidates,
            r.square.candidates,
            r.pebble.candidates,
            r.pebble.changed,
        ));
    }
}

/// Run the chosen solver through the [`Solver`] façade; return the
/// formatted summary and the table (for witness extraction).
///
/// There is deliberately no per-algorithm dispatch here: the options
/// builder carries every knob, the registry's capability flags decide
/// what to print, and the façade returns the same [`Solution`] shape for
/// the whole spectrum.
fn solve_with<P: DpProblem<u64> + ?Sized>(
    p: &P,
    algo: Algorithm,
    backend: Option<ExecBackend>,
    tile: Option<SquareStrategy>,
    trace: bool,
) -> Result<(String, WTable<u64>), CliError> {
    let n = p.n();
    let mut opts = SolveOptions::default()
        .termination(Termination::Fixpoint)
        .record_trace(trace);
    if let Some(b) = backend {
        opts = opts.exec(b);
    }
    if let Some(t) = tile {
        opts = opts.square(t);
    }
    let sol = Solver::new(algo).options(opts).solve(p);

    // The Knuth-Yao speedup is only valid on quadrangle-inequality
    // instances; the CLI guards the user by cross-checking the full DP.
    if algo == Algorithm::Knuth && !sol.w.table_eq(&solve_sequential(p)) {
        return Err(CliError(
            "knuth speedup disagrees with the full DP — instance lacks the \
             quadrangle inequality; use --algo seq"
                .into(),
        ));
    }

    let mut s = format!(
        "algorithm: {} — {} [{}]\n",
        algo.name(),
        algo.description(),
        algo.complexity()
    );
    if algo.is_parallel() {
        s.push_str(&format!("backend: {}\n", opts.exec));
    }
    s.push_str(&format!("c(0,{n}) = {}\n", sol.value()));
    if algo.is_iterative() {
        s.push_str(&format!(
            "iterations: {}/{} ({:?})\n",
            sol.trace.iterations, sol.trace.schedule_bound, sol.trace.stop
        ));
    }
    if trace {
        push_iteration_trace(&mut s, &sol.trace);
    }
    Ok((s, sol.w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(s: &str) -> Result<String, CliError> {
        let argv: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&parse(&argv)?)
    }

    #[test]
    fn solve_chain_all_algorithms_agree() {
        for algo in ["seq", "wavefront", "sublinear", "reduced", "rytter"] {
            let out = run_line(&format!("solve --algo {algo} chain 30,35,15,5,10,20,25"))
                .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(out.contains("= 15125"), "{algo}: {out}");
        }
    }

    #[test]
    fn backend_selection_yields_identical_values() {
        for algo in ["wavefront", "sublinear", "reduced", "rytter"] {
            for backend in ["seq", "parallel", "threads:4"] {
                let out = run_line(&format!(
                    "solve --algo {algo} --backend {backend} chain 30,35,15,5,10,20,25"
                ))
                .unwrap_or_else(|e| panic!("{algo}/{backend}: {e}"));
                assert!(out.contains("= 15125"), "{algo}/{backend}: {out}");
            }
        }
    }

    #[test]
    fn tile_selection_yields_identical_values() {
        for algo in ["sublinear", "reduced", "rytter"] {
            for tile in ["naive", "auto", "4"] {
                let out = run_line(&format!(
                    "solve --algo {algo} --tile {tile} chain 30,35,15,5,10,20,25"
                ))
                .unwrap_or_else(|e| panic!("{algo}/{tile}: {e}"));
                assert!(out.contains("= 15125"), "{algo}/{tile}: {out}");
            }
        }
    }

    #[test]
    fn witness_renders_parenthesization() {
        let out = run_line("solve --witness chain 30,35,15,5,10,20,25").unwrap();
        assert!(out.contains("((A1 (A2 A3)) ((A4 A5) A6))"), "{out}");
    }

    #[test]
    fn solve_obst_clrs() {
        let out = run_line("solve --witness obst --p 15,10,5,10,20 --q 5,10,5,5,5,10").unwrap();
        assert!(out.contains("= 275"), "{out}");
        assert!(out.contains("root key: k2"), "{out}");
    }

    #[test]
    fn solve_polygon_and_merge() {
        let out = run_line("solve --witness polygon 1,10,1,10").unwrap();
        assert!(out.contains("= 20"), "{out}");
        assert!(out.contains("(0, 2)"), "{out}");
        let out = run_line("solve --witness merge 10,20,30").unwrap();
        assert!(out.contains("= 90"), "{out}");
        assert!(out.contains("(0, 2)"), "{out}");
    }

    #[test]
    fn knuth_guard_rejects_non_qi_instances() {
        // Matrix chains are not QI in general; the guard may or may not
        // trip for a specific instance, but on this crafted one Knuth's
        // restriction provably misses the optimum.
        let r = run_line("solve --algo knuth chain 10,1,10,1,10,1,10");
        match r {
            Ok(out) => assert!(out.contains("c(0,")),
            Err(e) => assert!(e.0.contains("quadrangle")),
        }
    }

    #[test]
    fn game_and_bound_commands() {
        let out = run_line("game zigzag 256").unwrap();
        assert!(out.contains("root pebbled"), "{out}");
        let out = run_line("game zigzag 256 --rule jump").unwrap();
        assert!(out.contains("PointerJump"), "{out}");
        let out = run_line("bound 100").unwrap();
        assert!(out.contains("= 20"), "{out}");
    }

    #[test]
    fn model_command_prints_all_algorithms() {
        let out = run_line("model 16").unwrap();
        assert!(out.contains("sublinear"));
        assert!(out.contains("reduced"));
        assert!(out.contains("rytter"));
        assert!(out.contains("PT ="));
        // n <= 24 includes Gantt charts.
        assert!(out.contains('#'));
    }

    #[test]
    fn trace_flag_prints_iterations() {
        let out = run_line("solve --trace chain 3,5,7,2,8").unwrap();
        assert!(out.contains("iter   1"), "{out}");
    }

    #[test]
    fn help_contains_usage() {
        let out = run_line("help").unwrap();
        assert!(out.contains("USAGE"));
    }
}
