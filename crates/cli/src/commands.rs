//! Command execution: build the instance, run the chosen solver, format
//! the results.

use pardp_apps::{MatrixChain, MergeOrder, OptimalBst, WeightedPolygon};
use pardp_core::pram_exec::{model_reduced, model_rytter, model_sublinear};
use pardp_core::prelude::*;
use pardp_core::reconstruct::reconstruct_root;
use pardp_core::rytter::rytter_schedule;
use pardp_pebble::game::{moves_to_pebble, SquareRule};
use pardp_pebble::{gen, lemma_move_bound};
use pardp_pram::Timeline;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::args::{usage, CacheAction, CliError, Parsed, Problem, Shape};

/// Open the persistent store behind `--cache <dir>` (creating the
/// directory on first use).
fn open_cache(dir: &str) -> Result<FileStore, CliError> {
    FileStore::open(dir).map_err(|e| CliError(e.0))
}

/// Build the telemetry pipeline behind `--log <path|->`: `-` streams
/// JSONL events to stderr (stdout stays protocol-only), anything else
/// truncates and writes a file. No flag, no telemetry, no overhead.
fn open_telemetry(
    log: Option<&str>,
    level: LogLevel,
) -> Result<Option<std::sync::Arc<Telemetry>>, CliError> {
    let Some(dest) = log else { return Ok(None) };
    let writer: Box<dyn std::io::Write + Send> = if dest == "-" {
        Box::new(std::io::stderr())
    } else {
        Box::new(
            std::fs::File::create(dest)
                .map_err(|e| CliError(format!("cannot open log file '{dest}': {e}")))?,
        )
    };
    let sink = std::sync::Arc::new(WriterSink::new(writer));
    Ok(Some(std::sync::Arc::new(Telemetry::with_level(
        sink, level,
    ))))
}

/// Execute a parsed command, producing the output text.
pub fn execute(parsed: &Parsed) -> Result<String, CliError> {
    match parsed {
        Parsed::Help => Ok(usage()),
        Parsed::Batch {
            path,
            algo,
            backend,
            large_cells,
            cache,
            log,
            log_level,
        } => run_batch(
            path,
            *algo,
            *backend,
            *large_cells,
            cache.as_deref(),
            log.as_deref(),
            *log_level,
        ),
        Parsed::Serve {
            addr,
            pipe,
            algo,
            backend,
            large_cells,
            queue,
            cache,
            job_timeout,
            idle_timeout,
            log,
            log_level,
        } => run_serve(
            addr.as_deref(),
            *pipe,
            *algo,
            *backend,
            *large_cells,
            *queue,
            cache.as_deref(),
            *job_timeout,
            *idle_timeout,
            log.as_deref(),
            *log_level,
        ),
        Parsed::Cache { action, dir } => run_cache(*action, dir),
        Parsed::Bound { n } => {
            let b = pardp_core::schedule_bound(*n);
            Ok(format!(
                "n = {n}: schedule bound 2*ceil(sqrt(n)) = {b} iterations \
                 (Lemma 3.3 move bound = {})\n",
                lemma_move_bound(*n)
            ))
        }
        Parsed::Game {
            shape,
            n,
            jump,
            seed,
        } => run_game(*shape, *n, *jump, *seed),
        Parsed::Model { n, processors } => run_model(*n, *processors),
        Parsed::Solve {
            problem,
            algo,
            backend,
            tile,
            witness,
            trace,
            cache,
        } => run_solve(
            problem,
            *algo,
            *backend,
            *tile,
            *witness,
            *trace,
            cache.as_deref(),
        ),
    }
}

/// `pardp cache stat|clear <dir>`: inspect or empty a persistent store.
fn run_cache(action: CacheAction, dir: &str) -> Result<String, CliError> {
    let store = FileStore::open_existing(dir).map_err(|e| CliError(e.0))?;
    match action {
        CacheAction::Stat => {
            let st = store.stat().map_err(|e| CliError(e.0))?;
            let mut s = format!(
                "store {dir}: {} record(s), {} bytes on disk, {} invalid byte(s) skipped\n",
                st.records, st.file_bytes, st.skipped_bytes
            );
            for (family, count) in &st.families {
                s.push_str(&format!("  family {family}: {count}\n"));
            }
            for (algo, count) in &st.algorithms {
                s.push_str(&format!("  algo {algo}: {count}\n"));
            }
            Ok(s)
        }
        CacheAction::Clear => {
            let removed = store.wipe().map_err(|e| CliError(e.0))?;
            Ok(format!("store {dir}: cleared {removed} record(s)\n",))
        }
    }
}

fn run_game(shape: Shape, n: usize, jump: bool, seed: u64) -> Result<String, CliError> {
    let tree = match shape {
        Shape::Zigzag => gen::zigzag(n),
        Shape::Complete => gen::complete(n),
        Shape::Skewed => gen::skewed(n, gen::Side::Left),
        Shape::Random => gen::random_split(n, &mut SmallRng::seed_from_u64(seed)),
    };
    let rule = if jump {
        SquareRule::PointerJump
    } else {
        SquareRule::Modified
    };
    let moves = moves_to_pebble(&tree, rule);
    Ok(format!(
        "shape = {shape:?}, n = {n}, rule = {rule:?}\n\
         root pebbled after {moves} moves (bound {})\n",
        lemma_move_bound(n)
    ))
}

fn run_model(n: usize, processors: u64) -> Result<String, CliError> {
    let mut out = String::new();
    out.push_str(&format!(
        "PRAM cost models at n = {n} (full worst-case schedules)\n\n"
    ));
    for (name, pram) in [
        ("sublinear (§2)", model_sublinear(n)),
        ("reduced   (§5)", model_reduced(n)),
        ("rytter    [8]", model_rytter(n, rytter_schedule(n))),
    ] {
        let m = pram.metrics().clone();
        let p = if processors == 0 {
            pram.processors_for_depth(1.0)
        } else {
            processors
        };
        let t = pram.brent_time(p);
        out.push_str(&format!(
            "{name}: work {:>14}  depth {:>8}  time on p={p}: {t}  PT = {}\n",
            m.work,
            m.depth,
            p as u128 * t as u128
        ));
        if n <= 24 {
            let tl = Timeline::schedule(&pram, p);
            out.push_str(&tl.render_gantt(60));
        }
        out.push('\n');
    }
    Ok(out)
}

fn run_solve(
    problem: &Problem,
    algo: Algorithm,
    backend: Option<ExecBackend>,
    tile: Option<SquareStrategy>,
    witness: bool,
    trace: bool,
    cache_dir: Option<&str>,
) -> Result<String, CliError> {
    let cache = cache_dir.map(open_cache).transpose()?;
    let cache = cache.as_ref();
    match problem {
        Problem::Chain { dims } => {
            let mc = MatrixChain::new(dims.clone());
            let (out, w) = solve_with(&mc, problem, algo, backend, tile, trace, cache)?;
            let mut s = format!("matrix chain, n = {}\n{out}", mc.n_matrices());
            if witness {
                let tree = reconstruct_root(&mc, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                s.push_str(&format!("optimal order: {}\n", mc.render(&tree)));
            }
            Ok(s)
        }
        Problem::Obst { p, q } => {
            let bst = OptimalBst::new(p.clone(), q.clone());
            let (out, w) = solve_with(&bst, problem, algo, backend, tile, trace, cache)?;
            let mut s = format!("optimal BST, {} keys\n{out}", bst.n_keys());
            if witness {
                let tree = reconstruct_root(&bst, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                let b = OptimalBst::to_bst(&tree);
                s.push_str(&format!(
                    "in-order keys: {:?}\n",
                    OptimalBst::inorder_keys(&b)
                ));
                if let pardp_apps::obst::BstNode::Key { key, .. } = b {
                    s.push_str(&format!("root key: k{key}\n"));
                }
            }
            Ok(s)
        }
        Problem::Polygon { weights } => {
            let poly = WeightedPolygon::new(weights.clone());
            let (out, w) = solve_with(&poly, problem, algo, backend, tile, trace, cache)?;
            let mut s = format!(
                "polygon triangulation, {} vertices\n{out}",
                poly.n_vertices()
            );
            if witness {
                let tree = reconstruct_root(&poly, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                let diags = pardp_apps::triangulation::diagonals_of(&tree, poly.n_vertices() - 1);
                s.push_str(&format!("diagonals: {diags:?}\n"));
            }
            Ok(s)
        }
        Problem::Merge { lengths } => {
            let m = MergeOrder::new(lengths.clone());
            let (out, w) = solve_with(&m, problem, algo, backend, tile, trace, cache)?;
            let mut s = format!("merge order, {} runs\n{out}", m.lengths().len());
            if witness {
                let tree = reconstruct_root(&m, &w)
                    .map_err(|e| CliError(format!("reconstruction failed: {e}")))?;
                s.push_str(&format!("schedule: {:?}\n", m.schedule(&tree)));
            }
            Ok(s)
        }
    }
}

/// `pardp batch`: read JSONL job specs, solve them concurrently through
/// [`BatchSolver`], emit one JSONL result line per job plus a summary.
///
/// The wire types (job schema, result records, the summary trailer) are
/// `pardp_core::spec` — shared verbatim with `pardp serve`, so the two
/// front ends accept the same jobs and answer with identical records.
fn run_batch(
    path: &str,
    default_algo: Algorithm,
    backend: Option<ExecBackend>,
    large_cells: Option<usize>,
    cache_dir: Option<&str>,
    log: Option<&str>,
    log_level: LogLevel,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read job file '{path}': {e}")))?;
    let specs = parse_jobs(&text).map_err(|e| CliError(format!("{path} {}", e.0)))?;

    let base = SolveOptions::default().termination(Termination::Fixpoint);
    let mut resolved: Vec<ResolvedJob> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        resolved.push(
            spec.resolve(default_algo, base)
                .map_err(|e| CliError(format!("{path} job {i}: {}", e.0)))?,
        );
    }

    let telemetry = open_telemetry(log, log_level)?;
    let mut solver = BatchSolver::new().telemetry(telemetry.clone());
    if let Some(b) = backend {
        solver = solver.exec(b);
    }
    if let Some(c) = large_cells {
        solver = solver.large_job_cells(c);
    }
    // The cache-aware path is the only path: without --cache it still
    // dedups identical jobs within the batch (`cache: None` below).
    let store = cache_dir.map(open_cache).transpose()?;
    let report = solver.solve_resolved(&resolved, store.as_ref().map(|s| s as &dyn SolutionCache));

    // The Knuth-Yao speedup is only valid on quadrangle-inequality
    // instances; guard batch users exactly like the `solve` path does.
    // Knuth jobs are never cached or deduped, so every Knuth solution
    // here came from a real solve on this instance.
    for r in &report.results {
        verify_knuth(&resolved[r.job].problem.build(), &r.solution)
            .map_err(|e| CliError(format!("{path} job {}: {}", r.job, e.0)))?;
    }

    // Results and isolated failures interleave back into submission
    // order: a panicked job answers with an `internal` error line in its
    // slot instead of taking the whole run down.
    let mut out = String::new();
    let mut errs = report.errors.iter().peekable();
    for r in &report.results {
        while let Some(e) = errs.peek() {
            if e.job > r.job {
                break;
            }
            out.push_str(&error_record(
                e.job,
                ErrorKind::Internal,
                &format!("the solve panicked: {}", e.message),
            ));
            out.push('\n');
            errs.next();
        }
        let record = JobRecord::new(resolved[r.job].problem.family(), r);
        out.push_str(&serde_json::to_string(&record).map_err(|e| CliError(e.to_string()))?);
        out.push('\n');
    }
    for e in errs {
        out.push_str(&error_record(
            e.job,
            ErrorKind::Internal,
            &format!("the solve panicked: {}", e.message),
        ));
        out.push('\n');
    }
    // Cache traffic gets its own line (only when a store is attached),
    // so the trailing summary stays wire-identical to a cache-less run.
    if store.is_some() {
        let c = report.cache;
        out.push_str(&format!(
            "{{\"cache_hits\":{},\"cache_misses\":{},\"warm_starts\":{},\"deduped\":{},\"errors\":{}}}\n",
            c.hits, c.misses, c.warm_starts, c.deduped, c.errors
        ));
    }
    let summary = report.summary(solver.backend());
    out.push_str(&serde_json::to_string(&summary).map_err(|e| CliError(e.to_string()))?);
    out.push('\n');
    // A batch run ends its event stream the same way a serve drain does:
    // one machine-readable `summary` line, then a flush so file sinks
    // land on disk before the process exits.
    if let Some(tel) = &telemetry {
        let c = report.cache;
        tel.emit(EventKind::Summary {
            accepted: resolved.len() as u64,
            rejected: 0,
            invalid: 0,
            completed: report.results.len() as u64,
            completed_small: report.results.iter().filter(|r| !r.large).count() as u64,
            completed_large: report.results.iter().filter(|r| r.large).count() as u64,
            panics: report.errors.len() as u64,
            timeouts: 0,
            cache_hits: c.hits,
            cache_misses: c.misses,
            warm_starts: c.warm_starts,
            cache_errors: c.errors,
        });
        tel.flush();
    }
    Ok(out)
}

/// The SIGINT flag of `pardp serve --addr`: installed once, set from the
/// signal handler, polled by the serve loop so ctrl-C becomes a graceful
/// drain instead of a hard kill.
#[cfg(unix)]
fn install_sigint() -> &'static std::sync::atomic::AtomicBool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static FLAG: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigint(_signum: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal(2)` is declared with the libc prototype above and
    // called with a valid `extern "C"` handler. The handler itself is
    // async-signal-safe: it performs a single lock-free atomic store
    // into a `'static` flag (no allocation, no locking, no panicking).
    unsafe {
        signal(SIGINT, on_sigint);
    }
    &FLAG
}

#[cfg(not(unix))]
fn install_sigint() -> &'static std::sync::atomic::AtomicBool {
    static FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    &FLAG
}

/// `pardp serve`: run the persistent daemon (`pardp_core::serve`) in
/// pipe mode (one stdin/stdout session) or as a TCP listener until
/// shutdown, then report the drained counters on stderr.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    addr: Option<&str>,
    pipe: bool,
    algo: Algorithm,
    backend: Option<ExecBackend>,
    large_cells: Option<usize>,
    queue: Option<usize>,
    cache_dir: Option<&str>,
    job_timeout: Option<std::time::Duration>,
    idle_timeout: Option<std::time::Duration>,
    log: Option<&str>,
    log_level: LogLevel,
) -> Result<String, CliError> {
    let mut config = pardp_core::serve::ServeConfig {
        default_algo: algo,
        job_timeout,
        idle_timeout,
        telemetry: open_telemetry(log, log_level)?,
        ..Default::default()
    };
    if let Some(b) = backend {
        config.exec = b;
    }
    if let Some(c) = large_cells {
        config.large_job_cells = c;
    }
    if let Some(q) = queue {
        config.queue_capacity = q;
    }
    let cached = cache_dir.is_some();
    if let Some(dir) = cache_dir {
        config.cache = Some(std::sync::Arc::new(open_cache(dir)?));
    }

    let stats = if pipe {
        // Responses go to stdout (they are the protocol); everything
        // human-facing goes to stderr.
        let stdin = std::io::stdin();
        pardp_core::serve::serve_pipe(stdin.lock(), std::io::stdout(), &config)
    } else {
        let addr = addr.expect("the parser requires --addr without --pipe");
        let server = pardp_core::serve::Server::bind(addr, &config)
            .map_err(|e| CliError(format!("cannot bind '{addr}': {e}")))?;
        eprintln!(
            "pardp serve: listening on {} ({} worker{}, queue {})",
            server.addr(),
            server.stats().workers,
            if server.stats().workers == 1 { "" } else { "s" },
            config.queue_capacity,
        );
        let sigint = install_sigint();
        while !server.shutdown_requested() && !sigint.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        server.join()
    };
    let cache_note = if cached {
        format!(
            " cache (hits {} / misses {} / warm starts {} / errors {})",
            stats.cache_hits, stats.cache_misses, stats.warm_starts, stats.cache_errors,
        )
    } else {
        String::new()
    };
    eprintln!(
        "pardp serve: drained — accepted {} rejected {} invalid {} \
         completed {} (small {} / large {}) panics {} timeouts {}{cache_note}",
        stats.accepted,
        stats.rejected,
        stats.invalid,
        stats.completed,
        stats.completed_small,
        stats.completed_large,
        stats.panics,
        stats.timeouts,
    );
    Ok(String::new())
}

/// Append the per-iteration op counters of a solve trace (used by the
/// paper algorithms' `--trace` output).
fn push_iteration_trace(s: &mut String, trace: &pardp_core::trace::SolveTrace) {
    for r in &trace.per_iteration {
        s.push_str(&format!(
            "  iter {:>3}: activate {:>8} square {:>10} pebble {:>8} changed={}\n",
            r.iteration,
            r.activate.candidates,
            r.square.candidates,
            r.pebble.candidates,
            r.pebble.changed,
        ));
    }
}

/// Run the chosen solver through the [`Solver`] façade; return the
/// formatted summary and the table (for witness extraction).
///
/// There is deliberately no per-algorithm dispatch here: the options
/// builder carries every knob, the registry's capability flags decide
/// what to print, and the façade returns the same [`Solution`] shape for
/// the whole spectrum.
fn solve_with<P: DpProblem<u64> + ?Sized>(
    p: &P,
    spec: &ProblemSpec,
    algo: Algorithm,
    backend: Option<ExecBackend>,
    tile: Option<SquareStrategy>,
    trace: bool,
    cache: Option<&FileStore>,
) -> Result<(String, WTable<u64>), CliError> {
    let n = p.n();
    let mut opts = SolveOptions::default()
        .termination(Termination::Fixpoint)
        .record_trace(trace);
    if let Some(b) = backend {
        opts = opts.exec(b);
    }
    if let Some(t) = tile {
        opts = opts.square(t);
    }
    // With a cache attached the solve runs key → lookup → solve-miss →
    // insert on the canonical spec instance; cached tables are
    // bit-identical to this cold path, so the witness and the Knuth
    // guard below see the same `w` either way.
    let (sol, outcome) = match cache {
        Some(c) => cached_solve(c, spec, algo, &opts),
        None => (
            Solver::new(algo).options(opts).solve(p),
            CacheOutcome::Bypass,
        ),
    };

    // The Knuth-Yao speedup is only valid on quadrangle-inequality
    // instances; the CLI guards the user by cross-checking the full DP.
    if algo == Algorithm::Knuth && !sol.w.table_eq(&solve_sequential(p)) {
        return Err(CliError(
            "knuth speedup disagrees with the full DP — instance lacks the \
             quadrangle inequality; use --algo seq"
                .into(),
        ));
    }

    let mut s = format!(
        "algorithm: {} — {} [{}]\n",
        algo.name(),
        algo.description(),
        algo.complexity()
    );
    if algo.is_parallel() {
        s.push_str(&format!("backend: {}\n", opts.exec));
    }
    if cache.is_some() {
        s.push_str(&match outcome {
            CacheOutcome::Hit => "cache: hit\n".to_string(),
            CacheOutcome::Warm { seed_n } => {
                format!("cache: warm start from cached n = {seed_n} prefix\n")
            }
            CacheOutcome::Miss => "cache: miss (stored for next time)\n".to_string(),
            CacheOutcome::Bypass => "cache: bypassed\n".to_string(),
        });
    }
    s.push_str(&format!("c(0,{n}) = {}\n", sol.value()));
    if algo.is_iterative() {
        s.push_str(&format!(
            "iterations: {}/{} ({:?})\n",
            sol.trace.iterations, sol.trace.schedule_bound, sol.trace.stop
        ));
    }
    if trace {
        push_iteration_trace(&mut s, &sol.trace);
    }
    Ok((s, sol.w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(s: &str) -> Result<String, CliError> {
        let argv: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&parse(&argv)?)
    }

    #[test]
    fn solve_chain_all_algorithms_agree() {
        for algo in ["seq", "wavefront", "sublinear", "reduced", "rytter"] {
            let out = run_line(&format!("solve --algo {algo} chain 30,35,15,5,10,20,25"))
                .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(out.contains("= 15125"), "{algo}: {out}");
        }
    }

    #[test]
    fn backend_selection_yields_identical_values() {
        for algo in ["wavefront", "sublinear", "reduced", "rytter"] {
            for backend in ["seq", "parallel", "threads:4"] {
                let out = run_line(&format!(
                    "solve --algo {algo} --backend {backend} chain 30,35,15,5,10,20,25"
                ))
                .unwrap_or_else(|e| panic!("{algo}/{backend}: {e}"));
                assert!(out.contains("= 15125"), "{algo}/{backend}: {out}");
            }
        }
    }

    #[test]
    fn tile_selection_yields_identical_values() {
        for algo in ["sublinear", "reduced", "rytter"] {
            for tile in ["naive", "auto", "4"] {
                let out = run_line(&format!(
                    "solve --algo {algo} --tile {tile} chain 30,35,15,5,10,20,25"
                ))
                .unwrap_or_else(|e| panic!("{algo}/{tile}: {e}"));
                assert!(out.contains("= 15125"), "{algo}/{tile}: {out}");
            }
        }
    }

    #[test]
    fn witness_renders_parenthesization() {
        let out = run_line("solve --witness chain 30,35,15,5,10,20,25").unwrap();
        assert!(out.contains("((A1 (A2 A3)) ((A4 A5) A6))"), "{out}");
    }

    #[test]
    fn solve_obst_clrs() {
        let out = run_line("solve --witness obst --p 15,10,5,10,20 --q 5,10,5,5,5,10").unwrap();
        assert!(out.contains("= 275"), "{out}");
        assert!(out.contains("root key: k2"), "{out}");
    }

    #[test]
    fn solve_polygon_and_merge() {
        let out = run_line("solve --witness polygon 1,10,1,10").unwrap();
        assert!(out.contains("= 20"), "{out}");
        assert!(out.contains("(0, 2)"), "{out}");
        let out = run_line("solve --witness merge 10,20,30").unwrap();
        assert!(out.contains("= 90"), "{out}");
        assert!(out.contains("(0, 2)"), "{out}");
    }

    #[test]
    fn knuth_guard_rejects_non_qi_instances() {
        // Matrix chains are not QI in general; the guard may or may not
        // trip for a specific instance, but on this crafted one Knuth's
        // restriction provably misses the optimum.
        let r = run_line("solve --algo knuth chain 10,1,10,1,10,1,10");
        match r {
            Ok(out) => assert!(out.contains("c(0,")),
            Err(e) => assert!(e.0.contains("quadrangle")),
        }
    }

    #[test]
    fn game_and_bound_commands() {
        let out = run_line("game zigzag 256").unwrap();
        assert!(out.contains("root pebbled"), "{out}");
        let out = run_line("game zigzag 256 --rule jump").unwrap();
        assert!(out.contains("PointerJump"), "{out}");
        let out = run_line("bound 100").unwrap();
        assert!(out.contains("= 20"), "{out}");
    }

    #[test]
    fn model_command_prints_all_algorithms() {
        let out = run_line("model 16").unwrap();
        assert!(out.contains("sublinear"));
        assert!(out.contains("reduced"));
        assert!(out.contains("rytter"));
        assert!(out.contains("PT ="));
        // n <= 24 includes Gantt charts.
        assert!(out.contains('#'));
    }

    #[test]
    fn trace_flag_prints_iterations() {
        let out = run_line("solve --trace chain 3,5,7,2,8").unwrap();
        assert!(out.contains("iter   1"), "{out}");
    }

    #[test]
    fn help_contains_usage() {
        let out = run_line("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("pardp batch"));
        assert!(out.contains("--large-cells"));
    }

    /// Write a temp JSONL job file and return its path.
    fn temp_jobs(name: &str, lines: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "pardp-cli-test-{name}-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, lines).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn batch_solves_jsonl_jobs_and_emits_jsonl() {
        let path = temp_jobs(
            "mixed",
            "{\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n\
             \n\
             {\"family\":\"obst\",\"values\":[15,10,5,10,20],\"q\":[5,10,5,5,5,10],\"algo\":\"reduced\"}\n\
             {\"family\":\"merge\",\"values\":[10,20,30],\"algo\":\"wavefront\"}\n",
        );
        let out = run_line(&format!("batch {path}")).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "3 jobs + summary: {out}");
        assert!(lines[0].contains("\"value\":15125"), "{out}");
        assert!(lines[0].contains("\"algo\":\"sublinear\""), "{out}");
        assert!(lines[1].contains("\"value\":275"), "{out}");
        assert!(lines[1].contains("\"algo\":\"reduced\""), "{out}");
        assert!(lines[2].contains("\"value\":90"), "{out}");
        assert!(lines[3].contains("\"jobs\":3"), "{out}");
        assert!(lines[3].contains("\"throughput\""), "{out}");
    }

    #[test]
    fn batch_matches_solve_per_job_on_every_backend() {
        let path = temp_jobs(
            "backends",
            "{\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n\
             {\"family\":\"polygon\",\"values\":[1,10,1,10]}\n",
        );
        for backend in ["seq", "parallel", "threads:2"] {
            let out = run_line(&format!("batch --backend {backend} {path}")).unwrap();
            assert!(out.contains("\"value\":15125"), "{backend}: {out}");
            assert!(out.contains("\"value\":20"), "{backend}: {out}");
        }
        // Forcing the parallel per-problem regime changes no value.
        let out = run_line(&format!("batch --large-cells 0 {path}")).unwrap();
        assert!(out.contains("\"regime\":\"large\""), "{out}");
        assert!(out.contains("\"value\":15125"), "{out}");
        assert!(out.contains("\"large_jobs\":2"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_errors_name_the_offending_line() {
        let path = temp_jobs("bad-json", "{\"family\":\"chain\"\n");
        let err = run_line(&format!("batch {path}")).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.0.contains("line 1"), "{err}");

        let path = temp_jobs("bad-family", "{\"family\":\"knapsack\",\"values\":[1,2]}\n");
        let err = run_line(&format!("batch {path}")).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.0.contains("unknown problem family"), "{err}");

        let path = temp_jobs("bad-obst", "{\"family\":\"obst\",\"values\":[1,2]}\n");
        let err = run_line(&format!("batch {path}")).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.0.contains("\"q\" field"), "{err}");

        let path = temp_jobs(
            "bad-obst-arity",
            "{\"family\":\"obst\",\"values\":[1,2],\"q\":[1,2]}\n",
        );
        let err = run_line(&format!("batch {path}")).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.0.contains("q needs exactly 3"), "{err}");

        let err = run_line("batch /nonexistent/jobs.jsonl").unwrap_err();
        assert!(err.0.contains("cannot read job file"), "{err}");

        // A bad per-job algo override names the file and job, like every
        // other per-job error.
        let path = temp_jobs(
            "bad-algo",
            "{\"family\":\"chain\",\"values\":[2,3,4]}\n\
             {\"family\":\"chain\",\"values\":[2,3,4],\"algo\":\"reducedd\"}\n",
        );
        let err = run_line(&format!("batch {path}")).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.0.contains("job 1"), "{err}");
        assert!(err.0.contains("unknown algorithm"), "{err}");
    }

    /// A fresh temp store directory path (removed before use).
    fn temp_store(name: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("pardp-cli-cache-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn solve_cache_misses_then_hits_bit_identically() {
        let dir = temp_store("solve");
        let cmd = format!("solve --cache {dir} chain 30,35,15,5,10,20,25");
        let cold = run_line(&cmd).unwrap();
        assert!(cold.contains("cache: miss"), "{cold}");
        assert!(cold.contains("= 15125"), "{cold}");
        let hit = run_line(&cmd).unwrap();
        assert!(hit.contains("cache: hit"), "{hit}");
        // Apart from the outcome line the two outputs agree exactly.
        assert_eq!(
            cold.replace("cache: miss (stored for next time)", "X"),
            hit.replace("cache: hit", "X"),
        );
        // The witness reconstructs identically from a cached table.
        let wit = run_line(&format!("{cmd} --witness")).unwrap();
        assert!(wit.contains("((A1 (A2 A3)) ((A4 A5) A6))"), "{wit}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn solve_cache_warm_starts_a_longer_chain() {
        let dir = temp_store("warm");
        let cold = run_line(&format!("solve --cache {dir} chain 30,35,15,5,10")).unwrap();
        assert!(cold.contains("cache: miss"), "{cold}");
        let warm = run_line(&format!("solve --cache {dir} chain 30,35,15,5,10,20,25")).unwrap();
        assert!(
            warm.contains("cache: warm start from cached n = 4"),
            "{warm}"
        );
        assert!(warm.contains("= 15125"), "{warm}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_cache_reports_traffic_and_dedups() {
        let dir = temp_store("batch");
        let path = temp_jobs(
            "cached",
            "{\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n\
             {\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n\
             {\"family\":\"merge\",\"values\":[10,20,30]}\n",
        );
        let out = run_line(&format!("batch --cache {dir} {path}")).unwrap();
        assert!(
            out.contains(
                "\"cache_hits\":0,\"cache_misses\":2,\"warm_starts\":0,\"deduped\":1,\"errors\":0"
            ),
            "{out}"
        );
        assert_eq!(out.lines().count(), 5, "3 jobs + cache + summary: {out}");
        let again = run_line(&format!("batch --cache {dir} {path}")).unwrap();
        assert!(again.contains("\"cache_hits\":2"), "{again}");
        // Job records and the summary are bit-identical apart from wall
        // time — compare the deterministic value/hash fields.
        for (a, b) in out.lines().zip(again.lines()).take(3) {
            let va = a.split("\"wall_seconds\"").next().unwrap();
            let vb = b.split("\"wall_seconds\"").next().unwrap();
            assert_eq!(va, vb);
        }
        // Without --cache the same duplicate batch still works (dedup is
        // internal; output shape is the cache-less 4 lines).
        let plain = run_line(&format!("batch {path}")).unwrap();
        assert_eq!(plain.lines().count(), 4, "{plain}");
        assert!(!plain.contains("cache_hits"), "{plain}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_stat_and_clear_round_trip() {
        let dir = temp_store("statclear");
        // Populate with two records via solve.
        run_line(&format!("solve --cache {dir} chain 2,3,4")).unwrap();
        run_line(&format!("solve --cache {dir} merge 10,20,30")).unwrap();
        let out = run_line(&format!("cache stat {dir}")).unwrap();
        assert!(out.contains("2 record(s)"), "{out}");
        assert!(out.contains("family chain: 1"), "{out}");
        assert!(out.contains("family merge: 1"), "{out}");
        assert!(out.contains("algo sublinear: 2"), "{out}");
        let out = run_line(&format!("cache clear {dir}")).unwrap();
        assert!(out.contains("cleared 2 record(s)"), "{out}");
        let out = run_line(&format!("cache stat {dir}")).unwrap();
        assert!(out.contains("0 record(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_commands_reject_missing_and_report_corrupt_stores() {
        // Missing directory: pointed error, no directory created.
        let dir = temp_store("missing");
        for action in ["stat", "clear"] {
            let err = run_line(&format!("cache {action} {dir}")).unwrap_err();
            assert!(err.0.contains("does not exist"), "{action}: {err}");
        }
        assert!(!std::path::Path::new(&dir).exists());

        // A corrupt store file: stat opens it, counts zero retrievable
        // records, and reports every byte as skipped.
        let dir = temp_store("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            std::path::Path::new(&dir).join("store.dat"),
            b"this is not a pardp store",
        )
        .unwrap();
        let out = run_line(&format!("cache stat {dir}")).unwrap();
        assert!(out.contains("0 record(s)"), "{out}");
        assert!(out.contains("25 invalid byte(s) skipped"), "{out}");
        // Solving over the corrupt store overwrites the junk tail.
        run_line(&format!("solve --cache {dir} chain 2,3,4")).unwrap();
        let out = run_line(&format!("cache stat {dir}")).unwrap();
        assert!(out.contains("1 record(s)"), "{out}");
        assert!(out.contains("0 invalid byte(s) skipped"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_guards_knuth_like_the_solve_path() {
        // This crafted chain provably lacks the quadrangle inequality
        // (same instance as the solve-path guard test); batch must not
        // silently emit Knuth's wrong value for it.
        let path = temp_jobs(
            "knuth",
            "{\"family\":\"chain\",\"values\":[10,1,10,1,10,1,10],\"algo\":\"knuth\"}\n",
        );
        let r = run_line(&format!("batch {path}"));
        std::fs::remove_file(&path).ok();
        match r {
            Ok(out) => assert!(out.contains("\"algo\":\"knuth\""), "{out}"),
            Err(e) => {
                assert!(e.0.contains("quadrangle"), "{e}");
                assert!(e.0.contains("job 0"), "{e}");
            }
        }
    }
}
