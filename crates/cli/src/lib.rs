//! # pardp-cli — command-line front end
//!
//! A small, dependency-free argument layer over the workspace: parse a
//! problem description, pick a solver, print values, witnesses, traces,
//! game runs and PRAM cost models. The `pardp` binary:
//!
//! ```text
//! pardp solve chain 30,35,15,5,10,20,25 --algo sublinear --witness
//! pardp solve obst --p 15,10,5,10,20 --q 5,10,5,5,5,10
//! pardp solve polygon 3,7,4,5,2,6 --algo reduced
//! pardp solve merge 10,20,30 --witness
//! pardp game zigzag 256 [--rule jump]
//! pardp model 32 --processors 1024
//! pardp bound 100
//! ```
//!
//! Everything here is ordinary library code so it is unit-testable; the
//! binary is a thin `main` that forwards `std::env::args`.

#![deny(unsafe_op_in_unsafe_fn)]
pub mod args;
pub mod commands;

pub use args::{CliError, Parsed};

/// Entry point shared by the binary and the tests: parse and execute,
/// writing human-readable output to the returned string.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = args::parse(argv)?;
    commands::execute(&parsed)
}
