//! The `pardp` command-line tool. See `pardp help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match pardp_cli::run(&argv) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'pardp help'");
            ExitCode::FAILURE
        }
    }
}
