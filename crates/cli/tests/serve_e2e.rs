//! End-to-end parity of the real binary: streaming a job file through
//! `pardp serve --pipe` must answer with records bit-identical to
//! `pardp batch` on the same file (modulo the nondeterministic
//! `wall_seconds`), because both front ends share `pardp_core::spec`
//! and the same scheduling regimes.

use std::io::Write;
use std::process::{Command, Stdio};

use pardp_core::prelude::JobRecord;

const JOBS: &str = r#"{"family":"chain","values":[30,35,15,5,10,20,25]}
{"family":"obst","values":[15,10,5,10,20],"q":[5,10,5,5,5,10],"algo":"reduced"}
{"family":"merge","values":[10,20,30],"algo":"wavefront"}
{"family":"polygon","values":[1,10,1,10],"algo":"seq"}
{"family":"chain","values":[3,5,7,2,8],"trace":true}
"#;

fn pardp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pardp"))
}

fn records(lines: &str) -> Vec<JobRecord> {
    lines
        .lines()
        .map(|l| {
            let r: JobRecord = serde_json::from_str(l).unwrap_or_else(|e| panic!("{e:?}: {l}"));
            r.deterministic()
        })
        .collect()
}

#[test]
fn serve_pipe_matches_batch_on_the_same_job_file() {
    let path = std::env::temp_dir().join(format!("pardp-serve-e2e-{}.jsonl", std::process::id()));
    std::fs::write(&path, JOBS).unwrap();

    let batch = pardp().arg("batch").arg(&path).output().unwrap();
    assert!(batch.status.success(), "{batch:?}");
    let batch_out = String::from_utf8(batch.stdout).unwrap();
    // Drop the batch summary trailer; serve answers per request only.
    let batch_lines: Vec<&str> = batch_out.lines().collect();
    let (records_part, trailer) = batch_lines.split_at(batch_lines.len() - 1);
    assert!(trailer[0].contains("\"throughput\""), "{}", trailer[0]);

    let mut serve = pardp()
        .args(["serve", "--pipe"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    serve
        .stdin
        .take()
        .unwrap()
        .write_all(JOBS.as_bytes())
        .unwrap();
    let out = serve.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let serve_out = String::from_utf8(out.stdout).unwrap();

    let batch_records = records(&records_part.join("\n"));
    let serve_records = records(&serve_out);
    assert_eq!(batch_records.len(), 5);
    assert_eq!(serve_records, batch_records);

    // The drained-counter summary goes to stderr, not into the protocol.
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("completed 5"), "{err}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_pipe_stats_and_shutdown_commands_work_end_to_end() {
    let mut serve = pardp()
        .args(["serve", "--pipe", "--queue", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    serve
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"{\"family\":\"chain\",\"values\":[2,3,4]}\n\
              {\"cmd\":\"stats\"}\n\
              {\"cmd\":\"shutdown\"}\n\
              {\"family\":\"chain\",\"values\":[4,5,6]}\n",
        )
        .unwrap();
    let out = serve.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "record + stats + ack, then EOF: {text}");
    assert!(lines[0].contains("\"value\":24"), "{}", lines[0]);
    assert!(lines[1].contains("\"queue_capacity\":4"), "{}", lines[1]);
    assert!(lines[2].contains("\"ok\":\"shutdown\""), "{}", lines[2]);
}

#[test]
fn serve_rejects_bad_transport_combinations() {
    let out = pardp().arg("serve").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("exactly one"), "{err}");
}
