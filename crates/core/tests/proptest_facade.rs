//! The `Solver` façade is a *pure re-routing* of the per-module entry
//! points: for every [`Algorithm`] × [`ExecBackend`] the façade's table
//! must be bit-identical to calling the direct function with the
//! equivalent config — same cells, same iteration counts, same trace
//! totals. Plus registry invariants: names round-trip, the listing is
//! complete.

use pardp_core::prelude::*;
use proptest::prelude::*;

fn chain(dims: &[u64]) -> impl DpProblem<u64> {
    let dims = dims.to_vec();
    let n = dims.len() - 1;
    FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
}

const BACKENDS: [ExecBackend; 3] = [
    ExecBackend::Sequential,
    ExecBackend::Parallel,
    ExecBackend::Threads(3),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Façade output == direct entry point output, cell for cell, for
    // every algorithm and backend. (Knuth's table may be *invalid* on a
    // non-QI chain, but the façade must reproduce exactly the same
    // restricted-search table the direct call computes.)
    #[test]
    fn facade_is_bit_identical_to_direct_entry_points(
        dims in proptest::collection::vec(1u64..80, 2..16)
    ) {
        let p = chain(&dims);
        for exec in BACKENDS {
            let opts = SolveOptions::default()
                .exec(exec)
                .termination(Termination::Fixpoint)
                .record_trace(true);

            for algo in Algorithm::ALL {
                let facade = Solver::new(algo).options(opts).solve(&p);
                prop_assert_eq!(facade.algorithm, algo);
                let direct = match algo {
                    Algorithm::Sequential => solve_sequential(&p),
                    Algorithm::Knuth => solve_knuth(&p),
                    Algorithm::Wavefront => solve_wavefront(&p, &opts.wavefront_config()),
                    Algorithm::Sublinear => {
                        let sol = solve_sublinear(&p, &opts.sublinear_config());
                        prop_assert_eq!(sol.trace.iterations, facade.trace.iterations);
                        prop_assert_eq!(
                            sol.trace.total_candidates,
                            facade.trace.total_candidates
                        );
                        sol.w
                    }
                    Algorithm::Reduced => {
                        let sol = solve_reduced(&p, &opts.reduced_config());
                        prop_assert_eq!(sol.trace.iterations, facade.trace.iterations);
                        prop_assert_eq!(
                            sol.trace.total_candidates,
                            facade.trace.total_candidates
                        );
                        sol.w
                    }
                    Algorithm::Rytter => {
                        let sol = solve_rytter(&p, &opts.rytter_config());
                        prop_assert_eq!(sol.trace.iterations, facade.trace.iterations);
                        sol.w
                    }
                };
                prop_assert!(
                    facade.w.table_eq(&direct),
                    "{algo} on {exec}: façade table differs from the direct entry point"
                );
            }
        }
    }

    // The façade's uniform diagnostics are internally consistent for
    // every algorithm: stats aggregate the trace, the wall clock ticks,
    // and tree() reconstructs a tree of the right size.
    #[test]
    fn facade_solutions_are_uniformly_well_formed(
        dims in proptest::collection::vec(1u64..80, 2..12)
    ) {
        let p = chain(&dims);
        let n = dims.len() - 1;
        for algo in Algorithm::ALL {
            if algo == Algorithm::Knuth {
                continue; // table may be invalid on a non-QI chain
            }
            let sol = Solver::new(algo)
                .options(SolveOptions::default().exec(ExecBackend::Sequential).record_trace(true))
                .solve(&p);
            prop_assert_eq!(sol.trace.n, n, "{}", algo);
            prop_assert_eq!(
                sol.trace.per_iteration.len() as u64,
                sol.trace.iterations,
                "{}", algo
            );
            if algo.is_iterative() {
                prop_assert_eq!(
                    sol.stats.candidates, sol.trace.total_candidates,
                    "{}", algo
                );
            } else {
                prop_assert_eq!(sol.stats, OpStats::default(), "{}", algo);
                prop_assert_eq!(sol.trace.stop, StopReason::Direct, "{}", algo);
            }
            prop_assert!(
                sol.wall > std::time::Duration::ZERO,
                "{} wall must cover solve + diagnostics assembly", algo
            );
            let tree = sol.tree(&p).expect("solved table");
            prop_assert_eq!(tree.n_leaves(), n, "{}", algo);
        }
    }
}

// `Solution.wall` is measured in the façade, around the whole dispatch,
// for **every** algorithm (the direct paths used to be measured in the
// façade but the iterative ones inside their modules) — so it is never
// zero, Knuth included.
#[test]
fn wall_time_is_positive_for_every_algorithm() {
    let p = chain(&[30, 35, 15, 5, 10, 20, 25]);
    for algo in Algorithm::ALL {
        let sol = Solver::new(algo)
            .options(SolveOptions::default().exec(ExecBackend::Sequential))
            .solve(&p);
        assert!(sol.wall > std::time::Duration::ZERO, "{algo}");
    }
}

#[test]
fn registry_round_trips_and_is_complete() {
    for a in Algorithm::ALL {
        assert_eq!(a.name().parse::<Algorithm>().unwrap(), a);
        assert_eq!(a.to_string(), a.name());
    }
    // Canonical names are pairwise distinct.
    let mut names: Vec<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), Algorithm::ALL.len());
    // The listing mentions every name and description.
    let listing = Algorithm::listing();
    for a in Algorithm::ALL {
        assert!(listing.contains(a.name()));
        assert!(listing.contains(a.description()));
    }
}
