//! Machine-checking the §4 claim (b) against the true partial weights:
//!
//! * `pw'(i,j,p,q) >= pw(i,j,p,q)` after **every** operation (soundness —
//!   the algebraic tables never under-shoot);
//! * at the full fixpoint (uncapped iteration), `pw' = pw` on every
//!   nested quadruple — the restricted (r,q)/(p,s) composition closure is
//!   complete, because the immediate parent of any gap shares an endpoint
//!   with it (the observation justifying eq. (2c)).

use pardp_core::ops::{a_activate_dense, a_pebble_dense, a_square_dense};
use pardp_core::prelude::*;
use pardp_core::problem::TabulatedProblem;
use pardp_core::seq::solve_pw_oracle;
use pardp_core::tables::{DensePw, WTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(n: usize, seed: u64) -> TabulatedProblem<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = n + 1;
    let init: Vec<u64> = (0..n).map(|_| rng.gen_range(0..40)).collect();
    let f: Vec<u64> = (0..m * m * m).map(|_| rng.gen_range(0..40)).collect();
    TabulatedProblem::new(init, |i, k, j| f[(i * m + k) * m + j])
}

/// Assert `pw' >= pw` everywhere; count exact matches.
fn check_soundness(n: usize, pw_algo: &DensePw<u64>, pw_true: &DensePw<u64>, stage: &str) -> usize {
    let mut exact = 0;
    for i in 0..n {
        for j in i + 1..=n {
            for p in i..j {
                for q in p + 1..=j {
                    let algo = pw_algo.get(i, j, p, q);
                    let truth = pw_true.get(i, j, p, q);
                    assert!(
                        algo >= truth,
                        "{stage}: pw'({i},{j},{p},{q}) = {algo} < pw = {truth}"
                    );
                    if algo == truth {
                        exact += 1;
                    }
                }
            }
        }
    }
    exact
}

#[test]
fn pw_oracle_diagonal_and_monotonicity() {
    let p = random_instance(8, 1);
    let w = solve_sequential(&p);
    let pw = solve_pw_oracle(&p, &w);
    let n = 8;
    for i in 0..n {
        for j in i + 1..=n {
            // Diagonal zero.
            assert_eq!(pw.get(i, j, i, j), 0);
            for pp in i..j {
                for q in pp + 1..=j {
                    // pw + w(gap) >= w(root): filling the gap optimally
                    // yields some tree for (i,j).
                    let filled = pw.get(i, j, pp, q) + w.get(pp, q);
                    assert!(
                        filled >= w.get(i, j),
                        "({i},{j},{pp},{q}): {filled} < {}",
                        w.get(i, j)
                    );
                }
            }
        }
    }
}

#[test]
fn pw_oracle_realizes_w_through_leaf_gaps() {
    // w(i,j) = min over leaf gaps (t,t+1) of pw(i,j,t,t+1) + init(t):
    // every tree has all its leaves, so closing the best leaf gap of the
    // best partial tree realizes the optimum.
    let p = random_instance(9, 2);
    let w = solve_sequential(&p);
    let pw = solve_pw_oracle(&p, &w);
    let n = 9;
    for i in 0..n {
        for j in i + 2..=n {
            let best = (i..j)
                .map(|t| pw.get(i, j, t, t + 1).saturating_add(p.init(t)))
                .min()
                .unwrap();
            assert_eq!(best, w.get(i, j), "({i},{j})");
        }
    }
}

#[test]
fn algebraic_pw_is_sound_every_iteration_and_exact_at_fixpoint() {
    for seed in 0..4u64 {
        let n = 8usize;
        let p = random_instance(n, 100 + seed);
        let w_star = solve_sequential(&p);
        let pw_star = solve_pw_oracle(&p, &w_star);

        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        // Uncapped iteration to the true fixpoint (cap 4n as a safety
        // net far above any possible convergence horizon).
        let mut iterations = 0;
        loop {
            let a = a_activate_dense(&p, &w, &mut pw, &ExecBackend::Sequential);
            check_soundness(n, &pw, &pw_star, "after a-activate");
            let s = a_square_dense(&pw, &mut pw_next, &ExecBackend::Sequential);
            std::mem::swap(&mut pw, &mut pw_next);
            check_soundness(n, &pw, &pw_star, "after a-square");
            let pb = a_pebble_dense(&pw, &w, &mut w_next, &ExecBackend::Sequential);
            std::mem::swap(&mut w, &mut w_next);
            iterations += 1;
            if !a.changed && !s.changed && !pb.changed {
                break;
            }
            assert!(
                iterations <= 4 * n,
                "no fixpoint after {iterations} iterations"
            );
        }
        // At the fixpoint: w' = w everywhere and pw' = pw everywhere.
        assert!(w.table_eq(&w_star), "seed={seed}");
        let exact = check_soundness(n, &pw, &pw_star, "at fixpoint");
        let mut total = 0;
        for i in 0..n {
            for j in i + 1..=n {
                total += (j - i) * (j - i + 1) / 2;
            }
        }
        assert_eq!(
            exact, total,
            "seed={seed}: not all quadruples exact at fixpoint"
        );
    }
}

#[test]
fn banded_pw_in_band_cells_are_sound() {
    use pardp_core::ops::{a_activate_banded, a_square_banded};
    use pardp_core::tables::BandedPw;
    let n = 9usize;
    let p = random_instance(n, 7);
    let w_star = solve_sequential(&p);
    let pw_star = solve_pw_oracle(&p, &w_star);
    let band = pardp_core::reduced::default_band(n);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = BandedPw::new(n, band);
    let mut pw_next = BandedPw::new(n, band);
    let mut w_next = w.clone();
    for _ in 0..2 * pardp_pebble::ceil_sqrt(n as u64) {
        a_activate_banded(&p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_banded(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        pardp_core::ops::a_pebble_banded(&p, &pw, &w, &mut w_next, None, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
        for i in 0..n {
            for j in i + 1..=n {
                for (pp, q) in pw.gaps_of(i, j) {
                    assert!(
                        pw.get(i, j, pp, q) >= pw_star.get(i, j, pp, q),
                        "banded pw'({i},{j},{pp},{q}) under-shoots"
                    );
                }
            }
        }
    }
    assert!(w.table_eq(&w_star));
}
