//! Property tests of the [`OpStats`] accounting contract and the
//! tiled-vs-naive square parity:
//!
//! * every op reports `changed == (writes > 0)` and never more writes
//!   than the cells it is allowed to store into;
//! * on fresh tables, `candidates` matches the closed-form count derived
//!   independently from the operation definitions;
//! * the tiled and naive dense-square kernels produce bit-identical
//!   tables and identical stats on every backend.

use pardp_core::ops::{
    a_activate_banded, a_activate_banded_tracked, a_activate_dense, a_pebble_banded,
    a_pebble_banded_scheduled, a_pebble_dense, a_pebble_dense_scheduled, a_square_banded,
    a_square_banded_scheduled, a_square_dense, a_square_dense_scheduled, a_square_rytter_with,
    OpStats, SquareStrategy,
};
use pardp_core::prelude::*;
use pardp_core::problem::TabulatedProblem;
use pardp_core::reduced::default_band;
use pardp_core::tables::{BandedPw, DensePw, PairIndexer, WTable};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Strategy: a complete instance (init values + f values) for size n.
fn instance_strategy(n: usize) -> impl Strategy<Value = TabulatedProblem<u64>> {
    let m = n + 1;
    (
        proptest::collection::vec(0u64..100, n),
        proptest::collection::vec(0u64..100, m * m * m),
    )
        .prop_map(move |(init, f)| TabulatedProblem::new(init, |i, k, j| f[(i * m + k) * m + j]))
}

/// Drive the dense ops for `iters` iterations from the initial state.
fn warm_dense(p: &TabulatedProblem<u64>, iters: usize) -> (WTable<u64>, DensePw<u64>) {
    let n = p.n();
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();
    for _ in 0..iters {
        a_activate_dense(p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_dense(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_dense(&pw, &w, &mut w_next, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
    }
    (w, pw)
}

/// Drive the banded ops for `iters` iterations from the initial state.
fn warm_banded(
    p: &TabulatedProblem<u64>,
    band: usize,
    iters: usize,
) -> (WTable<u64>, BandedPw<u64>) {
    let n = p.n();
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, p.init(i));
    }
    let mut pw = BandedPw::new(n, band);
    let mut pw_next = BandedPw::new(n, band);
    let mut w_next = w.clone();
    for _ in 0..iters {
        a_activate_banded(p, &w, &mut pw, &ExecBackend::Sequential);
        a_square_banded(&pw, &mut pw_next, &ExecBackend::Sequential);
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_banded(p, &pw, &w, &mut w_next, None, &ExecBackend::Sequential);
        std::mem::swap(&mut w, &mut w_next);
    }
    (w, pw)
}

/// `changed == (writes > 0)` and `writes <= cap`.
fn check_accounting(stats: &OpStats, cap: u64, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(stats.changed, stats.writes > 0, "{}: {:?}", label, stats);
    prop_assert!(
        stats.writes <= cap,
        "{}: writes {} above cell cap {}",
        label,
        stats.writes,
        cap
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_square_matches_naive_on_every_backend(
        p in instance_strategy(10),
        iters in 0usize..4,
        tile in 1usize..90,
    ) {
        let (_, pw) = warm_dense(&p, iters);
        let n = p.n();
        let mut reference = DensePw::new(n);
        let (base, base_rows) = a_square_dense_scheduled(
            &pw, &mut reference, SquareStrategy::Naive, None, &ExecBackend::Sequential,
        );
        for backend in [
            ExecBackend::Sequential,
            ExecBackend::Parallel,
            ExecBackend::Threads(3),
        ] {
            for strategy in [
                SquareStrategy::Naive,
                SquareStrategy::Auto,
                SquareStrategy::Tiled(tile),
            ] {
                let mut out = DensePw::new(n);
                let (stats, rows) =
                    a_square_dense_scheduled(&pw, &mut out, strategy, None, &backend);
                prop_assert_eq!(
                    out.as_slice(), reference.as_slice(),
                    "tables diverge: {} on {}", strategy, backend
                );
                prop_assert_eq!(stats, base, "stats diverge: {} on {}", strategy, backend);
                prop_assert_eq!(&rows, &base_rows, "row flags diverge: {} on {}", strategy, backend);
            }
        }
        // Rytter's streamed kernel against its naive reference.
        let mut y_ref = DensePw::new(n);
        let y_base = a_square_rytter_with(
            &pw, &mut y_ref, SquareStrategy::Naive, &ExecBackend::Sequential,
        );
        for backend in [ExecBackend::Sequential, ExecBackend::Threads(3)] {
            let mut y_out = DensePw::new(n);
            let y_stats = a_square_rytter_with(&pw, &mut y_out, SquareStrategy::Auto, &backend);
            prop_assert_eq!(y_out.as_slice(), y_ref.as_slice(), "rytter tables diverge on {}", backend);
            prop_assert_eq!(y_stats, y_base, "rytter stats diverge on {}", backend);
        }
    }

    #[test]
    fn dense_op_accounting_invariants(
        p in instance_strategy(9),
        iters in 0usize..5,
    ) {
        let n = p.n();
        let idx = PairIndexer::new(n);
        let (w, pw) = warm_dense(&p, iters);
        // Cell caps: what each op is allowed to store into.
        let nested_cells: u64 = idx
            .pairs()
            .map(|(i, j)| {
                let d = (j - i) as u64;
                d * (d + 1) / 2
            })
            .sum();
        let pair_count = idx.len() as u64;

        let mut pw_act = pw.clone();
        let act = a_activate_dense(&p, &w, &mut pw_act, &ExecBackend::Sequential);
        check_accounting(&act, act.candidates, "activate")?;

        let mut next = DensePw::new(n);
        let sq = a_square_dense(&pw_act, &mut next, &ExecBackend::Sequential);
        check_accounting(&sq, nested_cells, "square")?;

        let mut y_next = DensePw::new(n);
        let ry = a_square_rytter_with(
            &pw_act, &mut y_next, SquareStrategy::Auto, &ExecBackend::Sequential,
        );
        check_accounting(&ry, nested_cells, "rytter")?;

        let mut w_next = w.clone();
        let pb = a_pebble_dense(&next, &w, &mut w_next, &ExecBackend::Sequential);
        check_accounting(&pb, pair_count, "pebble")?;
    }

    #[test]
    fn fresh_table_candidates_match_closed_forms(n in 2usize..11) {
        let p = TabulatedProblem::new(vec![1u64; n], |i, k, j| (i + k + j) as u64);
        let idx = PairIndexer::new(n);
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }

        // Independent model counts, straight from the op definitions.
        let mut act_model = 0u64;
        let mut sq_model = 0u64;
        let mut ry_model = 0u64;
        let mut pb_model = 0u64;
        for (i, j) in idx.pairs() {
            if j - i >= 2 {
                act_model += 2 * (j - i - 1) as u64;
            }
            let mut nested = 0u64;
            for pp in i..j {
                for q in pp + 1..=j {
                    nested += 1;
                    sq_model += (pp - i) as u64 + (j - q) as u64;
                    ry_model += (pp - i + 1) as u64 * (j - q + 1) as u64;
                }
            }
            pb_model += nested - 1; // the (i,j) gap itself is free
        }

        let mut pw = DensePw::new(n);
        let act = a_activate_dense(&p, &w, &mut pw, &ExecBackend::Sequential);
        prop_assert_eq!(act.candidates, act_model);

        let fresh = DensePw::new(n);
        let mut next = DensePw::new(n);
        for strategy in [SquareStrategy::Naive, SquareStrategy::Auto, SquareStrategy::Tiled(2)] {
            let (sq, _) = a_square_dense_scheduled(
                &fresh, &mut next, strategy, None, &ExecBackend::Sequential,
            );
            prop_assert_eq!(sq.candidates, sq_model, "square {}", strategy);
            let ry = a_square_rytter_with(&fresh, &mut next, strategy, &ExecBackend::Sequential);
            prop_assert_eq!(ry.candidates, ry_model, "rytter {}", strategy);
        }

        let mut w_next = w.clone();
        let pb = a_pebble_dense(&fresh, &w, &mut w_next, &ExecBackend::Sequential);
        prop_assert_eq!(pb.candidates, pb_model);
    }

    #[test]
    fn banded_op_accounting_invariants(
        p in instance_strategy(12),
        extra_band in 0usize..6,
        window_spec in (0usize..3, 0usize..6, 6usize..14),
    ) {
        let window = match window_spec {
            (0, ..) => None,
            (_, lo, hi) => Some((lo, hi)),
        };
        let n = p.n();
        let band = default_band(n) + extra_band;
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = BandedPw::new(n, band);
        let mut pw_next = BandedPw::new(n, band);
        let mut w_next = w.clone();
        let stored = pw.stored_cells() as u64;
        let pair_count = PairIndexer::new(n).len() as u64;
        for round in 0..3 {
            let act = a_activate_banded(&p, &w, &mut pw, &ExecBackend::Sequential);
            check_accounting(&act, stored, &format!("activate round {round}"))?;
            let sq = a_square_banded(&pw, &mut pw_next, &ExecBackend::Sequential);
            check_accounting(&sq, stored, &format!("square round {round}"))?;
            std::mem::swap(&mut pw, &mut pw_next);
            let pb = a_pebble_banded(&p, &pw, &w, &mut w_next, window, &ExecBackend::Sequential);
            // Windowed-out pairs are copies, not writes: the cap is the
            // number of re-minimised pairs.
            let cap = match window {
                None => pair_count,
                Some((lo, hi)) => PairIndexer::new(n)
                    .pairs()
                    .filter(|(i, j)| j - i > lo && j - i <= hi)
                    .count() as u64,
            };
            check_accounting(&pb, cap, &format!("pebble round {round}"))?;
            std::mem::swap(&mut w, &mut w_next);
        }
    }

    #[test]
    fn banded_square_streamed_matches_naive_on_every_backend(
        p in instance_strategy(12),
        iters in 0usize..4,
        extra_band in 0usize..5,
        tile in 1usize..90,
    ) {
        // Warm realistic banded tables, then one square per kernel and
        // backend: tables, stats and per-row flags must match the naive
        // sequential reference bit for bit.
        let n = p.n();
        let band = default_band(n) + extra_band;
        let (w, pw) = warm_banded(&p, band, iters);
        let mut reference = BandedPw::new(n, band);
        let (base, base_rows) = a_square_banded_scheduled(
            &pw, &mut reference, SquareStrategy::Naive, None, &ExecBackend::Sequential,
        );
        for backend in [
            ExecBackend::Sequential,
            ExecBackend::Parallel,
            ExecBackend::Threads(3),
        ] {
            for strategy in [
                SquareStrategy::Naive,
                SquareStrategy::Auto,
                SquareStrategy::Tiled(tile),
            ] {
                let mut out = BandedPw::new(n, band);
                let (stats, rows) =
                    a_square_banded_scheduled(&pw, &mut out, strategy, None, &backend);
                prop_assert_eq!(
                    out.as_slice(), reference.as_slice(),
                    "banded tables diverge: {} on {}", strategy, backend
                );
                prop_assert_eq!(stats, base, "banded stats diverge: {} on {}", strategy, backend);
                prop_assert_eq!(
                    &rows, &base_rows,
                    "banded row flags diverge: {} on {}", strategy, backend
                );
            }
        }
        // Skip-everything degrades to a verbatim copy with no stats.
        let mut copied = BandedPw::new(n, band);
        let skip = vec![true; pw.indexer().len()];
        let (stats, rows) = a_square_banded_scheduled(
            &pw, &mut copied, SquareStrategy::Auto, Some(&skip), &ExecBackend::Threads(3),
        );
        prop_assert_eq!(copied.as_slice(), pw.as_slice());
        prop_assert_eq!(stats, OpStats::default());
        prop_assert!(rows.iter().all(|&b| !b));
        // The activate-tracked flags match a changed-cell diff.
        let mut pw_act = pw.clone();
        let (act, act_rows) =
            a_activate_banded_tracked(&p, &w, &mut pw_act, &ExecBackend::Threads(3));
        prop_assert_eq!(act.changed, act_rows.iter().any(|&b| b));
        for (a, &flag) in act_rows.iter().enumerate() {
            let (s, e) = pw.row_span(a);
            let row_changed = pw.as_slice()[s..e] != pw_act.as_slice()[s..e];
            prop_assert_eq!(flag, row_changed, "activate flag row {}", a);
        }
    }

    #[test]
    fn scheduled_pebbles_skip_exactly_and_flag_changes(
        p in instance_strategy(11),
        iters in 1usize..4,
        window_spec in (0usize..3, 0usize..5, 5usize..12),
    ) {
        let window = match window_spec {
            (0, ..) => None,
            (_, lo, hi) => Some((lo, hi)),
        };
        let n = p.n();
        let band = default_band(n);
        let (w, pw) = warm_banded(&p, band, iters);
        let idx = PairIndexer::new(n);
        let dim = idx.len();

        // Banded: a full pass is the reference; its per-pair flags must
        // equal the w-table diff, windowed-out pairs must report false.
        let mut w_full = WTable::new(n);
        let (full, full_flags) = a_pebble_banded_scheduled(
            &p, &pw, &w, &mut w_full, window, None, &ExecBackend::Sequential,
        );
        prop_assert_eq!(full.changed, full.writes > 0);
        prop_assert_eq!(full_flags.iter().filter(|&&b| b).count() as u64, full.writes);
        for (a, (i, j)) in idx.pairs().enumerate() {
            let changed = w_full.get(i, j) != w.get(i, j);
            prop_assert_eq!(full_flags[a], changed, "flag ({},{})", i, j);
            if let Some((lo, hi)) = window {
                if j - i <= lo || j - i > hi {
                    prop_assert!(!full_flags[a], "windowed-out pair flagged ({},{})", i, j);
                }
            }
        }
        // Skipping the clean pairs (those a full pass did not improve)
        // must reproduce the full result with fewer candidates, on every
        // backend.
        let skip: Vec<bool> = full_flags.iter().map(|&b| !b).collect();
        for backend in [
            ExecBackend::Sequential,
            ExecBackend::Parallel,
            ExecBackend::Threads(3),
        ] {
            let mut w_skip = WTable::new(n);
            let (stats, flags) = a_pebble_banded_scheduled(
                &p, &pw, &w, &mut w_skip, window, Some(&skip), &backend,
            );
            prop_assert!(w_skip.table_eq(&w_full), "skip diverges on {}", backend);
            prop_assert_eq!(stats.writes, full.writes, "writes diverge on {}", backend);
            prop_assert_eq!(&flags, &full_flags, "flags diverge on {}", backend);
            prop_assert!(stats.candidates <= full.candidates);
        }
        // Dense scheduled pebble: same contract, no window.
        let (_, dpw) = warm_dense(&p, iters);
        let mut w_dense_full = WTable::new(n);
        let (dfull, dflags) =
            a_pebble_dense_scheduled(&dpw, &w, &mut w_dense_full, None, &ExecBackend::Sequential);
        prop_assert_eq!(dflags.iter().filter(|&&b| b).count() as u64, dfull.writes);
        let dskip = vec![true; dim];
        let mut w_dense_skip = WTable::new(n);
        let (dstats, dflags2) = a_pebble_dense_scheduled(
            &dpw, &w, &mut w_dense_skip, Some(&dskip), &ExecBackend::Threads(3),
        );
        prop_assert!(w_dense_skip.table_eq(&w));
        prop_assert_eq!(dstats, OpStats::default());
        prop_assert!(dflags2.iter().all(|&b| !b));
    }

    #[test]
    fn banded_fresh_candidates_match_closed_forms(n in 2usize..12, extra in 0usize..4) {
        let band = default_band(n).saturating_sub(extra).max(1);
        let idx = PairIndexer::new(n);
        let in_band = |i: usize, j: usize, pp: usize, q: usize| (j - i) - (q - pp) <= band;

        // Model counts from the §5 windowed rules.
        let mut act_model = 0u64;
        let mut sq_model = 0u64;
        for (i, j) in idx.pairs() {
            if j - i < 2 {
                continue;
            }
            for k in i + 1..j {
                if in_band(i, j, i, k) {
                    act_model += 1; // gap (i,k)
                }
                if in_band(i, j, k, j) {
                    act_model += 1; // gap (k,j)
                }
            }
        }
        for (i, j) in idx.pairs() {
            for pp in i..j {
                for q in pp + 1..=j {
                    if !in_band(i, j, pp, q) {
                        continue;
                    }
                    for r in i..pp {
                        if in_band(i, j, r, q) && in_band(r, q, pp, q) {
                            sq_model += 1;
                        }
                    }
                    for s in q + 1..=j {
                        if in_band(i, j, pp, s) && in_band(pp, s, pp, q) {
                            sq_model += 1;
                        }
                    }
                }
            }
        }

        let p = TabulatedProblem::new(vec![1u64; n], |i, k, j| (i * k + j) as u64);
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = BandedPw::new(n, band);
        let act = a_activate_banded(&p, &w, &mut pw, &ExecBackend::Sequential);
        prop_assert_eq!(act.candidates, act_model);

        let fresh = BandedPw::<u64>::new(n, band);
        let mut next = BandedPw::new(n, band);
        let sq = a_square_banded(&fresh, &mut next, &ExecBackend::Sequential);
        prop_assert_eq!(sq.candidates, sq_model);
    }
}
