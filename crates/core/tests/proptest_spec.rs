//! Serde round-trip property tests for the shared wire API
//! (`pardp_core::spec`): a [`JobSpec`] survives JSONL unchanged, a
//! [`ProblemSpec`] survives the wire, and [`JobRecord`]s round-trip with
//! a table hash that matches the sequential oracle.

use pardp_core::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Every combination of family, optional override fields, and field
    // omission must come back from `to_string`/`from_str` unchanged —
    // including `None`s, which serialize as `null` and parse back as
    // absent-or-null.
    #[test]
    fn job_spec_round_trips_through_jsonl(
        family_ix in 0usize..4,
        values in proptest::collection::vec(1u64..100, 1..10),
        q_extra in 0u64..50,
        algo_ix in 0usize..8,   // past the registry end means "omit"
        band in 0usize..40,     // 0 means "omit"
        tile_ix in 0usize..4,
        trace_ix in 0usize..3,
    ) {
        let family = ["chain", "obst", "polygon", "merge"][family_ix];
        let q = (family == "obst").then(|| {
            let mut q: Vec<u64> = values.iter().map(|v| v % 7).collect();
            q.push(q_extra);
            q
        });
        let algo = Algorithm::ALL
            .get(algo_ix)
            .map(|a| a.name().to_string());
        let spec = JobSpec {
            family: family.into(),
            values,
            q,
            algo,
            band: (band > 0).then_some(band),
            tile: match tile_ix {
                0 => None,
                1 => Some("auto".into()),
                2 => Some("naive".into()),
                _ => Some("16".into()),
            },
            trace: match trace_ix {
                0 => None,
                1 => Some(false),
                _ => Some(true),
            },
        };
        let line = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(&back, &spec);
        // `parse_jobs` sees the same spec through blank-line noise.
        let text = format!("\n{line}\n\n{line}\n");
        let parsed = parse_jobs(&text).unwrap();
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(&parsed[0], &spec);
        prop_assert_eq!(&parsed[1], &spec);
    }

    // A validated instance pushed onto the wire and read back builds the
    // same instance.
    #[test]
    fn problem_spec_survives_the_wire(
        dims in proptest::collection::vec(1u64..50, 2..12),
        family_ix in 0usize..3,
    ) {
        let spec = match family_ix {
            0 => ProblemSpec::chain(dims).unwrap(),
            1 => ProblemSpec::merge(dims).unwrap(),
            _ => {
                let mut q = dims.clone();
                q.push(1);
                ProblemSpec::obst(dims, q).unwrap()
            }
        };
        let job = JobSpec::from(&spec);
        let line = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back.problem().unwrap(), spec);
    }

    // Result records round-trip (modulo the nondeterministic wall time),
    // and the table hash in the record is exactly the hash of the
    // sequential oracle's table.
    #[test]
    fn job_record_round_trips_and_hash_matches_the_oracle(
        dims in proptest::collection::vec(1u64..40, 2..10),
        traced in 0usize..2,
    ) {
        let spec = ProblemSpec::chain(dims).unwrap();
        let problem = spec.build();
        let solution = Solver::new(Algorithm::Sublinear)
            .options(SolveOptions::default().record_trace(traced == 1))
            .solve(&problem);
        let rec = JobRecord::of_solution(0, spec.family(), &solution, false);
        let line = serde_json::to_string(&rec).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back.deterministic(), rec.deterministic());
        prop_assert_eq!(rec.trace.is_some(), traced == 1);
        let seq = Solver::new(Algorithm::Sequential).solve(&problem);
        prop_assert_eq!(table_hash(&seq.w), rec.tables_hash);
    }
}
