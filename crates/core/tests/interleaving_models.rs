//! Interleaving models of the concurrent protocols in `pardp_core`,
//! run under the deterministic checker (`pardp_core::check`).
//!
//! Each model mirrors the *shape* of a real protocol — the serve job
//! queue, the serve regime gate, telemetry sequencing — using the
//! checker's shim primitives, and asserts the property the real code
//! promises. Three further models pin the historical near-misses fixed
//! in PRs 6–8 by reintroducing each bug in the model and asserting the
//! checker catches it.

use pardp_core::check::{self, sync::Condvar, sync::Mutex, sync::RwLock, unpoison, Checker};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Print nothing for panics on unnamed (model) threads — expected in
/// the failure-detection regressions — while keeping libtest-thread
/// panics loud.
fn quiet_model_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name().is_some() {
                default(info);
            }
        }));
    });
}

/// The serve job queue, modelled after `serve::Shared`: a bounded
/// `Mutex<VecDeque>` + `Condvar not_empty` + a shutdown flag (kept
/// inside the mutex here; the real `AtomicBool` is always re-checked
/// under the queue lock in the wait loop, so the protocol is the same).
struct QueueModel {
    queue: Mutex<(VecDeque<u64>, bool)>,
    not_empty: Condvar,
    capacity: usize,
}

impl QueueModel {
    fn new(capacity: usize) -> Self {
        QueueModel {
            queue: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// `Shared::submit`: reject when full (overload backpressure) or
    /// shutting down, otherwise enqueue and wake one worker.
    fn submit(&self, job: u64) -> bool {
        let mut q = unpoison(self.queue.lock());
        if q.1 || q.0.len() >= self.capacity {
            return false;
        }
        q.0.push_back(job);
        drop(q);
        self.not_empty.notify_one();
        true
    }

    /// `serve::worker_loop`: pop until shutdown *and* empty — the drain
    /// guarantee is that the flag alone never abandons queued jobs.
    fn worker_pop(&self) -> Option<u64> {
        let mut q = unpoison(self.queue.lock());
        loop {
            if let Some(j) = q.0.pop_front() {
                return Some(j);
            }
            if q.1 {
                return None;
            }
            q = unpoison(self.not_empty.wait(q));
        }
    }

    /// `Shared::begin_shutdown`: set the flag, then wake *every*
    /// blocked worker so the drain can finish.
    fn begin_shutdown(&self, kick: bool) {
        unpoison(self.queue.lock()).1 = true;
        if kick {
            self.not_empty.notify_all();
        }
    }
}

/// Tentpole model 1 — the serve job queue: overload backpressure plus
/// the shutdown-drain guarantee ("no accepted job left unanswered").
#[test]
fn serve_queue_drains_every_accepted_job() {
    let report = Checker::new().seed(0x5e21).run(|| {
        let q = Arc::new(QueueModel::new(2));
        let answered = Arc::new(Mutex::new(Vec::new()));
        let accepted = Arc::new(Mutex::new(Vec::new()));

        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let q = q.clone();
                let accepted = accepted.clone();
                check::thread::spawn(move || {
                    for i in 0..3u64 {
                        let job = p * 10 + i;
                        if q.submit(job) {
                            unpoison(accepted.lock()).push(job);
                        }
                    }
                })
            })
            .collect();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                let answered = answered.clone();
                check::thread::spawn(move || {
                    while let Some(j) = q.worker_pop() {
                        unpoison(answered.lock()).push(j);
                    }
                })
            })
            .collect();

        for p in producers {
            p.join().unwrap();
        }
        q.begin_shutdown(true);
        for w in workers {
            w.join().unwrap();
        }

        let mut answered = unpoison(answered.lock()).clone();
        let mut accepted = unpoison(accepted.lock()).clone();
        answered.sort_unstable();
        accepted.sort_unstable();
        assert_eq!(
            answered, accepted,
            "drain must answer every accepted job exactly once"
        );
    });
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(
        report.distinct >= 1000,
        "expected >= 1000 distinct schedules, got {}",
        report.distinct
    );
}

/// Tentpole model 2 — the regime gate (`serve::Shared::regime`): small
/// jobs share the read side, large jobs take the write side; a large
/// job must never overlap a small one, and a panicking job must release
/// the gate on unwind (the RAII guard inside `catch_unwind`).
#[test]
fn regime_gate_never_overlaps_and_releases_on_unwind() {
    quiet_model_panics();
    let report = Checker::new().seed(0x6a7e).run(|| {
        let gate = Arc::new(RwLock::new(()));
        let small_active = Arc::new(AtomicUsize::new(0));

        let smalls: Vec<_> = (0..2)
            .map(|_| {
                let gate = gate.clone();
                let small_active = small_active.clone();
                check::thread::spawn(move || {
                    let _g = unpoison(gate.read());
                    small_active.fetch_add(1, Ordering::SeqCst);
                    check::yield_now();
                    small_active.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        let large = {
            let gate = gate.clone();
            let small_active = small_active.clone();
            check::thread::spawn(move || {
                // Mirrors `run_job`: the gate guard lives inside the
                // catch_unwind closure, so the unwind releases it.
                let _ = check::catch_unwind(|| {
                    let _g = unpoison(gate.write());
                    assert_eq!(
                        small_active.load(Ordering::SeqCst),
                        0,
                        "large job overlapped a small job"
                    );
                    check::yield_now();
                    assert_eq!(small_active.load(Ordering::SeqCst), 0);
                    panic!("large job panics while holding the gate");
                });
            })
        };

        for s in smalls {
            s.join().unwrap();
        }
        large.join().unwrap();
        // The unwind must have released (and poisoned) the write gate;
        // the next job recovers it with unpoison, like the real serve.
        let _g = unpoison(gate.write());
    });
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(
        report.distinct >= 1000,
        "expected >= 1000 distinct schedules, got {}",
        report.distinct
    );
}

/// Tentpole model 3 — telemetry sequencing: `Telemetry::emit` assigns
/// `seq` and delivers under one lock, so the stream is gap-free and
/// in-order even with concurrent emitters.
#[test]
fn telemetry_sequence_is_gap_free_under_concurrent_emitters() {
    let report = Checker::new().seed(0x7e1e).run(|| {
        let stream = Arc::new(Mutex::new((0u64, Vec::new())));
        let emitters: Vec<_> = (0..3)
            .map(|_| {
                let stream = stream.clone();
                check::thread::spawn(move || {
                    for _ in 0..4 {
                        // seq assignment + delivery under one lock —
                        // the invariant the real emit() maintains.
                        let mut s = unpoison(stream.lock());
                        let seq = s.0;
                        s.0 += 1;
                        s.1.push(seq);
                    }
                })
            })
            .collect();
        for e in emitters {
            e.join().unwrap();
        }
        let s = unpoison(stream.lock());
        let expect: Vec<u64> = (0..12).collect();
        assert_eq!(
            s.1, expect,
            "delivered stream must be gap-free and in order"
        );
    });
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(
        report.distinct >= 1000,
        "expected >= 1000 distinct schedules, got {}",
        report.distinct
    );
}

/// Regression pin (PR 6 near-miss, accept-loop FIN reaping): shutdown
/// must kick blocked readers/workers loose (`begin_shutdown` does
/// `notify_all` after setting the flag). Setting the flag without the
/// kick deadlocks any schedule where a worker parked first — the
/// checker must find such a schedule.
#[test]
fn regression_shutdown_without_kick_deadlocks() {
    quiet_model_panics();
    let report = Checker::new().seed(0xf19).schedules(256).run(|| {
        let q = Arc::new(QueueModel::new(2));
        let worker = {
            let q = q.clone();
            check::thread::spawn(move || while q.worker_pop().is_some() {})
        };
        q.begin_shutdown(false); // the bug: no notify_all
        let _ = worker.join();
    });
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.messages.iter().any(|m| m.contains("deadlock"))),
        "flag-without-kick must deadlock in some schedule: {report:?}"
    );
}

/// Regression pin (PR 8 near-miss, regime-gate unwind release): holding
/// the gate through a manual flag instead of an RAII guard leaks the
/// gate when the job panics, and every later large job deadlocks.
#[test]
fn regression_gate_leaked_across_unwind_deadlocks() {
    quiet_model_panics();
    let report = Checker::new().seed(0x6a7f).schedules(64).run(|| {
        let gate = Arc::new(Mutex::new(false)); // manual flag, no RAII
        let panicking_job = {
            let gate = gate.clone();
            check::thread::spawn(move || {
                let _ = check::catch_unwind(|| {
                    *unpoison(gate.lock()) = true; // acquire
                    panic!("job panics; the manual flag is never cleared");
                    // the bug: release (`*gate = false`) is unreachable
                });
            })
        };
        panicking_job.join().unwrap();
        // The next large job spins on the leaked flag forever.
        loop {
            if !*unpoison(gate.lock()) {
                break;
            }
            check::yield_now();
        }
    });
    assert!(
        !report.failures.is_empty(),
        "leaked gate must be caught (step budget / livelock): {report:?}"
    );
}

/// Regression pin (PR 8 near-miss, poisoned-lock recovery): after a
/// caught panic poisons a shared lock, recovery must go through
/// `unpoison`; a raw `.lock().unwrap()` panics under the model exactly
/// like the real lint forbids.
#[test]
fn regression_poisoned_lock_without_unpoison_fails() {
    quiet_model_panics();
    let poison_then_lock = |use_unpoison: bool| {
        move || {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = m.clone();
            let h = check::thread::spawn(move || {
                let _ = check::catch_unwind(|| {
                    let _g = unpoison(m2.lock());
                    panic!("panic while holding the shared lock");
                });
            });
            h.join().unwrap();
            if use_unpoison {
                *unpoison(m.lock()) += 1; // the sanctioned recovery
            } else {
                *m.lock().unwrap() += 1; // the bug the lint forbids
            }
        }
    };
    let fixed = Checker::new()
        .seed(0xdead)
        .schedules(64)
        .run(poison_then_lock(true));
    assert!(fixed.failures.is_empty(), "{:?}", fixed.failures);
    let buggy = Checker::new()
        .seed(0xdead)
        .schedules(64)
        .run(poison_then_lock(false));
    // Every schedule poisons the lock, so every raw unwrap fails (the
    // report caps recorded failures at 16).
    assert_eq!(buggy.failures.len(), 16, "{buggy:?}");
    assert!(
        buggy
            .failures
            .iter()
            .all(|f| f.messages.iter().any(|m| m.contains("Poisoned"))),
        "failures must be the poisoned-lock unwrap: {buggy:?}"
    );
}

/// Seed determinism on a real model (the acceptance criterion: same
/// seed ⇒ same schedules), plus replayability of individual schedules.
#[test]
fn checker_is_seed_deterministic_on_the_queue_model() {
    let model = || {
        let q = Arc::new(QueueModel::new(1));
        let w = {
            let q = q.clone();
            check::thread::spawn(move || while q.worker_pop().is_some() {})
        };
        q.submit(1);
        q.submit(2);
        q.begin_shutdown(true);
        w.join().unwrap();
    };
    let a = Checker::new().seed(99).schedules(128).run(model);
    let b = Checker::new().seed(99).schedules(128).run(model);
    assert_eq!(
        a.digest, b.digest,
        "same seed must reproduce the same schedules"
    );
    assert!(a.failures.is_empty(), "{:?}", a.failures);
}
