//! Property tests of `pardp_core::store`: cache round-trips are
//! bit-identical to cold solves for every algorithm × backend, LRU
//! eviction never corrupts what stays cached, the persistent store
//! survives reopening bit-for-bit, a torn final record is detected and
//! skipped, warm starts are exact for every prefix-able family, and
//! batch dedup reuses nothing that a cold loop would not have produced.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use pardp_core::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const BACKENDS: [ExecBackend; 3] = [
    ExecBackend::Sequential,
    ExecBackend::Parallel,
    ExecBackend::Threads(3),
];

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique temp directory per call (proptest reruns cases, so a name
/// per test is not enough).
fn temp_store(tag: &str) -> PathBuf {
    let id = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "pardp-proptest-store-{tag}-{}-{id}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> SolveOptions {
    SolveOptions::default()
        .exec(ExecBackend::Sequential)
        .termination(Termination::Fixpoint)
}

/// Full bit-identity: value, table, trace (as canonical JSON), stats.
fn assert_identical(got: &Solution<u64>, want: &Solution<u64>) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.algorithm, want.algorithm);
    prop_assert_eq!(got.value(), want.value());
    prop_assert!(got.w.table_eq(&want.w), "tables differ");
    prop_assert_eq!(
        serde_json::to_string(&got.trace).unwrap(),
        serde_json::to_string(&want.trace).unwrap()
    );
    prop_assert_eq!(got.stats, want.stats);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // A cache populated under one backend serves every backend
    // bit-identically (the key deliberately ignores exec), through both
    // the in-memory LRU and the persistent file store. Knuth bypasses
    // the solve-path cache, so its record round-trips directly.
    #[test]
    fn cache_hits_are_bit_identical_for_every_algorithm_and_backend(
        dims in proptest::collection::vec(1u64..50, 3..10)
    ) {
        let spec = ProblemSpec::chain(dims).unwrap();
        let dir = temp_store("roundtrip");
        let file = FileStore::open(&dir).unwrap();
        let mem = MemoryCache::new(16);
        let caches: [&dyn SolutionCache; 2] = [&mem, &file];

        for algo in Algorithm::ALL {
            let cold = Solver::new(algo).options(opts()).solve(&spec.build());
            for (c, cache) in caches.iter().enumerate() {
                if algo == Algorithm::Knuth {
                    // Bypassed on the solve path; the record layer must
                    // still round-trip it exactly.
                    let key = ProblemKey(0xdead_0000 + c as u64);
                    let rec = CachedSolution::of_solution(spec.family(), &cold);
                    cache.put(key, rec.clone());
                    prop_assert_eq!(cache.get(key).unwrap(), rec);
                    let (sol, outcome) = cached_solve(*cache, &spec, algo, &opts());
                    prop_assert_eq!(outcome, CacheOutcome::Bypass);
                    assert_identical(&sol, &cold)?;
                    continue;
                }
                let (first, o1) = cached_solve(*cache, &spec, algo, &opts());
                prop_assert_eq!(o1, CacheOutcome::Miss, "{}", algo);
                assert_identical(&first, &cold)?;
                for exec in BACKENDS {
                    let exec_opts = opts().exec(exec);
                    let cold_exec = Solver::new(algo).options(exec_opts).solve(&spec.build());
                    let (hit, o2) = cached_solve(*cache, &spec, algo, &exec_opts);
                    prop_assert_eq!(o2, CacheOutcome::Hit, "{} on {}", algo, exec);
                    assert_identical(&hit, &cold_exec)?;
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // However small the LRU and however the working set cycles through
    // it, every solve — hit or re-miss after eviction — returns exactly
    // the cold solution of its own instance.
    #[test]
    fn lru_eviction_never_corrupts_later_hits(
        base in proptest::collection::vec(1u64..40, 10..16),
        capacity in 1usize..5,
        sweeps in 2usize..5,
    ) {
        let cache = MemoryCache::new(capacity);
        // Same-length, pairwise-distinct instances: no spec is a prefix
        // of another, so every lookup is a clean hit or a clean re-miss
        // (warm starts would otherwise blur the trace comparison).
        let specs: Vec<ProblemSpec> = (0..7u64)
            .map(|i| ProblemSpec::chain(base.iter().map(|v| v + i).collect()).unwrap())
            .collect();
        let cold: Vec<Solution<u64>> = specs
            .iter()
            .map(|s| {
                Solver::new(Algorithm::Sublinear)
                    .options(opts())
                    .solve(&s.build())
            })
            .collect();
        for _ in 0..sweeps {
            for (spec, want) in specs.iter().zip(&cold) {
                let (sol, _) = cached_solve(&cache, spec, Algorithm::Sublinear, &opts());
                assert_identical(&sol, want)?;
            }
        }
        prop_assert!(cache.len() <= capacity);
    }

    // Reopening a persistent store returns every record bit-for-bit.
    #[test]
    fn file_store_reopen_returns_identical_records(
        base in proptest::collection::vec(1u64..40, 6..12)
    ) {
        let dir = temp_store("reopen");
        let specs: Vec<ProblemSpec> = (3..=base.len())
            .map(|l| ProblemSpec::chain(base[..l].to_vec()).unwrap())
            .collect();
        let mut stored: Vec<(ProblemKey, CachedSolution)> = Vec::new();
        {
            let store = FileStore::open(&dir).unwrap();
            for spec in &specs {
                let (_, outcome) = cached_solve(&store, spec, Algorithm::Reduced, &opts());
                // Prefixes of an already-solved chain are distinct
                // instances here, so each one misses or warm-starts.
                prop_assert!(outcome != CacheOutcome::Bypass);
                let key = ProblemKey::derive(spec, Algorithm::Reduced, &opts()).unwrap();
                stored.push((key, store.get(key).unwrap()));
            }
        }
        let reopened = FileStore::open_existing(&dir).unwrap();
        prop_assert_eq!(reopened.skipped_bytes(), 0);
        prop_assert_eq!(reopened.len(), stored.len());
        for (key, rec) in &stored {
            prop_assert_eq!(&reopened.get(*key).unwrap(), rec);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // Truncating the file anywhere inside the final record (a torn
    // append) loses exactly that record: earlier records stay
    // retrievable bit-for-bit and the tail is reported as skipped.
    #[test]
    fn torn_final_record_is_detected_and_skipped(
        dims in proptest::collection::vec(1u64..40, 4..9),
        cut in 1u64..4096,
    ) {
        let dir = temp_store("torn");
        let spec_a = ProblemSpec::chain(dims[..dims.len() - 1].to_vec()).unwrap();
        let spec_b = ProblemSpec::chain(dims).unwrap();
        let key_a = ProblemKey::derive(&spec_a, Algorithm::Sublinear, &opts()).unwrap();
        let key_b = ProblemKey::derive(&spec_b, Algorithm::Sublinear, &opts()).unwrap();
        let data = dir.join("store.dat");
        let (first_end, rec_a) = {
            let store = FileStore::open(&dir).unwrap();
            cached_solve(&store, &spec_a, Algorithm::Sublinear, &opts());
            let first_end = std::fs::metadata(&data).unwrap().len();
            cached_solve(&store, &spec_b, Algorithm::Sublinear, &opts());
            (first_end, store.get(key_a).unwrap())
        };
        // Tear strictly inside the second record's header + payload
        // bytes (reading its length field from the on-disk header) —
        // a cut that only clips the zero padding at the page tail
        // would, correctly, lose nothing.
        let record_len = {
            use std::io::{Read as _, Seek as _, SeekFrom};
            let mut f = std::fs::File::open(&data).unwrap();
            f.seek(SeekFrom::Start(first_end + 16)).unwrap();
            let mut b = [0u8; 8];
            f.read_exact(&mut b).unwrap();
            64 + u64::from_le_bytes(b)
        };
        let torn = first_end + 1 + (cut - 1) % (record_len - 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&data)
            .unwrap()
            .set_len(torn)
            .unwrap();
        let reopened = FileStore::open_existing(&dir).unwrap();
        prop_assert_eq!(reopened.skipped_bytes(), torn - first_end);
        prop_assert_eq!(&reopened.get(key_a).unwrap(), &rec_a);
        prop_assert_eq!(reopened.get(key_b), None);
        // The next insert overwrites the torn tail and round-trips.
        let (sol, outcome) = cached_solve(&reopened, &spec_b, Algorithm::Sublinear, &opts());
        prop_assert!(outcome == CacheOutcome::Miss || matches!(outcome, CacheOutcome::Warm { .. }));
        let (hit, o2) = cached_solve(&reopened, &spec_b, Algorithm::Sublinear, &opts());
        prop_assert_eq!(o2, CacheOutcome::Hit);
        assert_identical(&hit, &sol)?;
        std::fs::remove_dir_all(&dir).ok();
    }

    // Warm starts are exact for every prefix-able family and every
    // warm-capable algorithm: value and table always match the cold
    // solve bit-for-bit; the direct algorithms match on the full trace
    // and stats too (the iterative ones honestly report less work).
    #[test]
    fn warm_starts_are_exact_for_every_family(
        vals in proptest::collection::vec(1u64..40, 6..11)
    ) {
        let n = vals.len() - 1;
        let specs = [
            ProblemSpec::chain(vals.clone()).unwrap(),
            ProblemSpec::obst(vals[..n].to_vec(), vals.clone()).unwrap(),
            ProblemSpec::polygon(vals.clone()).unwrap(),
            ProblemSpec::merge(vals.clone()).unwrap(),
        ];
        let algos = [
            Algorithm::Sequential,
            Algorithm::Wavefront,
            Algorithm::Sublinear,
            Algorithm::Reduced,
        ];
        let cache = MemoryCache::new(64);
        for spec in &specs {
            let m = spec.n() - 2;
            let prefix = spec.prefix(m).unwrap();
            for algo in algos {
                let cold = Solver::new(algo).options(opts()).solve(&spec.build());
                let (_, o1) = cached_solve(&cache, &prefix, algo, &opts());
                prop_assert_eq!(o1, CacheOutcome::Miss, "{} {}", spec.family(), algo);
                let (warm, o2) = cached_solve(&cache, spec, algo, &opts());
                prop_assert_eq!(
                    o2,
                    CacheOutcome::Warm { seed_n: m },
                    "{} {}", spec.family(), algo
                );
                prop_assert_eq!(warm.value(), cold.value(), "{} {}", spec.family(), algo);
                prop_assert!(warm.w.table_eq(&cold.w), "{} {}", spec.family(), algo);
                if !algo.is_iterative() {
                    assert_identical(&warm, &cold)?;
                } else {
                    prop_assert!(warm.stats.candidates <= cold.stats.candidates);
                }
                // The warm result was inserted: the repeat is a full hit,
                // bit-identical to what the warm start produced.
                let (hit, o3) = cached_solve(&cache, spec, algo, &opts());
                prop_assert_eq!(o3, CacheOutcome::Hit);
                assert_identical(&hit, &warm)?;
            }
        }
    }

    // Batch dedup (with or without a cache attached) hands every
    // duplicate the exact solution a cold per-job loop would produce.
    #[test]
    fn batch_dedup_is_bit_identical_to_a_cold_loop(
        dims in proptest::collection::vec(1u64..40, 3..8),
        copies in 2usize..4,
    ) {
        let spec = ProblemSpec::chain(dims).unwrap();
        let mut jobs: Vec<ResolvedJob> = Vec::new();
        for algo in Algorithm::ALL {
            for _ in 0..copies {
                jobs.push(ResolvedJob {
                    problem: spec.clone(),
                    algorithm: algo,
                    options: opts(),
                });
            }
        }
        let solver = BatchSolver::new().exec(ExecBackend::Threads(2));
        for cache in [None, Some(MemoryCache::new(16))] {
            let report = solver.solve_resolved(
                &jobs,
                cache.as_ref().map(|c| c as &dyn SolutionCache),
            );
            prop_assert_eq!(report.results.len(), jobs.len());
            // Knuth (bypass) is never deduped; the other five are.
            prop_assert_eq!(
                report.cache.deduped as usize,
                (Algorithm::ALL.len() - 1) * (copies - 1)
            );
            for r in &report.results {
                let job = &jobs[r.job];
                let cold = Solver::new(job.algorithm)
                    .options(job.options)
                    .solve(&job.problem.build());
                assert_identical(&r.solution, &cold)?;
            }
        }
    }
}
