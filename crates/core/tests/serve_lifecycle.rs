//! Lifecycle guarantees of the `pardp_core::serve` daemon: responses are
//! bit-identical to a sequential façade loop (and to `BatchSolver`),
//! shutdown drains every accepted job, overload rejects instead of
//! hanging, malformed lines never kill a connection, and concurrent TCP
//! clients each get exactly their own answers.

use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::TcpStream;

use pardp_core::prelude::*;
use pardp_core::serve::{serve_pipe, ServeConfig, Server};
use pardp_core::spec::parse_jobs;
use serde::Deserialize as _;

/// A mixed-family, mixed-algorithm job corpus (every line is also valid
/// `pardp batch` input).
const CORPUS: &str = r#"{"family":"chain","values":[30,35,15,5,10,20,25]}
{"family":"obst","values":[15,10,5,10,20],"q":[5,10,5,5,5,10],"algo":"reduced"}
{"family":"merge","values":[10,20,30],"algo":"wavefront"}
{"family":"polygon","values":[1,10,1,10],"algo":"seq"}
{"family":"chain","values":[3,5,7,2,8],"trace":true}
{"family":"chain","values":[2,3,4,5,6,7,8,9],"algo":"rytter"}
"#;

fn serve_lines(input: &str, config: &ServeConfig) -> (Vec<String>, ServeStats) {
    let mut out = Vec::new();
    let stats = serve_pipe(input.as_bytes(), &mut out, config);
    let text = String::from_utf8(out).unwrap();
    (text.lines().map(str::to_string).collect(), stats)
}

/// The expected records for a job corpus: a plain sequential loop of
/// façade solves under the serve/batch defaults.
fn loop_records(input: &str, config: &ServeConfig) -> Vec<JobRecord> {
    parse_jobs(input)
        .unwrap()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let r = spec.resolve(config.default_algo, config.options).unwrap();
            let problem = r.problem.build();
            let solution = Solver::new(r.algorithm).options(r.options).solve(&problem);
            let large = r.problem.cells() > config.large_job_cells;
            JobRecord::of_solution(i, r.problem.family(), &solution, large)
        })
        .collect()
}

fn record(line: &str) -> JobRecord {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("{e:?}: {line}"))
}

#[test]
fn pipe_responses_match_a_sequential_solve_loop_bit_for_bit() {
    let config = ServeConfig::default();
    let (lines, stats) = serve_lines(CORPUS, &config);
    let expected = loop_records(CORPUS, &config);
    assert_eq!(lines.len(), expected.len());
    assert_eq!(stats.completed, expected.len() as u64);
    for (line, expect) in lines.iter().zip(&expected) {
        // Everything but wall time must agree exactly: value, table
        // hash, iteration counts, op statistics, the full trace.
        assert_eq!(record(line).deterministic(), expect.deterministic());
    }
}

#[test]
fn pipe_responses_match_batch_solver_records() {
    let config = ServeConfig::default();
    let (lines, _) = serve_lines(CORPUS, &config);

    let resolved: Vec<_> = parse_jobs(CORPUS)
        .unwrap()
        .iter()
        .map(|s| s.resolve(config.default_algo, config.options).unwrap())
        .collect();
    let problems: Vec<SpecProblem> = resolved.iter().map(|r| r.problem.build()).collect();
    let jobs: Vec<BatchJob<'_, u64>> = problems
        .iter()
        .zip(&resolved)
        .map(|(p, r)| BatchJob::new(p).algorithm(r.algorithm).options(r.options))
        .collect();
    let report = BatchSolver::new().solve_batch(&jobs);

    for (line, r) in lines.iter().zip(&report.results) {
        let expect = JobRecord::new(resolved[r.job].problem.family(), r);
        assert_eq!(record(line).deterministic(), expect.deterministic());
    }
}

#[test]
fn shutdown_drains_every_accepted_job() {
    // One worker, generous queue: five jobs are all queued before the
    // shutdown command arrives, and every one must still be answered.
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        ..ServeConfig::default()
    };
    let mut input = String::new();
    for n in [8usize, 10, 12, 14, 16] {
        let dims: Vec<String> = (0..=n).map(|_| "3".to_string()).collect();
        input.push_str(&format!(
            "{{\"family\":\"chain\",\"values\":[{}]}}\n",
            dims.join(",")
        ));
    }
    input.push_str("{\"cmd\":\"shutdown\"}\n");
    let (lines, stats) = serve_lines(&input, &config);
    assert_eq!(lines.len(), 6, "5 records + shutdown ack: {lines:?}");
    for (i, line) in lines[..5].iter().enumerate() {
        let r = record(line);
        assert_eq!(r.job, i);
        assert!(r.value > 0);
    }
    assert!(lines[5].contains("\"ok\":\"shutdown\""));
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.completed, 5, "shutdown must drain, not drop");
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn overload_rejects_immediately_and_nothing_hangs() {
    // One worker pinned on a big sequential job (n = 400, O(n^3) work),
    // a queue of two: flooding 100 tiny jobs must overflow the queue,
    // and every request still gets a response line.
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let mut input = String::new();
    let dims: Vec<String> = (0..=400).map(|_| "2".to_string()).collect();
    input.push_str(&format!(
        "{{\"family\":\"chain\",\"values\":[{}],\"algo\":\"seq\"}}\n",
        dims.join(",")
    ));
    for _ in 0..100 {
        input.push_str("{\"family\":\"chain\",\"values\":[2,3,4]}\n");
    }
    let (lines, stats) = serve_lines(&input, &config);
    assert_eq!(lines.len(), 101, "every request is answered");
    let overloaded = lines
        .iter()
        .filter(|l| l.contains("\"error\":\"overloaded\""))
        .count() as u64;
    assert_eq!(overloaded, stats.rejected);
    assert!(
        stats.rejected > 0,
        "a 2-slot queue behind a busy worker must overflow: {stats:?}"
    );
    assert_eq!(stats.accepted + stats.rejected, 101);
    assert_eq!(stats.completed, stats.accepted, "accepted jobs all drain");
    assert_eq!(stats.queue_depth, 0);
    // The big job itself was answered with a real record.
    assert!(lines[0].contains("\"n\":400"), "{}", lines[0]);
}

#[test]
fn malformed_lines_get_errors_and_the_connection_survives() {
    let input = "garbage\n\
                 {\"family\":\"chain\",\"values\":[1]}\n\
                 {\"family\":\"chain\",\"values\":[2,3,4],\"algo\":\"blort\"}\n\
                 {\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n";
    let (lines, stats) = serve_lines(input, &ServeConfig::default());
    assert_eq!(lines.len(), 4);
    assert!(lines[0].contains("not a JSON job"), "{}", lines[0]);
    assert!(lines[1].contains("at least two dimensions"), "{}", lines[1]);
    assert!(lines[2].contains("unknown algorithm"), "{}", lines[2]);
    assert!(lines[3].contains("\"value\":15125"), "{}", lines[3]);
    assert_eq!(stats.invalid, 3);
    assert_eq!(stats.completed, 1);
}

#[test]
fn concurrent_tcp_clients_each_get_their_own_exact_answers() {
    let config = ServeConfig::default();
    let server = Server::bind("127.0.0.1:0", &config).unwrap();
    let addr = server.addr();

    // Distinct per-client corpora with known distinct answers.
    let corpora: Vec<String> = (0..3)
        .map(|c| {
            let mut s = String::new();
            for n in 2..10usize {
                let dims: Vec<String> = (0..=n).map(|d| (c + d + 2).to_string()).collect();
                s.push_str(&format!(
                    "{{\"family\":\"chain\",\"values\":[{}]}}\n",
                    dims.join(",")
                ));
            }
            s
        })
        .collect();
    let expected: Vec<Vec<JobRecord>> = corpora.iter().map(|c| loop_records(c, &config)).collect();

    std::thread::scope(|scope| {
        for (corpus, expect) in corpora.iter().zip(&expected) {
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(corpus.as_bytes()).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for want in expect {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    assert_eq!(record(&line).deterministic(), want.deterministic());
                }
                // End this client's session so the reader thread sees EOF.
                stream.shutdown(std::net::Shutdown::Write).ok();
            });
        }
    });

    let stats = server.join();
    let total: usize = expected.iter().map(Vec::len).sum();
    assert_eq!(stats.completed, total as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn finished_tcp_session_gets_eof_without_daemon_shutdown() {
    // A client that half-closes and then reads *to EOF* must see the
    // server close the socket once its responses are flushed — it must
    // not hang until the daemon exits. (The accept loop keeps a kick
    // handle per connection; finished connections have to be reaped.)
    let config = ServeConfig::default();
    let server = Server::bind("127.0.0.1:0", &config).unwrap();

    let corpus = "{\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n\
                  {\"family\":\"merge\",\"values\":[10,20,30]}\n";
    let expected = loop_records(corpus, &config);

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    stream.write_all(corpus.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    // Read the whole session: every response line *and* the EOF.
    let mut all = String::new();
    BufReader::new(&stream).read_to_string(&mut all).unwrap();
    let records: Vec<_> = all.lines().map(|l| record(l).deterministic()).collect();
    let expected: Vec<_> = expected.iter().map(|r| r.deterministic()).collect();
    assert_eq!(records, expected);

    // The daemon is still running — EOF came from connection reaping,
    // not from shutdown.
    assert!(!server.shutdown_requested());
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.completed, 2);
}

#[test]
fn cached_session_hits_on_repeats_and_stays_bit_identical() {
    let config = ServeConfig {
        cache: Some(std::sync::Arc::new(MemoryCache::new(64))),
        ..ServeConfig::default()
    };
    // The corpus twice in one session: the second pass must be served
    // from the cache, with responses bit-identical to the cold pass
    // (which in turn matches the plain cache-less solve loop).
    let doubled = format!("{CORPUS}{CORPUS}");
    let (lines, stats) = serve_lines(&doubled, &config);
    let expected = loop_records(&doubled, &ServeConfig::default());
    assert_eq!(lines.len(), expected.len());
    for (line, expect) in lines.iter().zip(&expected) {
        assert_eq!(record(line).deterministic(), expect.deterministic());
    }
    // Six jobs per pass; the `trace:true` job bypasses the cache, so
    // five are cacheable: five misses cold, five hits on the repeat.
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.cache_misses, 5);
    assert_eq!(stats.cache_hits, 5);
    assert_eq!(stats.warm_starts, 0);
}

#[test]
fn cached_session_warm_starts_a_chain_extension() {
    let config = ServeConfig {
        cache: Some(std::sync::Arc::new(MemoryCache::new(64))),
        ..ServeConfig::default()
    };
    // The second chain extends the first by two matrices: its solve is
    // seeded from the cached prefix table instead of starting cold.
    let input = "{\"family\":\"chain\",\"values\":[30,35,15,5,10]}\n\
                 {\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n";
    let (lines, stats) = serve_lines(input, &config);
    let expected = loop_records(input, &ServeConfig::default());
    assert_eq!(lines.len(), 2);
    for (line, expect) in lines.iter().zip(&expected) {
        // A warm start reports the (smaller) work actually done, so
        // compare the result itself: value and the full-table hash.
        let r = record(line);
        assert_eq!(r.value, expect.value);
        assert_eq!(r.tables_hash, expect.tables_hash);
    }
    assert_eq!(stats.cache_misses, 2, "warm starts count as misses");
    assert_eq!(stats.warm_starts, 1);
    assert_eq!(stats.cache_hits, 0);
}

#[test]
fn stats_command_reports_the_failure_counters() {
    use std::sync::Arc;
    use std::time::Duration;

    // One worker, three faulted jobs — a panic, a forced timeout, and
    // an injected store read error — then a stats query: the counters
    // must be visible through `{"cmd":"stats"}`, not just at drain.
    // (Job 0 panics before reaching the cache, so job 2 is StoreRead
    // occurrence 1: job 1 consumed occurrence 0 before its timeout.)
    let plan = Arc::new(
        FaultPlan::new()
            .fail(FaultSite::WorkerPanic, &[0])
            .fail(FaultSite::JobDelay, &[1])
            .fail(FaultSite::StoreRead, &[1])
            .delay(Duration::from_millis(60)),
    );
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        cache: Some(Arc::new(FaultyCache::new(
            Arc::new(MemoryCache::new(64)),
            Arc::clone(&plan),
        ))),
        job_timeout: Some(Duration::from_millis(10)),
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let input = "{\"family\":\"chain\",\"values\":[2,3,4]}\n\
                 {\"family\":\"chain\",\"values\":[3,4,5]}\n\
                 {\"family\":\"chain\",\"values\":[4,5,6]}\n\
                 {\"cmd\":\"stats\"}\n";
    let (lines, final_stats) = serve_lines(input, &config);
    assert_eq!(lines.len(), 4);
    assert!(lines[0].contains("\"kind\":\"internal\""), "{}", lines[0]);
    assert!(lines[1].contains("\"kind\":\"timeout\""), "{}", lines[1]);
    assert!(
        lines[2].contains("\"value\":120"),
        "degraded to a cold solve"
    );

    let v = serde_json::parse_value(&lines[3]).unwrap();
    let stats = ServeStats::from_value(v.get("stats").unwrap()).unwrap();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.cache_errors, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(final_stats.panics, 1);
    assert_eq!(final_stats.timeouts, 1);
    assert_eq!(final_stats.cache_errors, 1);
}

#[test]
fn tcp_stats_and_shutdown_commands_round_trip() {
    let server = Server::bind("127.0.0.1:0", &ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(
            b"{\"family\":\"merge\",\"values\":[10,20,30]}\n{\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n",
        )
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        lines.push(line);
    }
    assert!(lines[0].contains("\"value\":90"), "{}", lines[0]);
    let v = serde_json::parse_value(&lines[1]).unwrap();
    let stats = ServeStats::from_value(v.get("stats").unwrap()).unwrap();
    assert_eq!(stats.completed, 1);
    // Per-regime drain counts and the live queue depth ride in the same
    // stats record: the merge job is far below the large-job threshold,
    // and it had to finish before the stats command was answered.
    assert_eq!(stats.completed_small, 1);
    assert_eq!(stats.completed_large, 0);
    assert_eq!(stats.queue_depth, 0);
    // No cache configured: the cache counters exist and stay zero.
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0);
    assert_eq!(stats.warm_starts, 0);
    // No faults either: the failure counters ride in the same record
    // and stay zero on a healthy daemon.
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.cache_errors, 0);
    assert!(lines[2].contains("\"ok\":\"shutdown\""), "{}", lines[2]);
    // The client-initiated shutdown stops the whole daemon.
    let final_stats = server.join();
    assert_eq!(final_stats.completed, 1);
}
