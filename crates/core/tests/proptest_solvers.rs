//! Property-based tests of the solvers on arbitrary non-negative cost
//! structures: exactness against the DP-free brute-force oracle,
//! cross-solver agreement, monotone convergence and witness validity.

use pardp_core::ops::{a_activate_dense, a_pebble_dense, a_square_dense};
use pardp_core::prelude::*;
use pardp_core::problem::TabulatedProblem;
use pardp_core::reconstruct::{reconstruct_root, tree_cost};
use pardp_core::seq::brute_force_value;
use pardp_core::tables::{DensePw, PairIndexer, WTable};
use proptest::prelude::*;

/// Strategy: a complete instance (init values + f values) for size n.
fn instance_strategy(n: usize) -> impl Strategy<Value = TabulatedProblem<u64>> {
    let m = n + 1;
    (
        proptest::collection::vec(0u64..100, n),
        proptest::collection::vec(0u64..100, m * m * m),
    )
        .prop_map(move |(init, f)| TabulatedProblem::new(init, |i, k, j| f[(i * m + k) * m + j]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_matches_brute_force(n in 1usize..8, seed in 0u64..u64::MAX) {
        let p = make_instance(n, seed);
        let w = solve_sequential(&p);
        prop_assert_eq!(w.root(), brute_force_value(&p, 0, n));
    }

    #[test]
    fn all_parallel_solvers_match_sequential(p in instance_strategy(9)) {
        let oracle = solve_sequential(&p);
        let cfg = SolverConfig {
            exec: ExecBackend::Sequential,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            ..Default::default()
        };
        prop_assert!(solve_sublinear(&p, &cfg).w.table_eq(&oracle));
        let rcfg = ReducedConfig { exec: ExecBackend::Sequential, ..Default::default() };
        prop_assert!(solve_reduced(&p, &rcfg).w.table_eq(&oracle));
        let ycfg = RytterConfig { exec: ExecBackend::Sequential, ..Default::default() };
        prop_assert!(solve_rytter(&p, &ycfg).w.table_eq(&oracle));
        prop_assert!(solve_wavefront_default(&p).table_eq(&oracle));
    }

    #[test]
    fn w_values_decrease_monotonically_and_stay_sound(p in instance_strategy(8)) {
        // Drive the ops manually: every w'(i,j) is non-increasing over
        // iterations and never dips below the true optimum.
        let n = 8usize;
        let truth = solve_sequential(&p);
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        for _ in 0..2 * pardp_pebble::ceil_sqrt(n as u64) {
            let before = w.clone();
            a_activate_dense(&p, &w, &mut pw, &ExecBackend::Sequential);
            a_square_dense(&pw, &mut pw_next, &ExecBackend::Sequential);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, &ExecBackend::Sequential);
            std::mem::swap(&mut w, &mut w_next);
            for i in 0..n {
                for j in i + 1..=n {
                    prop_assert!(w.get(i, j) <= before.get(i, j), "monotone ({i},{j})");
                    prop_assert!(w.get(i, j) >= truth.get(i, j), "sound ({i},{j})");
                }
            }
        }
        prop_assert!(w.table_eq(&truth));
    }

    #[test]
    fn reconstruction_witnesses_the_optimum(p in instance_strategy(9)) {
        let w = solve_sequential(&p);
        let tree = reconstruct_root(&p, &w).unwrap();
        prop_assert_eq!(tree_cost(&p, &tree), w.root());
        prop_assert_eq!(tree.n_leaves(), 9);
    }

    #[test]
    fn pair_indexer_roundtrip(n in 1usize..200) {
        let idx = PairIndexer::new(n);
        for a in 0..idx.len() {
            let (i, j) = idx.pair(a);
            prop_assert!(i < j && j <= n);
            prop_assert_eq!(idx.index(i, j), a);
        }
    }

    #[test]
    fn knuth_agrees_on_quadrangle_instances(
        weights in proptest::collection::vec(1u64..50, 2..25)
    ) {
        // f(i,k,j) = interval weight sum: satisfies the quadrangle
        // inequality, so Knuth's speedup must be exact.
        let n = weights.len() - 1;
        let mut prefix = vec![0u64];
        for &x in &weights {
            prefix.push(prefix.last().unwrap() + x);
        }
        let p = FnProblem::new(n, |_| 1u64, move |i, _k, j| prefix[j] - prefix[i]);
        let full = solve_sequential(&p);
        let fast = solve_knuth(&p);
        prop_assert!(full.table_eq(&fast));
    }

    #[test]
    fn termination_policies_agree(p in instance_strategy(8)) {
        let fixed = solve_sublinear(&p, &SolverConfig {
            exec: ExecBackend::Sequential,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            ..Default::default()
        });
        for term in [Termination::Fixpoint, Termination::WStableTwice] {
            let sol = solve_sublinear(&p, &SolverConfig {
                exec: ExecBackend::Sequential,
                termination: term,
                record_trace: false,
                ..Default::default()
            });
            prop_assert!(sol.w.table_eq(&fixed.w));
            prop_assert!(sol.trace.iterations <= fixed.trace.iterations);
        }
    }
}

/// Deterministic instance from a seed (cheaper than a full vec strategy
/// for the brute-force comparison, where n varies).
fn make_instance(n: usize, seed: u64) -> TabulatedProblem<u64> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = n + 1;
    let init: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    let f: Vec<u64> = (0..m * m * m).map(|_| rng.gen_range(0..100)).collect();
    TabulatedProblem::new(init, |i, k, j| f[(i * m + k) * m + j])
}
