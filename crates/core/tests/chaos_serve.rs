//! Chaos tests of the failure-hardened serve daemon: a deterministic
//! [`FaultPlan`] schedules worker panics, store IO errors, and forced
//! deadline expiries, and the daemon must answer *every* request, keep
//! the non-faulted responses bit-identical to a fault-free run, tick
//! exactly the scheduled counters, and drain cleanly.
//!
//! With `ExecBackend::Threads(1)` the single worker solves jobs in
//! submission order, so the k-th probe of each [`FaultSite`] belongs to
//! a known job and the whole schedule is replayable by index (see the
//! `fault` module docs). The per-job probe order is: `JobDelay` (after
//! the deadline stamp), `WorkerPanic` (inside the regime gate),
//! `StoreRead` (cache lookup), `StoreWrite` (cache insert — skipped on
//! a lookup error or a timeout).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pardp_core::prelude::*;
use pardp_core::serve::serve_pipe;
use pardp_core::store::DEFAULT_CACHE_FAILURE_BUDGET;
use proptest::prelude::*;

/// A corpus of `count` distinct small chain jobs (n = 2, so the
/// warm-start prefix probe never runs and each cacheable job consumes
/// exactly one `StoreRead` occurrence and at most one `StoreWrite`).
fn corpus(count: usize) -> String {
    (0..count)
        .map(|i| {
            format!(
                "{{\"family\":\"chain\",\"values\":[{},{},{}]}}\n",
                i + 2,
                i + 3,
                i + 4
            )
        })
        .collect()
}

fn serve_lines(input: &str, config: &ServeConfig) -> (Vec<String>, ServeStats) {
    let mut out = Vec::new();
    let stats = serve_pipe(input.as_bytes(), &mut out, config);
    let text = String::from_utf8(out).unwrap();
    (text.lines().map(str::to_string).collect(), stats)
}

/// The fault-free reference responses for `input` under the chaos
/// configuration (single worker, its own untouched cache).
fn baseline(input: &str) -> Vec<JobRecord> {
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        cache: Some(Arc::new(MemoryCache::new(256))),
        ..ServeConfig::default()
    };
    let (lines, stats) = serve_lines(input, &config);
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.cache_errors, 0);
    lines.iter().map(|l| record(l)).collect()
}

fn record(line: &str) -> JobRecord {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("{e:?}: {line}"))
}

#[test]
fn explicit_schedule_answers_every_request_with_exact_counters() {
    // Six jobs, one worker: job 1 panics, job 2's cache lookup fails,
    // job 3 is delayed past its deadline, job 4's cache insert fails.
    // Store occurrences shift under the earlier faults — job 1 never
    // reaches the cache, so job 2 is StoreRead occurrence 1; job 2
    // (lookup error) and job 3 (timeout) never insert, so job 4 is
    // StoreWrite occurrence 1.
    let plan = Arc::new(
        FaultPlan::new()
            .fail(FaultSite::WorkerPanic, &[1])
            .fail(FaultSite::StoreRead, &[1])
            .fail(FaultSite::JobDelay, &[3])
            .fail(FaultSite::StoreWrite, &[1])
            .delay(Duration::from_millis(60)),
    );
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        cache: Some(Arc::new(FaultyCache::new(
            Arc::new(MemoryCache::new(256)),
            Arc::clone(&plan),
        ))),
        job_timeout: Some(Duration::from_millis(10)),
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let input = corpus(6);
    let (lines, stats) = serve_lines(&input, &config);
    let expected = baseline(&input);

    assert_eq!(lines.len(), 6, "every request is answered: {lines:?}");
    assert!(lines[1].contains("\"job\":1"), "{}", lines[1]);
    assert!(lines[1].contains("\"kind\":\"internal\""), "{}", lines[1]);
    assert!(lines[3].contains("\"job\":3"), "{}", lines[3]);
    assert!(lines[3].contains("\"kind\":\"timeout\""), "{}", lines[3]);
    for i in [0usize, 2, 4, 5] {
        // Non-faulted jobs are bit-identical to the fault-free run —
        // including job 2 (lookup error → cold solve) and job 4 (insert
        // error after a correct solve).
        assert_eq!(
            record(&lines[i]).deterministic(),
            expected[i].deterministic(),
            "job {i} must not be disturbed by its neighbours' faults"
        );
    }

    // The counters match the schedule exactly.
    assert_eq!(stats.accepted, 6);
    assert_eq!(stats.completed, 6, "panics and timeouts still complete");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.invalid, 0);
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.cache_errors, 2, "one lookup + one insert failure");
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 2, "jobs 0 and 5 miss and insert");
    assert_eq!(stats.warm_starts, 0);

    // The plan's own ledger agrees: every site probed the expected
    // number of times and injected exactly once.
    assert_eq!(plan.occurrences(FaultSite::JobDelay), 6);
    assert_eq!(plan.occurrences(FaultSite::WorkerPanic), 6);
    assert_eq!(plan.occurrences(FaultSite::StoreRead), 5);
    assert_eq!(plan.occurrences(FaultSite::StoreWrite), 3);
    for site in [
        FaultSite::JobDelay,
        FaultSite::WorkerPanic,
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
    ] {
        assert_eq!(plan.injected(site), 1, "{}", site.name());
    }
}

#[test]
fn timed_out_large_job_releases_the_regime_gate() {
    // Every job is "large" (threshold 0), so each takes the regime
    // write lock. Job 0 is delayed past its deadline; job 1 must still
    // acquire the gate and solve — promptly, not after some unrelated
    // timeout elapses.
    let plan = Arc::new(
        FaultPlan::new()
            .fail(FaultSite::JobDelay, &[0])
            .delay(Duration::from_millis(60)),
    );
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        large_job_cells: 0,
        job_timeout: Some(Duration::from_millis(10)),
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let t0 = Instant::now();
    let (lines, stats) = serve_lines(&corpus(2), &config);
    let elapsed = t0.elapsed();

    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"kind\":\"timeout\""), "{}", lines[0]);
    assert_eq!(record(&lines[1]).value, 60, "3*4*5 chain product");
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.completed_large, 2);
    assert!(
        elapsed < Duration::from_secs(10),
        "the gate must be released at the deadline, not held: {elapsed:?}"
    );
}

#[test]
fn panicking_large_job_poisons_and_releases_the_regime_gate() {
    // Job 0 panics while holding the regime *write* lock, poisoning it.
    // Jobs 1 and 2 (also large, also needing the write lock) must still
    // be answered: every later lock site recovers with `unpoison`.
    let plan = Arc::new(FaultPlan::new().fail(FaultSite::WorkerPanic, &[0]));
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        large_job_cells: 0,
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let (lines, stats) = serve_lines(&corpus(3), &config);
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"kind\":\"internal\""), "{}", lines[0]);
    assert_eq!(record(&lines[1]).value, 60);
    assert_eq!(record(&lines[2]).value, 120);
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.queue_depth, 0);

    // And a panic under the *read* lock (small regime) likewise.
    let plan = Arc::new(FaultPlan::new().fail(FaultSite::WorkerPanic, &[0]));
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let (lines, stats) = serve_lines(&corpus(2), &config);
    assert!(lines[0].contains("\"kind\":\"internal\""), "{}", lines[0]);
    assert_eq!(record(&lines[1]).value, 60);
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.completed, 2);
}

/// What a seeded schedule should do to `jobs` single-worker jobs —
/// replayed from a second identical plan, mirroring the daemon's probe
/// order and the [`ResilientCache`] budget rules.
struct Expected {
    panicked: Vec<bool>,
    timed_out: Vec<bool>,
    cache_errors: u64,
}

fn simulate(oracle: &FaultPlan, jobs: usize) -> Expected {
    let budget = DEFAULT_CACHE_FAILURE_BUDGET;
    let mut errors = 0u64;
    let mut disabled = false;
    let mut panicked = vec![false; jobs];
    let mut timed_out = vec![false; jobs];
    for k in 0..jobs {
        let delayed = oracle.should(FaultSite::JobDelay);
        if oracle.should(FaultSite::WorkerPanic) {
            panicked[k] = true;
            continue; // never reaches the cache or the solve
        }
        // Cache lookup: a disabled backend short-circuits without
        // probing the inner (faulty) cache and without counting.
        let lookup_failed = if disabled {
            true
        } else {
            let e = oracle.should(FaultSite::StoreRead);
            if e {
                errors += 1;
                disabled = errors >= budget;
            }
            e
        };
        if delayed {
            timed_out[k] = true;
            continue; // a timed-out job never inserts
        }
        if lookup_failed {
            continue; // bypass: cold solve, no insert
        }
        // Distinct jobs never hit, so every surviving job inserts.
        if oracle.should(FaultSite::StoreWrite) {
            errors += 1;
            disabled = errors >= budget;
        }
    }
    Expected {
        panicked,
        timed_out,
        cache_errors: errors,
    }
}

#[test]
fn seeded_schedule_replays_exactly_from_the_seed() {
    const JOBS: usize = 12;
    let input = corpus(JOBS);
    let expected_records = baseline(&input);

    let plan = Arc::new(FaultPlan::seeded(0xC0FFEE, 3).delay(Duration::from_millis(60)));
    let oracle = FaultPlan::seeded(0xC0FFEE, 3);
    let expect = simulate(&oracle, JOBS);
    let faults = expect.panicked.iter().filter(|&&p| p).count()
        + expect.timed_out.iter().filter(|&&t| t).count()
        + expect.cache_errors as usize;
    assert!(faults > 0, "a one-in-3 seeded plan over 12 jobs must fault");

    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        cache: Some(Arc::new(FaultyCache::new(
            Arc::new(MemoryCache::new(256)),
            Arc::clone(&plan),
        ))),
        job_timeout: Some(Duration::from_millis(10)),
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let (lines, stats) = serve_lines(&input, &config);

    assert_eq!(lines.len(), JOBS, "every request is answered");
    for k in 0..JOBS {
        if expect.panicked[k] {
            assert!(lines[k].contains("\"kind\":\"internal\""), "{}", lines[k]);
        } else if expect.timed_out[k] {
            assert!(lines[k].contains("\"kind\":\"timeout\""), "{}", lines[k]);
        } else {
            assert_eq!(
                record(&lines[k]).deterministic(),
                expected_records[k].deterministic(),
                "job {k} survived the chaos and must match the fault-free run"
            );
        }
    }
    let panics = expect.panicked.iter().filter(|&&p| p).count() as u64;
    let timeouts = expect.timed_out.iter().filter(|&&t| t).count() as u64;
    assert_eq!(stats.panics, panics);
    assert_eq!(stats.timeouts, timeouts);
    assert_eq!(stats.cache_errors, expect.cache_errors);
    assert_eq!(stats.accepted, JOBS as u64);
    assert_eq!(stats.completed, JOBS as u64, "graceful drain");
    assert_eq!(stats.queue_depth, 0);

    // Replayability: the live plan and the oracle walked identical
    // per-site schedules.
    for site in FaultSite::ALL {
        assert_eq!(
            plan.occurrences(site),
            oracle.occurrences(site),
            "{}",
            site.name()
        );
        assert_eq!(
            plan.injected(site),
            oracle.injected(site),
            "{}",
            site.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Arbitrary explicit panic/delay masks over a 6-job corpus: the
    // daemon answers everything, non-faulted responses stay
    // bit-identical, the counters equal the mask weights, and the
    // queue drains.
    #[test]
    fn chaos_masks_never_lose_a_response(
        panic_bits in proptest::collection::vec(0u8..2, 6),
        delay_bits in proptest::collection::vec(0u8..2, 6),
    ) {
        let panic_mask: Vec<bool> = panic_bits.iter().map(|&b| b == 1).collect();
        let delay_mask: Vec<bool> = delay_bits.iter().map(|&b| b == 1).collect();
        let jobs = panic_mask.len();
        let input = corpus(jobs);
        let expected = baseline(&input);

        let panic_at: Vec<u64> = (0..jobs as u64).filter(|&k| panic_mask[k as usize]).collect();
        let delay_at: Vec<u64> = (0..jobs as u64).filter(|&k| delay_mask[k as usize]).collect();
        let plan = Arc::new(
            FaultPlan::new()
                .fail(FaultSite::WorkerPanic, &panic_at)
                .fail(FaultSite::JobDelay, &delay_at)
                .delay(Duration::from_millis(60)),
        );
        let config = ServeConfig {
            exec: ExecBackend::Threads(1),
            job_timeout: Some(Duration::from_millis(10)),
            fault: Some(Arc::clone(&plan)),
            ..ServeConfig::default()
        };
        let (lines, stats) = serve_lines(&input, &config);

        prop_assert_eq!(lines.len(), jobs, "every request answered");
        let mut panics = 0u64;
        let mut timeouts = 0u64;
        for k in 0..jobs {
            // A panic wins over a delay: the injected panic fires before
            // the solve ever checks its deadline.
            if panic_mask[k] {
                panics += 1;
                prop_assert!(lines[k].contains("\"kind\":\"internal\""), "{}", &lines[k]);
            } else if delay_mask[k] {
                timeouts += 1;
                prop_assert!(lines[k].contains("\"kind\":\"timeout\""), "{}", &lines[k]);
            } else {
                prop_assert_eq!(
                    record(&lines[k]).deterministic(),
                    expected[k].deterministic(),
                    "job {} must be untouched", k
                );
            }
        }
        prop_assert_eq!(stats.panics, panics);
        prop_assert_eq!(stats.timeouts, timeouts);
        prop_assert_eq!(stats.accepted, jobs as u64);
        prop_assert_eq!(stats.completed, jobs as u64, "graceful drain");
        prop_assert_eq!(stats.queue_depth, 0);
    }
}
