//! `BatchSolver` is a *pure re-scheduling* of [`Solver::solve`]: for
//! every backend, regime threshold, and per-job algorithm mix, the batch
//! results must be bit-identical — values, tables, traces, statistics —
//! to a sequential loop of façade solves over the same jobs. The only
//! thing batching may change is wall time.

use pardp_core::prelude::*;
use proptest::prelude::*;

fn chain(dims: &[u64]) -> impl DpProblem<u64> {
    let dims = dims.to_vec();
    let n = dims.len() - 1;
    FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
}

/// Trace equality via the serde tree — `SolveTrace` has no `PartialEq`,
/// and the JSON rendering covers every field including the
/// per-iteration records.
fn trace_json(t: &pardp_core::trace::SolveTrace) -> String {
    serde_json::to_string(t).expect("serialize trace")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Mixed job sizes (n from 1 to 14), all six algorithms assigned
    // round-robin, three backends, and both an all-small and a
    // mixed-regime threshold: batch output == sequential-loop output.
    #[test]
    fn batch_is_bit_identical_to_a_sequential_solve_loop(
        seed_dims in proptest::collection::vec(
            proptest::collection::vec(1u64..60, 2..16),
            1..7,
        )
    ) {
        let problems: Vec<_> = seed_dims.iter().map(|d| chain(d)).collect();
        let jobs: Vec<BatchJob<'_, u64>> = problems
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Every algorithm appears; Knuth's restricted-search
                // table may be invalid on a non-QI chain but must still
                // be reproduced bit-for-bit.
                let algo = Algorithm::ALL[i % Algorithm::ALL.len()];
                BatchJob::new(p)
                    .algorithm(algo)
                    .options(SolveOptions::default().record_trace(true))
            })
            .collect();

        let loop_solutions: Vec<Solution<u64>> = jobs
            .iter()
            .map(|j| Solver::new(j.algorithm).options(j.options).solve(j.problem))
            .collect();

        for exec in [
            ExecBackend::Parallel,
            ExecBackend::Threads(3),
            ExecBackend::Sequential,
        ] {
            // Threshold 40 cells puts n >= 9 jobs on the parallel
            // per-problem path, so mixed batches exercise both regimes.
            for large_cells in [usize::MAX, 40] {
                let report = BatchSolver::new()
                    .exec(exec)
                    .large_job_cells(large_cells)
                    .solve_batch(&jobs);
                prop_assert_eq!(report.results.len(), jobs.len());
                prop_assert_eq!(
                    report.small_jobs + report.large_jobs,
                    jobs.len()
                );
                for (r, expect) in report.results.iter().zip(&loop_solutions) {
                    let tag = format!(
                        "{} job {} on {exec} (large_cells={large_cells})",
                        r.solution.algorithm, r.job
                    );
                    prop_assert_eq!(r.solution.algorithm, expect.algorithm, "{}", tag);
                    prop_assert_eq!(r.solution.value(), expect.value(), "{}", tag);
                    prop_assert!(r.solution.w.table_eq(&expect.w), "{}", tag);
                    prop_assert_eq!(
                        trace_json(&r.solution.trace),
                        trace_json(&expect.trace),
                        "{}", tag
                    );
                    prop_assert_eq!(r.solution.stats, expect.stats, "{}", tag);
                    prop_assert_eq!(
                        r.large,
                        jobs[r.job].cells() > large_cells,
                        "{}", tag
                    );
                }
                let summed = report
                    .results
                    .iter()
                    .fold(OpStats::default(), |acc, r| acc.merge(r.solution.stats));
                prop_assert_eq!(report.stats, summed);
            }
        }
    }
}
