//! Integration tests of the telemetry event stream: every serve job
//! must produce a gap-free, monotonically-sequenced chain of typed
//! events (`admitted → regime → cache → completed`), fault injection
//! must surface as `fault`/`panic`/`timeout` events matching the
//! [`FaultPlan`] schedule exactly, and attaching telemetry must not
//! disturb the protocol output by a single bit.
//!
//! `ExecBackend::Threads(1)` keeps the worker-side events of distinct
//! jobs from interleaving, but `admitted` events race the worker by
//! design (the reader thread emits them); the chain assertions
//! therefore filter the stream per job, which is exactly the contract
//! documented on [`pardp_core::telemetry`].

use std::sync::Arc;
use std::time::Duration;

use pardp_core::prelude::*;
use pardp_core::serve::serve_pipe;

/// A corpus of `count` distinct small chain jobs (same shape as the
/// chaos suite, so fault occurrence indices line up with job indices).
fn corpus(count: usize) -> String {
    (0..count)
        .map(|i| {
            format!(
                "{{\"family\":\"chain\",\"values\":[{},{},{}]}}\n",
                i + 2,
                i + 3,
                i + 4
            )
        })
        .collect()
}

/// Run `serve_pipe` over `input` with a fresh ring-buffered telemetry
/// pipeline at `level`; return the response lines, the drained stats,
/// and the captured event stream.
fn serve_with_events(
    input: &str,
    mut config: ServeConfig,
    level: LogLevel,
) -> (Vec<String>, ServeStats, Vec<Event>) {
    let ring = Arc::new(RingSink::new(4096));
    config.telemetry = Some(Arc::new(Telemetry::with_level(
        Arc::clone(&ring) as Arc<dyn EventSink>,
        level,
    )));
    let mut out = Vec::new();
    let stats = serve_pipe(input.as_bytes(), &mut out, &config);
    let lines = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    (lines, stats, ring.events())
}

fn single_worker() -> ServeConfig {
    ServeConfig {
        exec: ExecBackend::Threads(1),
        ..ServeConfig::default()
    }
}

/// The worker-side events of one job, in stream order.
fn job_chain(events: &[Event], job: u64) -> Vec<&'static str> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Admitted { job: j } if *j == job => Some("admitted"),
            EventKind::Rejected { job: j, .. } if *j == job => Some("rejected"),
            EventKind::Regime { job: j, .. } if *j == job => Some("regime"),
            EventKind::Cache { job: j, .. } if *j == job => Some("cache"),
            EventKind::Fault { job: j, .. } if *j == job => Some("fault"),
            EventKind::Panic { job: j } if *j == job => Some("panic"),
            EventKind::Timeout { job: j } if *j == job => Some("timeout"),
            EventKind::Completed { job: j, .. } if *j == job => Some("completed"),
            _ => None,
        })
        .collect()
}

fn count_kind(events: &[Event], name: &str) -> usize {
    events.iter().filter(|e| e.kind.name() == name).count()
}

#[test]
fn lifecycle_emits_gap_free_per_job_chains() {
    let input = corpus(5);
    let (lines, stats, events) = serve_with_events(&input, single_worker(), LogLevel::Debug);

    assert_eq!(lines.len(), 5);
    assert_eq!(stats.completed, 5);

    // Sequence numbers are gap-free and match delivery order: the
    // filter-before-sequencing rule means even a Debug-level stream
    // never skips a number.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "gap or reorder at {e:?}");
    }

    // Session framing: the pipe opens a connection first, closes it
    // after the drain, and the summary is the final word.
    assert_eq!(events.first().unwrap().kind.name(), "conn_open");
    assert_eq!(events.last().unwrap().kind.name(), "summary");
    assert_eq!(count_kind(&events, "conn_open"), 1);
    assert_eq!(count_kind(&events, "conn_close"), 1);

    // Every job tells the same four-step story, in order.
    for job in 0..5u64 {
        assert_eq!(
            job_chain(&events, job),
            ["admitted", "regime", "cache", "completed"],
            "job {job} chain"
        );
    }

    // The summary event mirrors the drained counters.
    match events.last().unwrap().kind {
        EventKind::Summary {
            accepted,
            completed,
            panics,
            timeouts,
            ..
        } => {
            assert_eq!(accepted, stats.accepted);
            assert_eq!(completed, stats.completed);
            assert_eq!(panics, 0);
            assert_eq!(timeouts, 0);
        }
        ref k => panic!("expected summary, got {k:?}"),
    }
}

#[test]
fn completed_events_carry_the_protocol_values() {
    let input = corpus(3);
    let (lines, _, events) = serve_with_events(&input, single_worker(), LogLevel::Info);
    for line in &lines {
        let record: JobRecord = serde_json::from_str(line).unwrap();
        let completed = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Completed { job, value, .. } if job == record.job as u64 => Some(value),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no completed event for job {}", record.job));
        assert_eq!(completed, record.value, "event value is the answer");
    }
}

#[test]
fn info_level_drops_connection_events_without_seq_gaps() {
    let (_, _, events) = serve_with_events(&corpus(2), single_worker(), LogLevel::Info);
    assert_eq!(count_kind(&events, "conn_open"), 0);
    assert_eq!(count_kind(&events, "conn_close"), 0);
    assert!(count_kind(&events, "completed") == 2);
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }

    // At the error level a healthy session is completely silent, and a
    // malformed line is the only thing that speaks.
    let (_, _, errors_only) = serve_with_events(&corpus(2), single_worker(), LogLevel::Error);
    assert!(errors_only.is_empty(), "{errors_only:?}");
    let (_, _, rejected_only) = serve_with_events("not json\n", single_worker(), LogLevel::Error);
    assert_eq!(rejected_only.len(), 1);
    assert_eq!(rejected_only[0].kind.name(), "rejected");
    assert_eq!(rejected_only[0].seq, 0);
}

#[test]
fn telemetry_never_disturbs_protocol_output() {
    let input = corpus(6);
    let silent = ServeConfig {
        exec: ExecBackend::Threads(1),
        ..ServeConfig::default()
    };
    let mut out = Vec::new();
    let silent_stats = serve_pipe(input.as_bytes(), &mut out, &silent);
    let silent_lines: Vec<String> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();

    let (logged_lines, logged_stats, events) =
        serve_with_events(&input, single_worker(), LogLevel::Debug);

    assert!(!events.is_empty());
    let deterministic = |lines: &[String]| -> Vec<_> {
        lines
            .iter()
            .map(|l| {
                serde_json::from_str::<JobRecord>(l)
                    .unwrap()
                    .deterministic()
            })
            .collect()
    };
    assert_eq!(
        deterministic(&logged_lines),
        deterministic(&silent_lines),
        "telemetry must be invisible on the wire"
    );
    assert_eq!(logged_stats.completed, silent_stats.completed);
    assert_eq!(logged_stats.accepted, silent_stats.accepted);
}

#[test]
fn invalid_lines_emit_rejected_events() {
    let input = "this is not json\n{\"family\":\"chain\",\"values\":[3,5,7]}\n";
    let (lines, stats, events) = serve_with_events(input, single_worker(), LogLevel::Info);
    assert_eq!(lines.len(), 2);
    assert_eq!(stats.invalid, 1);
    assert_eq!(stats.errors_invalid, 1);
    assert_eq!(stats.errors_internal, 0);
    let rejected: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Rejected { job, kind } => Some((*job, *kind)),
            _ => None,
        })
        .collect();
    assert_eq!(rejected, [(0, "invalid")]);
    // The malformed line consumed job index 0; the real job is 1 and
    // still tells its full story.
    assert_eq!(
        job_chain(&events, 1),
        ["admitted", "regime", "cache", "completed"]
    );
}

#[test]
fn chaos_fault_events_match_the_schedule() {
    // Same explicit schedule as the chaos suite: job 1 panics, job 3 is
    // delayed past its 10ms deadline. One worker keeps the occurrence
    // indices aligned with job indices.
    let plan = Arc::new(
        FaultPlan::new()
            .fail(FaultSite::WorkerPanic, &[1])
            .fail(FaultSite::JobDelay, &[3])
            .delay(Duration::from_millis(60)),
    );
    let config = ServeConfig {
        exec: ExecBackend::Threads(1),
        job_timeout: Some(Duration::from_millis(10)),
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let input = corpus(6);
    let (lines, stats, events) = serve_with_events(&input, config, LogLevel::Info);

    assert_eq!(lines.len(), 6, "every request answered: {lines:?}");
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.errors_internal, 1);
    assert_eq!(stats.errors_timeout, 1);

    // Each injected fault announces itself at its site, and the event
    // counts equal the plan's own injection counters.
    let fault_sites: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Fault { job, site } => Some((*job, *site)),
            _ => None,
        })
        .collect();
    assert_eq!(fault_sites, [(1, "worker-panic"), (3, "job-delay")]);
    assert_eq!(
        count_kind(&events, "fault") as u64,
        plan.injected(FaultSite::WorkerPanic) + plan.injected(FaultSite::JobDelay),
    );
    assert_eq!(count_kind(&events, "panic") as u64, stats.panics);
    assert_eq!(count_kind(&events, "timeout") as u64, stats.timeouts);

    // The failed jobs' chains end in their failure mode (no cache or
    // completed step), the healthy jobs' chains are untouched.
    assert_eq!(
        job_chain(&events, 1),
        ["admitted", "regime", "fault", "panic"]
    );
    assert_eq!(
        job_chain(&events, 3),
        ["admitted", "regime", "fault", "timeout"]
    );
    for job in [0u64, 2, 4, 5] {
        assert_eq!(
            job_chain(&events, job),
            ["admitted", "regime", "cache", "completed"],
            "job {job}"
        );
    }
}

#[test]
fn stats_report_watermark_percentiles_and_work() {
    // A single worker and a fat queue force a high watermark above 1:
    // the reader admits faster than the worker drains.
    let (_, stats, _) = serve_with_events(&corpus(8), single_worker(), LogLevel::Info);
    assert!(stats.queue_high_watermark >= 1);
    assert!(stats.queue_high_watermark <= 8);
    assert!(stats.latency_p50_us <= stats.latency_p90_us);
    assert!(stats.latency_p90_us <= stats.latency_p99_us);
    assert!(stats.latency_p99_us > 0, "8 completed jobs were timed");
    assert!(stats.work > 0, "candidate work accumulates");
    assert!(stats.span > 0, "span estimates accumulate");
    assert!(stats.span <= stats.work, "span never exceeds work");
}

#[test]
fn batch_jobs_emit_consecutive_chains_in_submission_order() {
    let ring = Arc::new(RingSink::new(4096));
    let telemetry = Arc::new(Telemetry::new(Arc::clone(&ring) as Arc<dyn EventSink>));
    // Events ride the resolved (cache-aware) path — the same one the
    // CLI `batch` command and the serve daemon use.
    let specs = parse_jobs(&corpus(3)).unwrap();
    let base = SolveOptions::default().termination(Termination::Fixpoint);
    let resolved: Vec<ResolvedJob> = specs
        .iter()
        .map(|s| s.resolve(Algorithm::Sublinear, base).unwrap())
        .collect();
    let report = BatchSolver::new()
        .telemetry(Some(Arc::clone(&telemetry)))
        .solve_resolved(&resolved, None);
    assert_eq!(report.results.len(), 3);

    let events = ring.events();
    // Batch emission happens at assembly time, so each job's chain is
    // consecutive: four events per job, in submission order.
    assert_eq!(events.len(), 12);
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
    for job in 0..3u64 {
        let chunk = &events[(job as usize) * 4..(job as usize) * 4 + 4];
        assert_eq!(
            chunk.iter().map(|e| e.kind.name()).collect::<Vec<_>>(),
            ["admitted", "regime", "cache", "completed"],
            "job {job}"
        );
        for e in chunk {
            let j = match e.kind {
                EventKind::Admitted { job }
                | EventKind::Regime { job, .. }
                | EventKind::Cache { job, .. }
                | EventKind::Completed { job, .. } => job,
                ref k => panic!("unexpected kind {k:?}"),
            };
            assert_eq!(j, job);
        }
    }
}
