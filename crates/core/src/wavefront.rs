//! The anti-diagonal ("wavefront") parallel algorithm — reference \[10\].
//!
//! The paper cites two *work-optimal* parallel algorithms: `O(n^2)` time on
//! `O(n)` processors and `O(n)` time on `O(n^2)` processors. Both process
//! the DP table diagonal by diagonal: all cells `(i, i+d)` of diagonal `d`
//! depend only on strictly shorter intervals, so they can be computed
//! simultaneously. This is the practical multicore baseline (experiment
//! E7): `O(n^3)` total work, `O(n)` span when each cell's min is also
//! parallelised.
//!
//! The parallel implementation hands each diagonal's cells to the
//! configured [`ExecBackend`] and falls back to sequential execution for
//! small diagonals, where the fork-join overhead would dominate.

use crate::exec::ExecBackend;
use crate::fault::CancelToken;
use crate::problem::DpProblem;
use crate::tables::WTable;
use crate::weight::Weight;

/// Tuning for [`solve_wavefront`].
#[derive(Debug, Clone, Copy)]
pub struct WavefrontConfig {
    /// Execution backend for the per-diagonal passes.
    pub exec: ExecBackend,
    /// Diagonals with fewer candidate evaluations than this run
    /// sequentially (avoids fork-join overhead on tiny diagonals).
    pub parallel_threshold: usize,
}

impl Default for WavefrontConfig {
    fn default() -> Self {
        WavefrontConfig {
            exec: ExecBackend::Parallel,
            parallel_threshold: 4096,
        }
    }
}

/// Solve recurrence (*) by parallel anti-diagonal sweeps.
pub fn solve_wavefront<W: Weight, P: DpProblem<W> + Sync + ?Sized>(
    problem: &P,
    config: &WavefrontConfig,
) -> WTable<W> {
    solve_wavefront_cancel(problem, config, CancelToken::NONE).0
}

/// Cancellable wavefront solve for the façade: `cancel` is checked once
/// per diagonal. Returns the table plus whether the sweep ran to
/// completion — `false` means the deadline passed and the table is
/// partial (diagonals past the cancellation point are still infinity).
pub(crate) fn solve_wavefront_cancel<W: Weight, P: DpProblem<W> + Sync + ?Sized>(
    problem: &P,
    config: &WavefrontConfig,
    cancel: CancelToken,
) -> (WTable<W>, bool) {
    let n = problem.n();
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    let mut diag: Vec<W> = Vec::with_capacity(n);
    for d in 2..=n {
        if cancel.is_cancelled() {
            return (w, false);
        }
        let cells = n - d + 1;
        let cell_value = |i: usize, w: &WTable<W>| {
            let j = i + d;
            let mut best = W::INFINITY;
            for k in i + 1..j {
                let cand = w.get(i, k).add(w.get(k, j)).add(problem.f(i, k, j));
                best = best.min2(cand);
            }
            best
        };
        if config.exec.is_parallel() && cells * (d - 1) >= config.parallel_threshold {
            config
                .exec
                .map_collect_into(&mut diag, cells, |i| cell_value(i, &w));
        } else {
            diag.clear();
            diag.extend((0..cells).map(|i| cell_value(i, &w)));
        }
        for (i, &v) in diag.iter().enumerate() {
            w.set(i, i + d, v);
        }
    }
    (w, true)
}

/// Convenience wrapper with default tuning.
pub fn solve_wavefront_default<W: Weight, P: DpProblem<W> + Sync + ?Sized>(
    problem: &P,
) -> WTable<W> {
    solve_wavefront(problem, &WavefrontConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::seq::solve_sequential;

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    #[test]
    fn wavefront_matches_sequential_small() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let seq = solve_sequential(&p);
        let par = solve_wavefront_default(&p);
        assert!(seq.table_eq(&par));
        assert_eq!(par.root(), 15125);
    }

    #[test]
    fn wavefront_matches_sequential_random() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for n in [2usize, 3, 5, 17, 40, 80] {
            let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..64)).collect();
            let p = chain(dims);
            let seq = solve_sequential(&p);
            // Force the parallel path with a zero threshold.
            let par = solve_wavefront(
                &p,
                &WavefrontConfig {
                    exec: ExecBackend::Threads(4),
                    parallel_threshold: 0,
                },
            );
            assert!(seq.table_eq(&par), "n={n}");
        }
    }

    #[test]
    fn threshold_zero_and_huge_agree() {
        let p = chain(vec![7, 3, 9, 4, 12, 5, 8, 6, 10]);
        let a = solve_wavefront(
            &p,
            &WavefrontConfig {
                parallel_threshold: 0,
                ..Default::default()
            },
        );
        let b = solve_wavefront(
            &p,
            &WavefrontConfig {
                parallel_threshold: usize::MAX,
                ..Default::default()
            },
        );
        assert!(a.table_eq(&b));
    }
}
