//! Executable §4: the pebbling game and the algebraic algorithm run in
//! lockstep on an optimal tree.
//!
//! The paper proves correctness by synchronising the game (played on an
//! optimal tree) with the algorithm:
//!
//! ```text
//! repeat 2*ceil(sqrt(n)) times begin
//!     activate; a-activate;
//!     square;   a-square;
//!     pebble;   a-pebble;
//! end.
//! ```
//!
//! maintaining (§4):
//!
//! * (a) if node `(i,j)` is pebbled after the k-th pebble, then after the
//!   next `a-pebble`, `w'(i,j) = w(i,j)`;
//! * (b) if `cond((i,j)) = (p,q)` after the k-th square/activate, then
//!   after the next `a-square`/`a-activate`,
//!   `pw'(i,j,p,q) = pw(i,j,p,q)`.
//!
//! [`verify_coupled`] executes exactly this combined loop and checks, at
//! every synchronisation point, the machine-checkable consequences:
//! soundness (`w' >= w` everywhere — the tables never under-shoot), claim
//! (a) as stated, and for (b) the one-sided bound
//! `pw'(i,j,p,q) <= w(i,j) - w(p,q)` (the tree-realized partial weight;
//! the true `pw` may be smaller, and the realized weight is what the
//! pebbling progress argument consumes).

use pardp_pebble::{PebbleGame, SquareRule};

use crate::exec::ExecBackend;
use crate::ops::{a_activate_dense, a_pebble_dense, a_square_dense};
use crate::problem::DpProblem;
use crate::reconstruct::{reconstruct_root, to_pebble_tree};
use crate::seq::solve_sequential;
use crate::tables::{DensePw, WTable};
use crate::weight::Weight;

/// The coupled verification runs sequentially: it checks invariants after
/// every sub-step, in lockstep with the game.
const SEQ: ExecBackend = ExecBackend::Sequential;

/// Outcome of a successful coupled run.
#[derive(Debug, Clone)]
pub struct CoupledOutcome {
    /// Problem size.
    pub n: usize,
    /// Move at which the game pebbled the root of the optimal tree.
    pub root_pebbled_at: u64,
    /// Iterations executed (the full schedule).
    pub iterations: u64,
    /// Individual invariant checks performed.
    pub checks: u64,
}

/// Run the combined §4 loop, checking the correspondence invariants after
/// every operation pair. Returns an error describing the first violated
/// invariant (which would indicate an implementation bug — the test suite
/// runs this on many instances).
pub fn verify_coupled<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
) -> Result<CoupledOutcome, String> {
    let n = problem.n();
    let w_star = solve_sequential(problem);
    let tree = reconstruct_root(problem, &w_star).map_err(|e| format!("reconstruct: {e}"))?;
    let ptree = to_pebble_tree(&tree);
    let labels = ptree.interval_labels();
    let mut game = PebbleGame::new(&ptree, SquareRule::Modified);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();

    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);
    let mut checks = 0u64;
    let mut root_pebbled_at = 0u64;

    // Soundness: w' never dips below the true optimum anywhere.
    let soundness = |w: &WTable<W>, stage: &str, iter: u64| -> Result<u64, String> {
        let mut local = 0u64;
        for i in 0..n {
            for j in i + 1..=n {
                let approx = w.get(i, j);
                let truth = w_star.get(i, j);
                if approx < truth && !approx.cost_eq(&truth) {
                    return Err(format!(
                        "iteration {iter} {stage}: w'({i},{j}) = {approx} < w = {truth}"
                    ));
                }
                local += 1;
            }
        }
        Ok(local)
    };

    // cond-target invariant: pw'(x, cond(x)) <= realized partial weight.
    let cond_invariant =
        |game: &PebbleGame<'_>, pw: &DensePw<W>, stage: &str, iter: u64| -> Result<u64, String> {
            let mut local = 0u64;
            for x in ptree.node_ids() {
                let y = game.cond(x);
                if y == x {
                    continue;
                }
                let (i, j) = labels[x];
                let (p, q) = labels[y];
                let realized = {
                    // w(i,j) - w(p,q) without subtraction (Weight has no sub):
                    // check pw' + w(p,q) <= w(i,j) instead.
                    pw.get(i, j, p, q).add(w_star.get(p, q))
                };
                let bound = w_star.get(i, j);
                if realized > bound && !realized.cost_eq(&bound) {
                    return Err(format!(
                        "iteration {iter} {stage}: pw'({i},{j},{p},{q}) + w({p},{q}) = {realized} \
                     exceeds w({i},{j}) = {bound}"
                    ));
                }
                local += 1;
            }
            Ok(local)
        };

    for iter in 1..=schedule {
        // activate; a-activate
        game.activate();
        a_activate_dense(problem, &w, &mut pw, &SEQ);
        checks += cond_invariant(&game, &pw, "activate", iter)?;

        // square; a-square
        game.square();
        a_square_dense(&pw, &mut pw_next, &SEQ);
        std::mem::swap(&mut pw, &mut pw_next);
        checks += cond_invariant(&game, &pw, "square", iter)?;

        // pebble; a-pebble
        game.pebble();
        a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
        std::mem::swap(&mut w, &mut w_next);
        checks += soundness(&w, "pebble", iter)?;

        // Claim (a): pebbled nodes hold exact values.
        for x in ptree.node_ids() {
            if game.is_pebbled(x) {
                let (i, j) = labels[x];
                let got = w.get(i, j);
                let want = w_star.get(i, j);
                if !got.cost_eq(&want) {
                    return Err(format!(
                        "iteration {iter}: node ({i},{j}) pebbled but w' = {got} != w = {want}"
                    ));
                }
                checks += 1;
            }
        }
        if game.root_pebbled() && root_pebbled_at == 0 {
            root_pebbled_at = iter;
        }
    }

    if !game.root_pebbled() {
        return Err(format!(
            "game did not pebble the root within {schedule} moves"
        ));
    }
    if !w.root().cost_eq(&w_star.root()) {
        return Err(format!(
            "final value mismatch: algorithm {} vs sequential {}",
            w.root(),
            w_star.root()
        ));
    }
    if !w.table_eq(&w_star) {
        return Err("final w table differs from the sequential oracle".into());
    }

    Ok(CoupledOutcome {
        n,
        root_pebbled_at,
        iterations: schedule,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, TabulatedProblem};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    #[test]
    fn coupled_run_on_clrs_chain() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let out = verify_coupled(&p).unwrap();
        assert_eq!(out.n, 6);
        assert!(out.root_pebbled_at >= 1);
        assert!(out.root_pebbled_at <= out.iterations);
        assert!(out.checks > 0);
    }

    #[test]
    fn coupled_run_on_random_chains() {
        let mut rng = SmallRng::seed_from_u64(5150);
        for n in [2usize, 3, 5, 8, 12, 16] {
            for _ in 0..3 {
                let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..40)).collect();
                let p = chain(dims);
                verify_coupled(&p).unwrap_or_else(|e| panic!("n={n}: {e}"));
            }
        }
    }

    #[test]
    fn coupled_run_on_arbitrary_costs() {
        let mut rng = SmallRng::seed_from_u64(31);
        for n in [4usize, 7, 11, 15] {
            let init: Vec<u64> = (0..n).map(|_| rng.gen_range(0..25)).collect();
            let m = n + 1;
            let f_vals: Vec<u64> = (0..m * m * m).map(|_| rng.gen_range(0..25)).collect();
            let p = TabulatedProblem::new(init, |i, k, j| f_vals[(i * m + k) * m + j]);
            verify_coupled(&p).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn coupled_run_on_floats() {
        let mut rng = SmallRng::seed_from_u64(13);
        let dims: Vec<f64> = (0..=10).map(|_| rng.gen_range(0.5..4.0)).collect();
        let n = dims.len() - 1;
        let p = FnProblem::new(n, |_| 0.0f64, move |i, k, j| dims[i] * dims[k] * dims[j]);
        verify_coupled(&p).unwrap();
    }
}
