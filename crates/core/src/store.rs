//! Content-addressed solution store: cache solved tables, warm-start
//! overlapping instances.
//!
//! Solved `w` tables are pure functions of (problem family, payload,
//! identity-relevant options) — yet the façade, the batch scheduler, and
//! the serve daemon all re-run the full `O(n³)`–`O(n⁵)` solve on every
//! repeat. This module closes that gap with three layers:
//!
//! 1. **Identity** — [`ProblemKey`] derives a canonical content hash
//!    from a [`ProblemSpec`] plus the solve configuration, using the
//!    same [`CanonicalHasher`] (FNV-1a 64,
//!    little-endian, length-prefixed fields) that backs
//!    [`table_hash`](crate::spec::table_hash). One hash function is the
//!    single source of identity everywhere: façade, batch, serve, CLI.
//! 2. **Storage** — the [`SolutionCache`] trait with two std-only
//!    implementations: [`MemoryCache`], a bounded in-memory LRU safe
//!    for concurrent serve workers, and [`FileStore`], a persistent
//!    page-aligned record file with an in-memory index and crash-safe
//!    appends (a torn final record is detected by checksum and skipped
//!    on load, never served).
//! 3. **Reuse** — [`Solver::with_cache`] splits
//!    [`Solver::solve`](crate::solver::Solver::solve) into four stages
//!    (key → lookup → solve-miss → insert, each a public method of
//!    [`CachedSolver`]); [`BatchSolver::solve_resolved`] dedups
//!    identical jobs within a batch and shares one cache across both
//!    scheduling regimes; `serve` threads the same cache through its
//!    worker pool and reports `hits` / `misses` / `warm_starts`.
//!
//! ## Key derivation rules
//!
//! The key covers the family name, the family payload (length-prefixed
//! `u64` slices, so `chain [1,2]` and `merge [1,2]` never collide), the
//! algorithm name, and **only the knobs that can change the solution
//! bytes** (value, table, trace, statistics), filtered by the
//! algorithm's capability flags:
//!
//! * **Identity-relevant** — `termination` (changes iteration counts),
//!   `skip_clean_rows` (changes candidate counts), `band`, and
//!   `windowed_pebble` (both change the §5 work pattern) — each hashed
//!   only for algorithms whose capability flags read them.
//! * **Not identity-relevant** — `exec` (every backend produces
//!   bit-identical tables *and* identical [`OpStats`], property-tested
//!   in `tests/backend_parity.rs`), `square` (same guarantee, see
//!   [`SquareStrategy`](crate::ops::SquareStrategy)), and
//!   `wavefront_grain` (splitting only; the wavefront table is exact
//!   for every grain). Jobs differing only in these knobs share a cache
//!   entry.
//! * **Bypass** — `record_trace: true` jobs carry per-iteration records
//!   sized by the run that produced them, and [`Algorithm::Knuth`]
//!   requires a quadrangle-inequality check that a cache hit would
//!   skip. Both are never cached and never warm-started:
//!   [`ProblemKey::derive`] returns `None` and the solve goes straight
//!   to the kernels ([`CacheOutcome::Bypass`]).
//!
//! ## Warm starts
//!
//! Every wire family is *prefix-exact* (see
//! [`ProblemSpec::prefix`]): the recurrence at a pair `(i,j)` reads only
//! pairs nested inside it, and each family's `init` / `f` reads only
//! payload entries inside `[i,j]`. A cached size-`m` table of the same
//! family, payload prefix, and options therefore seeds the first
//! `m(m+1)/2` cells of a size-`n` solve bit-exactly. On a miss, the
//! store probes prefixes from `n-1` down to `2` and:
//!
//! * **Sequential / Wavefront** — completes the table with the
//!   width-ascending sequential recurrence over the un-seeded pairs.
//!   The result (table, direct trace, zero stats) is fully
//!   bit-identical to a cold solve.
//! * **Sublinear / Reduced** — runs the iterative solver with the
//!   seeded cells marked *final*: the dirty-bit initialization excludes
//!   them from every pebble pass (the pebble is a monotone
//!   re-minimisation whose candidates never undercut the optimum, so
//!   skipping already-optimal pairs is exact), while their `pw` rows
//!   still feed the new region. The final table and value are
//!   bit-identical to a cold solve; the trace and statistics are
//!   smaller — they honestly report the work actually done.
//! * **Rytter** — no seeded variant (its doubling structure has no
//!   per-pair dirty bits); a miss falls back to a cold solve, which is
//!   still cached for the next exact repeat.
//!
//! ## Cache sizing for batch and serve
//!
//! A cached solution stores the full `(n+1)²` cell table — about
//! `8(n+1)²` bytes, e.g. ~2 MiB at the serve admission cap (`n = 512`).
//! [`MemoryCache`] is bounded by *entry count*, so size it by the
//! largest admitted table: the default
//! [`DEFAULT_MEMORY_CAPACITY`] (256 entries) caps worst-case memory
//! near 512 MiB but typically holds far more small tables than that
//! bound suggests. [`FileStore`] is unbounded (one page-aligned record
//! per distinct key, later duplicates win); use `pardp cache stat` to
//! watch its growth and `pardp cache clear` to reset it.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::batch::{BatchError, BatchResult, BatchSolver};
use crate::fault::{unpoison, FaultPlan, FaultSite};
use crate::ops::OpStats;
use crate::problem::DpProblem;
use crate::reduced::solve_reduced_seeded;
use crate::solver::{Algorithm, Solution, SolveOptions, Solver};
use crate::spec::{CanonicalHasher, ProblemSpec, ResolvedJob};
use crate::sublinear::solve_sublinear_seeded;
use crate::tables::WTable;
use crate::telemetry::EventKind;
use crate::trace::{SolveTrace, Termination};
use crate::weight::Weight;

/// Store error: a human-readable description, CLI-grade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(pub String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StoreError {}

// ---------------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------------

/// Canonical cache identity of one solve: family + payload + algorithm
/// plus the identity-relevant knobs, hashed with the workspace's one
/// canonical FNV-1a 64 encoding (see the module docs for the rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemKey(pub u64);

impl ProblemKey {
    /// The 16-hex-digit rendering (same format as
    /// [`table_hash`](crate::spec::table_hash)).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Derive the key for solving `spec` with `algorithm` under
    /// `options`, or `None` when the job must bypass the cache
    /// (trace-recording jobs, [`Algorithm::Knuth`] — see the module
    /// docs).
    pub fn derive(
        spec: &ProblemSpec,
        algorithm: Algorithm,
        options: &SolveOptions,
    ) -> Option<ProblemKey> {
        if algorithm == Algorithm::Knuth || options.record_trace {
            return None;
        }
        let mut h = CanonicalHasher::new();
        h.write_str("pardp-store-v1");
        h.write_str(spec.family());
        match spec {
            ProblemSpec::Chain { dims } => h.write_slice(dims),
            ProblemSpec::Obst { p, q } => {
                h.write_slice(p);
                h.write_slice(q);
            }
            ProblemSpec::Polygon { weights } => h.write_slice(weights),
            ProblemSpec::Merge { lengths } => h.write_slice(lengths),
        }
        h.write_str(algorithm.name());
        if algorithm.supports_termination() {
            h.write_str(match options.termination {
                Termination::FixedSqrtN => "fixed-sqrt-n",
                Termination::Fixpoint => "fixpoint",
                Termination::WStableTwice => "w-stable-twice",
            });
        }
        if algorithm.supports_skip() {
            h.write_u64(options.skip_clean_rows as u64);
        }
        if algorithm.supports_band() {
            match options.band {
                None => h.write_u64(0),
                Some(b) => {
                    h.write_u64(1);
                    h.write_u64(b as u64);
                }
            }
        }
        if algorithm == Algorithm::Reduced {
            h.write_u64(options.windowed_pebble as u64);
        }
        Some(ProblemKey(h.finish()))
    }
}

// ---------------------------------------------------------------------------
// Cached solutions
// ---------------------------------------------------------------------------

/// One stored solution: everything needed to rebuild a
/// [`Solution<u64>`] bit-identically (wall time excepted — a hit
/// reports its own, honest lookup time).
///
/// Self-describing on purpose: `family` / `algorithm` / `n` are
/// re-checked against the requesting job on every hit, so a key
/// collision (or a corrupted record that still passes its checksum)
/// degrades to a miss instead of serving a wrong table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedSolution {
    /// Wire family name of the solved instance.
    pub family: String,
    /// Canonical name of the algorithm that produced the table.
    pub algorithm: String,
    /// Problem size `n`.
    pub n: usize,
    /// The full `(n+1)²` row-major cell slice of the solved
    /// [`WTable`], unsolved cells holding the `u64` weight infinity.
    pub cells: Vec<u64>,
    /// The run's [`SolveTrace`], verbatim.
    pub trace: SolveTrace,
    /// [`OpStats::candidates`] of the run (stats are mirrored field by
    /// field — [`OpStats`] itself has no wire form).
    pub candidates: u64,
    /// [`OpStats::writes`] of the run.
    pub writes: u64,
    /// [`OpStats::changed`] of the run.
    pub changed: bool,
}

impl CachedSolution {
    /// Capture `solution` for storage.
    pub fn of_solution(family: &str, solution: &Solution<u64>) -> CachedSolution {
        CachedSolution {
            family: family.to_string(),
            algorithm: solution.algorithm.name().to_string(),
            n: solution.w.n(),
            cells: solution.w.as_slice().to_vec(),
            trace: solution.trace.clone(),
            candidates: solution.stats.candidates,
            writes: solution.stats.writes,
            changed: solution.stats.changed,
        }
    }

    /// Rebuild the stored table.
    pub fn to_table(&self) -> Result<WTable<u64>, StoreError> {
        let mut w = WTable::new(self.n);
        if self.cells.len() != w.as_slice().len() {
            return Err(StoreError(format!(
                "cached record is inconsistent: n = {} wants {} cells, record has {}",
                self.n,
                w.as_slice().len(),
                self.cells.len()
            )));
        }
        w.as_mut_slice().copy_from_slice(&self.cells);
        Ok(w)
    }

    /// Rebuild the full uniform [`Solution`]. `wall` starts at zero;
    /// the lookup path stamps its own elapsed time.
    pub fn to_solution(&self) -> Result<Solution<u64>, StoreError> {
        let algorithm: Algorithm = self
            .algorithm
            .parse()
            .map_err(|e: String| StoreError(format!("cached record: {e}")))?;
        Ok(Solution {
            algorithm,
            w: self.to_table()?,
            trace: self.trace.clone(),
            stats: OpStats {
                candidates: self.candidates,
                writes: self.writes,
                changed: self.changed,
            },
            wall: Duration::ZERO,
        })
    }

    /// Whether this record answers a `(spec, algorithm)` request — the
    /// hit-time collision guard.
    fn answers(&self, spec: &ProblemSpec, algorithm: Algorithm) -> bool {
        self.family == spec.family()
            && self.algorithm == algorithm.name()
            && self.n == spec.n()
            && self.cells.len() == (self.n + 1) * (self.n + 1)
    }
}

// ---------------------------------------------------------------------------
// The cache trait and the in-memory LRU
// ---------------------------------------------------------------------------

/// A concurrent solution cache. Methods take `&self`: implementations
/// use interior mutability so one cache can be shared by every serve
/// worker and batch phase without external locking.
pub trait SolutionCache: Send + Sync {
    /// Fetch the record stored under `key`, if any.
    fn get(&self, key: ProblemKey) -> Option<CachedSolution>;
    /// Store `solution` under `key`, replacing any previous record.
    fn put(&self, key: ProblemKey, solution: CachedSolution);
    /// Number of records currently retrievable.
    fn len(&self) -> usize;
    /// Whether the cache holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Fallible fetch: `Ok(None)` is a true miss, `Err` a failing
    /// backend (IO error, corrupt record under an indexed key). The
    /// default delegates to [`get`](SolutionCache::get) for backends
    /// that cannot fail. Cache-aware solvers treat `Err` as
    /// [`CacheOutcome::Bypass`] — solve cold, skip the insert — so a
    /// degraded cache only ever costs performance, never answers.
    fn try_get(&self, key: ProblemKey) -> Result<Option<CachedSolution>, StoreError> {
        Ok(self.get(key))
    }
    /// Fallible store, same contract: the default delegates to
    /// [`put`](SolutionCache::put) and cannot fail.
    fn try_put(&self, key: ProblemKey, solution: CachedSolution) -> Result<(), StoreError> {
        self.put(key, solution);
        Ok(())
    }
}

/// Default [`MemoryCache`] capacity, in entries (see the module docs
/// for the sizing rationale).
pub const DEFAULT_MEMORY_CAPACITY: usize = 256;

/// Bounded in-memory LRU cache.
///
/// A `Mutex` around a stamp-based map: `get` refreshes the entry's
/// stamp, `put` at capacity evicts the stalest entry. The lock is held
/// only for the map operation plus one record clone, so serve workers
/// contend briefly even on large tables. A poisoned lock (a panicking
/// worker) is recovered, not propagated: the map is always in a
/// consistent state between operations.
pub struct MemoryCache {
    capacity: usize,
    inner: Mutex<MemoryInner>,
}

struct MemoryInner {
    map: HashMap<u64, (u64, CachedSolution)>,
    clock: u64,
}

impl std::fmt::Debug for MemoryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for MemoryCache {
    fn default() -> Self {
        Self::new(DEFAULT_MEMORY_CAPACITY)
    }
}

impl MemoryCache {
    /// An LRU cache holding at most `capacity` records (floored at 1).
    pub fn new(capacity: usize) -> Self {
        MemoryCache {
            capacity: capacity.max(1),
            inner: Mutex::new(MemoryInner {
                map: HashMap::new(),
                clock: 0,
            }),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoryInner> {
        unpoison(self.inner.lock())
    }
}

impl SolutionCache for MemoryCache {
    fn get(&self, key: ProblemKey) -> Option<CachedSolution> {
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        let (stamp, solution) = inner.map.get_mut(&key.0)?;
        *stamp = now;
        Some(solution.clone())
    }

    fn put(&self, key: ProblemKey, solution: CachedSolution) {
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        if !inner.map.contains_key(&key.0) && inner.map.len() >= self.capacity {
            if let Some(&stale) = inner
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k)
            {
                inner.map.remove(&stale);
            }
        }
        inner.map.insert(key.0, (now, solution));
    }

    fn len(&self) -> usize {
        self.lock().map.len()
    }
}

// ---------------------------------------------------------------------------
// The persistent file store
// ---------------------------------------------------------------------------

const PAGE: u64 = 4096;
const HEADER_LEN: u64 = 64;
const MAGIC: &[u8; 8] = b"PARDPST1";

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = CanonicalHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

fn align_up(x: u64, to: u64) -> u64 {
    x.div_ceil(to) * to
}

/// Aggregate statistics of a [`FileStore`] (the `pardp cache stat`
/// payload).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StoreStat {
    /// Retrievable records (duplicates under one key count once).
    pub records: u64,
    /// Size of the data file in bytes, padding included.
    pub file_bytes: u64,
    /// Bytes anywhere in the file that failed validation on load (torn
    /// appends, corrupt pages, trailing garbage, a foreign file) —
    /// skipped; trailing garbage is overwritten by the next `put`.
    pub skipped_bytes: u64,
    /// Record counts per wire family, sorted by name.
    pub families: Vec<(String, u64)>,
    /// Record counts per algorithm, sorted by name.
    pub algorithms: Vec<(String, u64)>,
}

/// Persistent solution store: one append-only, page-aligned record
/// file (`store.dat`) plus an in-memory key index built by scanning it
/// on open.
///
/// Record layout (all integers little-endian): a 64-byte header —
/// magic `PARDPST1`, key, payload length, payload FNV-1a checksum,
/// header FNV-1a checksum over the first 32 bytes, zero pad — followed
/// by the JSON-rendered [`CachedSolution`] payload, zero-padded to the
/// next 4096-byte page so every record starts page-aligned.
///
/// **Crash safety:** `put` seeks to the end of the last *valid* record
/// and writes header + payload + pad in one `write_all`, then
/// `sync_data`s. A crash mid-append leaves a record that fails its
/// checksum; the next open detects it, probes forward page by page for
/// the next valid record (every record starts page-aligned, so a bad
/// page anywhere in the file — a torn append, a flipped bit, foreign
/// garbage — costs only the records on it), reports the invalid bytes
/// through [`skipped_bytes`](Self::skipped_bytes), and the next `put`
/// goes after the last valid record, overwriting any trailing garbage.
/// Later records under an already-seen key win (append-wins
/// semantics), so updates never rewrite in place.
pub struct FileStore {
    dir: PathBuf,
    skipped: u64,
    fault: Option<Arc<FaultPlan>>,
    inner: Mutex<FileInner>,
}

struct FileInner {
    file: File,
    /// key → (record offset, payload length).
    index: HashMap<u64, (u64, u64)>,
    /// Offset one past the last valid record, page-aligned: where the
    /// next record goes.
    end: u64,
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("dir", &self.dir)
            .field("len", &self.len())
            .field("skipped_bytes", &self.skipped)
            .finish()
    }
}

impl FileStore {
    /// Open (or create) the store in `dir`, creating the directory if
    /// needed and scanning the data file to build the index.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| {
            StoreError(format!(
                "cannot create cache directory '{}': {e}",
                dir.display()
            ))
        })?;
        Self::open_scan(dir)
    }

    /// Open the store in an *existing* `dir`, with a pointed error when
    /// the directory is missing — the right entry point for `pardp
    /// cache stat` / `clear`, which inspect rather than populate.
    pub fn open_existing(dir: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        let dir = dir.as_ref();
        if !dir.is_dir() {
            return Err(StoreError(format!(
                "cache directory '{}' does not exist (pass a directory previously \
                 used with --cache)",
                dir.display()
            )));
        }
        Self::open_scan(dir)
    }

    fn data_path(dir: &Path) -> PathBuf {
        dir.join("store.dat")
    }

    fn open_scan(dir: &Path) -> Result<FileStore, StoreError> {
        let path = Self::data_path(dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreError(format!("cannot open '{}': {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError(format!("cannot read '{}': {e}", path.display())))?;

        // Scan page-aligned offsets: a valid record advances the scan
        // past itself; an invalid page is skipped and the scan probes
        // the next page boundary (records only ever start page-aligned,
        // so mid-file corruption costs exactly the records it touched).
        let mut index = HashMap::new();
        let mut offset: u64 = 0;
        let mut end: u64 = 0;
        let mut skipped: u64 = 0;
        let len = bytes.len() as u64;
        while offset + HEADER_LEN <= len {
            if let Some((key, payload_len, record_end)) = Self::parse_record(&bytes, offset) {
                index.insert(key, (offset, payload_len));
                offset = align_up(record_end, PAGE);
                end = offset;
            } else {
                let next = (offset + PAGE).min(len);
                skipped += next - offset;
                offset = next;
            }
        }
        skipped += len.saturating_sub(offset);
        Ok(FileStore {
            dir: dir.to_path_buf(),
            skipped,
            fault: None,
            inner: Mutex::new(FileInner { file, index, end }),
        })
    }

    /// Validate the record at page-aligned `offset`; `Some((key,
    /// payload_len, record_end))` iff magic, header checksum, bounds,
    /// and payload checksum all hold.
    fn parse_record(bytes: &[u8], offset: u64) -> Option<(u64, u64, u64)> {
        let len = bytes.len() as u64;
        let h = &bytes[offset as usize..(offset + HEADER_LEN) as usize];
        let word = |at: usize| u64::from_le_bytes(h[at..at + 8].try_into().unwrap());
        if &h[0..8] != MAGIC || word(32) != fnv64(&h[0..32]) {
            return None;
        }
        let key = word(8);
        let payload_len = word(16);
        let payload_sum = word(24);
        let record_end = offset
            .checked_add(HEADER_LEN)
            .and_then(|x| x.checked_add(payload_len))?;
        if record_end > len {
            return None;
        }
        let payload =
            &bytes[(offset + HEADER_LEN) as usize..(offset + HEADER_LEN + payload_len) as usize];
        if fnv64(payload) != payload_sum {
            return None;
        }
        Some((key, payload_len, record_end))
    }

    /// Attach a fault-injection plan (builder style): appends consult
    /// [`FaultSite::TornWrite`] and, when scheduled, write only the
    /// first half of the record — the mid-file corruption the next
    /// [`open`](FileStore::open) must detect and skip. Test harness
    /// only; production stores never attach a plan.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> FileStore {
        self.fault = Some(plan);
        self
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes of invalid data skipped when the store was opened — torn
    /// appends, corrupt pages anywhere in the file, trailing garbage
    /// (zero after a clean shutdown).
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FileInner> {
        unpoison(self.inner.lock())
    }

    fn read_record(inner: &mut FileInner, offset: u64, payload_len: u64) -> Option<CachedSolution> {
        inner.file.seek(SeekFrom::Start(offset + HEADER_LEN)).ok()?;
        let mut payload = vec![0u8; payload_len as usize];
        inner.file.read_exact(&mut payload).ok()?;
        let text = std::str::from_utf8(&payload).ok()?;
        serde_json::from_str(text).ok()
    }

    /// Aggregate statistics (reads and parses every record).
    pub fn stat(&self) -> Result<StoreStat, StoreError> {
        let mut inner = self.lock();
        let file_bytes = inner
            .file
            .metadata()
            .map_err(|e| StoreError(format!("cannot stat store: {e}")))?
            .len();
        let mut families: HashMap<String, u64> = HashMap::new();
        let mut algorithms: HashMap<String, u64> = HashMap::new();
        let records = inner.index.len() as u64;
        let entries: Vec<(u64, u64)> = inner.index.values().copied().collect();
        for (offset, payload_len) in entries {
            if let Some(record) = Self::read_record(&mut inner, offset, payload_len) {
                *families.entry(record.family).or_insert(0) += 1;
                *algorithms.entry(record.algorithm).or_insert(0) += 1;
            }
        }
        let sorted = |m: HashMap<String, u64>| {
            let mut v: Vec<(String, u64)> = m.into_iter().collect();
            v.sort();
            v
        };
        Ok(StoreStat {
            records,
            file_bytes,
            skipped_bytes: self.skipped,
            families: sorted(families),
            algorithms: sorted(algorithms),
        })
    }

    /// Delete every record (truncate the data file), returning how many
    /// were removed. The store stays usable afterwards.
    pub fn wipe(&self) -> Result<u64, StoreError> {
        let mut inner = self.lock();
        let removed = inner.index.len() as u64;
        inner
            .file
            .set_len(0)
            .and_then(|()| inner.file.sync_data())
            .map_err(|e| StoreError(format!("cannot clear store: {e}")))?;
        inner.index.clear();
        inner.end = 0;
        Ok(removed)
    }
}

impl SolutionCache for FileStore {
    fn get(&self, key: ProblemKey) -> Option<CachedSolution> {
        self.try_get(key).unwrap_or(None)
    }

    fn put(&self, key: ProblemKey, solution: CachedSolution) {
        let _ = self.try_put(key, solution);
    }

    fn len(&self) -> usize {
        self.lock().index.len()
    }

    fn try_get(&self, key: ProblemKey) -> Result<Option<CachedSolution>, StoreError> {
        let mut inner = self.lock();
        let Some(&(offset, payload_len)) = inner.index.get(&key.0) else {
            return Ok(None);
        };
        match Self::read_record(&mut inner, offset, payload_len) {
            Some(record) => Ok(Some(record)),
            None => Err(StoreError(format!(
                "cache record {} is unreadable (IO error or corrupt payload)",
                key.hex()
            ))),
        }
    }

    fn try_put(&self, key: ProblemKey, solution: CachedSolution) -> Result<(), StoreError> {
        let payload = serde_json::to_string(&solution)
            .map_err(|e| StoreError(format!("cannot serialize cache record: {e:?}")))?
            .into_bytes();
        let mut header = [0u8; HEADER_LEN as usize];
        header[0..8].copy_from_slice(MAGIC);
        header[8..16].copy_from_slice(&key.0.to_le_bytes());
        header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        header[24..32].copy_from_slice(&fnv64(&payload).to_le_bytes());
        let head_sum = fnv64(&header[0..32]);
        header[32..40].copy_from_slice(&head_sum.to_le_bytes());

        let record_len = HEADER_LEN + payload.len() as u64;
        let padded = align_up(record_len, PAGE);
        let mut record = Vec::with_capacity(padded as usize);
        record.extend_from_slice(&header);
        record.extend_from_slice(&payload);
        record.resize(padded as usize, 0);

        // Injected torn write: append only half the record and advance
        // `end` past the full page span — the mid-file corruption the
        // next open's page-probing scan must skip.
        let torn = self
            .fault
            .as_ref()
            .is_some_and(|plan| plan.should(FaultSite::TornWrite));
        let write: &[u8] = if torn {
            // Cut inside header + payload (not the zero pad), so the
            // truncated record always fails its payload checksum.
            &record[..record_len as usize / 2]
        } else {
            &record
        };

        let mut inner = self.lock();
        let offset = inner.end;
        inner
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| inner.file.write_all(write))
            .and_then(|()| inner.file.sync_data())
            .map_err(|e| StoreError(format!("cannot append cache record: {e}")))?;
        inner.end = offset + padded;
        if torn {
            return Err(StoreError("injected torn write".into()));
        }
        inner.index.insert(key.0, (offset, payload.len() as u64));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Graceful degradation: the resilient wrapper
// ---------------------------------------------------------------------------

/// Default [`ResilientCache`] failure budget: errors tolerated before
/// the cache is taken out of service.
pub const DEFAULT_CACHE_FAILURE_BUDGET: u64 = 8;

/// A [`SolutionCache`] wrapper that degrades instead of failing: every
/// backend error is counted and surfaced as a miss (the cache-aware
/// solvers then solve cold and report [`CacheOutcome::Bypass`]), and
/// once the failure budget is spent the backend is disabled entirely —
/// a dying disk stops costing per-job latency, and the daemon keeps
/// answering from compute alone. The serve daemon wraps its configured
/// cache in one of these and reports [`errors`](ResilientCache::errors)
/// as the `cache_errors` stats counter.
pub struct ResilientCache {
    inner: Arc<dyn SolutionCache>,
    budget: u64,
    failures: AtomicU64,
    disabled: AtomicBool,
}

impl std::fmt::Debug for ResilientCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientCache")
            .field("budget", &self.budget)
            .field("errors", &self.errors())
            .field("disabled", &self.is_disabled())
            .finish()
    }
}

impl ResilientCache {
    /// Wrap `inner` with the default failure budget.
    pub fn new(inner: Arc<dyn SolutionCache>) -> ResilientCache {
        Self::with_budget(inner, DEFAULT_CACHE_FAILURE_BUDGET)
    }

    /// Wrap `inner`, disabling it after `budget` errors (floored at 1).
    pub fn with_budget(inner: Arc<dyn SolutionCache>, budget: u64) -> ResilientCache {
        ResilientCache {
            inner,
            budget: budget.max(1),
            failures: AtomicU64::new(0),
            disabled: AtomicBool::new(false),
        }
    }

    /// Backend errors observed so far (disabled-state short circuits
    /// are not errors and do not count).
    pub fn errors(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Whether the failure budget is spent and the backend is out of
    /// service.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    fn note_failure(&self) {
        if self.failures.fetch_add(1, Ordering::Relaxed) + 1 >= self.budget {
            self.disabled.store(true, Ordering::Relaxed);
        }
    }
}

impl SolutionCache for ResilientCache {
    fn get(&self, key: ProblemKey) -> Option<CachedSolution> {
        self.try_get(key).unwrap_or(None)
    }

    fn put(&self, key: ProblemKey, solution: CachedSolution) {
        let _ = self.try_put(key, solution);
    }

    fn len(&self) -> usize {
        if self.is_disabled() {
            0
        } else {
            self.inner.len()
        }
    }

    fn try_get(&self, key: ProblemKey) -> Result<Option<CachedSolution>, StoreError> {
        if self.is_disabled() {
            return Err(StoreError(
                "solution cache disabled after repeated errors".into(),
            ));
        }
        self.inner.try_get(key).inspect_err(|_| self.note_failure())
    }

    fn try_put(&self, key: ProblemKey, solution: CachedSolution) -> Result<(), StoreError> {
        if self.is_disabled() {
            return Err(StoreError(
                "solution cache disabled after repeated errors".into(),
            ));
        }
        self.inner
            .try_put(key, solution)
            .inspect_err(|_| self.note_failure())
    }
}

// ---------------------------------------------------------------------------
// The staged cached solver
// ---------------------------------------------------------------------------

/// How a cache-aware solve was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache, bit-identical to the run that produced it.
    Hit,
    /// Solved seeded from a cached size-`seed_n` prefix table.
    Warm {
        /// Size of the prefix instance the seed table solved.
        seed_n: usize,
    },
    /// Solved cold and inserted for next time.
    Miss,
    /// The cache was not used: the job is uncacheable (trace recording,
    /// Knuth), the backend failed (lookup or insert error — see
    /// [`ResilientCache`]), or the solve timed out (a partial table is
    /// never stored). Solved cold, nothing stored.
    Bypass,
}

impl CacheOutcome {
    /// The lower-case tag telemetry `cache` events carry.
    pub fn name(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm { .. } => "warm",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// [`Solver`] with a cache attached: [`Solver::solve`] split into its
/// four stages — [`key`](CachedSolver::key) →
/// [`lookup`](CachedSolver::lookup) →
/// [`solve_miss`](CachedSolver::solve_miss) →
/// [`insert`](CachedSolver::insert) — composed by
/// [`solve`](CachedSolver::solve). Takes a [`ProblemSpec`] rather than
/// a bare [`DpProblem`]: identity needs the canonical payload.
#[derive(Clone, Copy)]
pub struct CachedSolver<'c> {
    solver: Solver,
    cache: &'c dyn SolutionCache,
}

impl Solver {
    /// Attach a cache, splitting [`solve`](Solver::solve) into key →
    /// lookup → solve-miss → insert stages (see [`CachedSolver`]).
    pub fn with_cache(self, cache: &dyn SolutionCache) -> CachedSolver<'_> {
        CachedSolver {
            solver: self,
            cache,
        }
    }
}

impl<'c> CachedSolver<'c> {
    /// The underlying algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.solver.algorithm()
    }

    /// Stage 1 — the cache identity of `spec` under this solver's
    /// configuration, or `None` for cache-bypassing jobs.
    pub fn key(&self, spec: &ProblemSpec) -> Option<ProblemKey> {
        ProblemKey::derive(spec, self.solver.algorithm(), self.solver.solve_options())
    }

    /// Stage 2 — fetch and validate a stored solution for `spec`.
    /// Returns `None` on a true miss *and* on a record that does not
    /// answer this `(spec, algorithm)` request (the collision guard).
    /// A failing backend reads as a miss here; use
    /// [`try_lookup`](CachedSolver::try_lookup) to distinguish.
    pub fn lookup(&self, spec: &ProblemSpec, key: ProblemKey) -> Option<Solution<u64>> {
        self.try_lookup(spec, key).unwrap_or(None)
    }

    /// Fallible stage 2: `Err` is a failing cache backend — the
    /// composed [`solve`](CachedSolver::solve) then skips the warm
    /// probe and the insert too ([`CacheOutcome::Bypass`]), so one
    /// failing disk costs one error, not three.
    pub fn try_lookup(
        &self,
        spec: &ProblemSpec,
        key: ProblemKey,
    ) -> Result<Option<Solution<u64>>, StoreError> {
        let Some(cached) = self.cache.try_get(key)? else {
            return Ok(None);
        };
        if !cached.answers(spec, self.solver.algorithm()) {
            return Ok(None);
        }
        Ok(cached.to_solution().ok())
    }

    /// Stage 3 — solve on a miss: probe cached prefix tables for a
    /// warm start (largest first), fall back to a cold solve.
    pub fn solve_miss(&self, spec: &ProblemSpec) -> (Solution<u64>, CacheOutcome) {
        if let Some((solution, seed_n)) = warm_start(
            self.cache,
            spec,
            self.solver.algorithm(),
            self.solver.solve_options(),
        ) {
            return (solution, CacheOutcome::Warm { seed_n });
        }
        (self.solver.solve(&spec.build()), CacheOutcome::Miss)
    }

    /// Stage 4 — store `solution` under `key` for the next repeat.
    pub fn insert(&self, spec: &ProblemSpec, key: ProblemKey, solution: &Solution<u64>) {
        let _ = self.try_insert(spec, key, solution);
    }

    /// Fallible stage 4: `Err` is a failing cache backend; the solution
    /// itself is unaffected.
    pub fn try_insert(
        &self,
        spec: &ProblemSpec,
        key: ProblemKey,
        solution: &Solution<u64>,
    ) -> Result<(), StoreError> {
        self.cache
            .try_put(key, CachedSolution::of_solution(spec.family(), solution))
    }

    /// The composed staged solve. The returned solution is bit-identical
    /// to [`Solver::solve`] on the built instance — value and table
    /// always; trace and statistics too, except after a warm start,
    /// where they honestly report the (smaller) work actually done.
    ///
    /// Degradation: a failing backend turns the outcome into
    /// [`CacheOutcome::Bypass`] (cold solve, warm probe and insert
    /// skipped); a timed-out solve is likewise never inserted — a
    /// partial table must not poison future lookups.
    pub fn solve(&self, spec: &ProblemSpec) -> (Solution<u64>, CacheOutcome) {
        let t0 = Instant::now();
        let Some(key) = self.key(spec) else {
            let mut solution = self.solver.solve(&spec.build());
            solution.wall = t0.elapsed();
            return (solution, CacheOutcome::Bypass);
        };
        let looked_up = self.try_lookup(spec, key);
        if let Ok(Some(mut solution)) = looked_up {
            solution.wall = t0.elapsed();
            return (solution, CacheOutcome::Hit);
        }
        let (mut solution, outcome) = if looked_up.is_err() {
            (self.solver.solve(&spec.build()), CacheOutcome::Bypass)
        } else {
            self.solve_miss(spec)
        };
        // `||` short-circuits: a bypassed or timed-out solve is never
        // inserted, and a failing insert downgrades the outcome.
        let outcome = if outcome == CacheOutcome::Bypass
            || solution.timed_out()
            || self.try_insert(spec, key, &solution).is_err()
        {
            CacheOutcome::Bypass
        } else {
            outcome
        };
        solution.wall = t0.elapsed();
        (solution, outcome)
    }
}

/// One-call form of the staged solve for callers that hold the pieces
/// rather than a [`Solver`] (serve workers, the batch scheduler).
pub fn cached_solve(
    cache: &dyn SolutionCache,
    spec: &ProblemSpec,
    algorithm: Algorithm,
    options: &SolveOptions,
) -> (Solution<u64>, CacheOutcome) {
    Solver::new(algorithm)
        .options(*options)
        .with_cache(cache)
        .solve(spec)
}

/// Probe cached prefix tables (largest first) and run the matching
/// seeded solve. Returns `None` when the algorithm has no seeded
/// variant or no usable prefix is cached.
fn warm_start(
    cache: &dyn SolutionCache,
    spec: &ProblemSpec,
    algorithm: Algorithm,
    options: &SolveOptions,
) -> Option<(Solution<u64>, usize)> {
    if !matches!(
        algorithm,
        Algorithm::Sequential | Algorithm::Wavefront | Algorithm::Sublinear | Algorithm::Reduced
    ) {
        return None;
    }
    let n = spec.n();
    for m in (2..n).rev() {
        let prefix = spec.prefix(m)?;
        let key = ProblemKey::derive(&prefix, algorithm, options)?;
        let Some(cached) = cache.get(key) else {
            continue;
        };
        if !cached.answers(&prefix, algorithm) {
            continue;
        }
        let Ok(seed) = cached.to_table() else {
            continue;
        };
        let problem = spec.build();
        let solution = match algorithm {
            // The direct solvers complete the table sequentially over
            // the un-seeded pairs: table, trace, and (zero) stats are
            // fully bit-identical to a cold solve.
            Algorithm::Sequential | Algorithm::Wavefront => {
                let w = complete_sequential(&problem, m, &seed);
                Solution::direct(algorithm, w)
            }
            Algorithm::Sublinear => solve_sublinear_seeded(
                &problem,
                &options.sublinear_config(),
                m,
                &seed,
                options.cancel_token(),
            ),
            Algorithm::Reduced => solve_reduced_seeded(
                &problem,
                &options.reduced_config(),
                m,
                &seed,
                options.cancel_token(),
            ),
            _ => unreachable!("warm-startable algorithms are filtered above"),
        };
        return Some((solution, m));
    }
    None
}

/// Width-ascending sequential completion of a seeded table: pairs
/// `(i,j)` with `j <= m` come from the seed (they are prefix-exact, see
/// [`ProblemSpec::prefix`]); every other pair is computed by the plain
/// recurrence, in the same order as
/// [`solve_sequential`](crate::seq::solve_sequential) — so the result
/// is bit-identical to an unseeded sequential solve.
fn complete_sequential<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    m: usize,
    seed: &WTable<W>,
) -> WTable<W> {
    let n = problem.n();
    debug_assert!(seed.n() == m && m < n);
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    for i in 0..m {
        for j in i + 1..=m {
            w.set(i, j, seed.get(i, j));
        }
    }
    for d in 2..=n {
        for i in 0..=n - d {
            let j = i + d;
            if j <= m {
                continue;
            }
            let mut best = W::INFINITY;
            for k in i + 1..j {
                let cand = w.get(i, k).add(w.get(k, j)).add(problem.f(i, k, j));
                best = best.min2(cand);
            }
            w.set(i, j, best);
        }
    }
    w
}

// ---------------------------------------------------------------------------
// Cache-aware batch solving
// ---------------------------------------------------------------------------

/// Cache traffic counters of one batch run (or one serve session).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Jobs served straight from the cache.
    pub hits: u64,
    /// Jobs not found in the cache (warm starts included).
    pub misses: u64,
    /// Missed jobs seeded from a cached prefix table.
    pub warm_starts: u64,
    /// Jobs that duplicated an earlier job in the same batch and reused
    /// its solution.
    pub deduped: u64,
    /// Cache backend errors (failed lookups or inserts); each degraded
    /// the job to a plain cold solve ([`CacheOutcome::Bypass`]).
    pub errors: u64,
}

/// The outcome of a cache-aware batch: the same per-job results and
/// aggregates as [`BatchReport`](crate::batch::BatchReport), plus the
/// cache traffic. No borrowed problems — results own their solutions.
#[derive(Debug, Clone)]
pub struct CachedBatchReport {
    /// One result per job, in submission order. The `large` flag
    /// reports the job's regime *classification* (by cell count);
    /// cache-served jobs never actually entered a regime.
    pub results: Vec<BatchResult<u64>>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Aggregate statistics over every job, cached solutions included —
    /// so a fully-hit batch reports the same totals as the cold batch
    /// that populated the cache (warm starts excepted: they report the
    /// smaller work actually done).
    pub stats: OpStats,
    /// Jobs per second of batch wall time.
    pub throughput: f64,
    /// Jobs classified small (cells ≤ threshold).
    pub small_jobs: usize,
    /// Jobs classified large.
    pub large_jobs: usize,
    /// Cache traffic of this batch.
    pub cache: CacheCounters,
    /// Jobs whose solve panicked, isolated by
    /// [`BatchSolver::solve_batch_isolated`] — these have no entry in
    /// [`results`](CachedBatchReport::results); sorted by job index.
    pub errors: Vec<BatchError>,
}

impl CachedBatchReport {
    /// The standard trailing summary line of this run — wire-identical
    /// to a cache-less [`BatchSummary`](crate::spec::BatchSummary), so
    /// attaching a cache never changes the summary schema. Cache
    /// traffic rides separately in [`CachedBatchReport::cache`].
    pub fn summary(&self, backend: crate::exec::ExecBackend) -> crate::spec::BatchSummary {
        crate::spec::BatchSummary {
            jobs: self.results.len(),
            small_jobs: self.small_jobs,
            large_jobs: self.large_jobs,
            backend: backend.to_string(),
            wall_seconds: self.wall.as_secs_f64(),
            throughput: self.throughput,
            candidates: self.stats.candidates,
            writes: self.stats.writes,
        }
    }
}

impl BatchSolver {
    /// Solve resolved jobs with intra-batch dedup and an optional
    /// shared cache.
    ///
    /// Jobs with equal [`ProblemKey`]s are solved once — the first
    /// occurrence is the representative, later ones reuse its solution
    /// (`deduped` counts them). With a cache attached, representatives
    /// are looked up first (hits), then warm-start-probed, and only the
    /// remainder goes through [`solve_batch`](BatchSolver::solve_batch)
    /// under the usual two-regime scheduling; fresh solutions are
    /// inserted back. Cache-bypassing jobs (trace recording, Knuth) are
    /// neither deduped nor cached.
    ///
    /// Every solution is bit-identical (value, table; trace and stats
    /// except after warm starts) to a cold [`Solver::solve`] loop over
    /// the same jobs.
    pub fn solve_resolved(
        &self,
        jobs: &[ResolvedJob],
        cache: Option<&dyn SolutionCache>,
    ) -> CachedBatchReport {
        let t0 = Instant::now();
        let n = jobs.len();
        let mut counters = CacheCounters::default();

        let keys: Vec<Option<ProblemKey>> = jobs
            .iter()
            .map(|j| ProblemKey::derive(&j.problem, j.algorithm, &j.options))
            .collect();

        // Dedup: first occurrence of each key is the representative.
        // `outcomes` records per-job cache provenance for telemetry:
        // replicated jobs are `dedup`, representatives get their staged
        // outcome below, uncacheable jobs stay `bypass`.
        let mut outcomes: Vec<&'static str> = vec!["bypass"; n];
        let mut rep: HashMap<u64, usize> = HashMap::new();
        let mut source: Vec<usize> = (0..n).collect();
        for i in 0..n {
            if let Some(k) = keys[i] {
                match rep.entry(k.0) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        source[i] = *e.get();
                        counters.deduped += 1;
                        outcomes[i] = "dedup";
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                    }
                }
            }
        }

        // Lookup + warm-probe representatives; collect the cold rest.
        // A failing cache backend degrades the representative to a
        // plain cold solve with no insert (counted in `errors`).
        let mut solved: Vec<Option<Solution<u64>>> = vec![None; n];
        let mut to_insert: Vec<usize> = Vec::new();
        let mut cold: Vec<usize> = Vec::new();
        for i in 0..n {
            if source[i] != i {
                continue;
            }
            let (Some(key), Some(cache)) = (keys[i], cache) else {
                cold.push(i);
                continue;
            };
            let job = &jobs[i];
            let staged = Solver::new(job.algorithm)
                .options(job.options)
                .with_cache(cache);
            match staged.try_lookup(&job.problem, key) {
                Ok(Some(solution)) => {
                    counters.hits += 1;
                    outcomes[i] = "hit";
                    solved[i] = Some(solution);
                    continue;
                }
                Ok(None) => {}
                Err(_) => {
                    // Backend failure: degraded to an uncached cold
                    // solve — the same `bypass` provenance serve reports.
                    counters.errors += 1;
                    counters.misses += 1;
                    cold.push(i);
                    continue;
                }
            }
            counters.misses += 1;
            if let Some((solution, _)) =
                warm_start(cache, &job.problem, job.algorithm, &job.options)
            {
                counters.warm_starts += 1;
                outcomes[i] = "warm";
                solved[i] = Some(solution);
                to_insert.push(i);
                continue;
            }
            outcomes[i] = "miss";
            cold.push(i);
            to_insert.push(i);
        }

        // Cold jobs run under the normal two-regime batch scheduling.
        let problems: Vec<crate::spec::SpecProblem> =
            cold.iter().map(|&i| jobs[i].problem.build()).collect();
        let batch_jobs: Vec<crate::batch::BatchJob<'_, u64>> = cold
            .iter()
            .zip(&problems)
            .map(|(&i, p)| crate::batch::BatchJob {
                problem: p,
                algorithm: jobs[i].algorithm,
                options: jobs[i].options,
            })
            .collect();
        let (report, batch_errors) = self.solve_batch_isolated(&batch_jobs);
        // A panicking cold job leaves its representative unsolved; the
        // report indexes the *returned* results, so map positions back
        // through `cold` by the per-batch job index.
        let mut panic_msgs: HashMap<usize, String> = HashMap::new();
        for e in batch_errors {
            panic_msgs.insert(cold[e.job], e.message);
        }
        for r in report.results {
            solved[cold[r.job]] = Some(r.solution);
        }

        if let Some(cache) = cache {
            for &i in &to_insert {
                let (Some(key), Some(solution)) = (keys[i], &solved[i]) else {
                    continue;
                };
                if solution.timed_out() {
                    continue; // never store a partial table
                }
                let record = CachedSolution::of_solution(jobs[i].problem.family(), solution);
                if cache.try_put(key, record).is_err() {
                    counters.errors += 1;
                }
            }
        }

        // Assemble in submission order, replicating representatives;
        // jobs whose representative panicked become errors instead.
        let threshold = self.threshold();
        let mut results = Vec::with_capacity(n);
        let mut errors: Vec<BatchError> = Vec::new();
        let mut small_jobs = 0;
        let mut large_jobs = 0;
        for i in 0..n {
            let large = jobs[i].problem.cells() > threshold;
            // One consecutive event chain per job, in submission order —
            // the batch twin of the serve daemon's per-job stream.
            if let Some(tel) = self.telemetry_handle() {
                tel.emit(EventKind::Admitted { job: i as u64 });
                tel.emit(EventKind::Regime {
                    job: i as u64,
                    large,
                });
                tel.emit(EventKind::Cache {
                    job: i as u64,
                    outcome: outcomes[i],
                });
            }
            let Some(solution) = solved[source[i]].clone() else {
                if let Some(tel) = self.telemetry_handle() {
                    tel.emit(EventKind::Panic { job: i as u64 });
                }
                let message = panic_msgs
                    .get(&source[i])
                    .cloned()
                    .unwrap_or_else(|| "the solve panicked".into());
                errors.push(BatchError { job: i, message });
                continue;
            };
            if let Some(tel) = self.telemetry_handle() {
                tel.emit(EventKind::Completed {
                    job: i as u64,
                    wall_us: solution.wall.as_micros() as u64,
                    value: solution.value(),
                });
            }
            if large {
                large_jobs += 1;
            } else {
                small_jobs += 1;
            }
            results.push(BatchResult {
                job: i,
                solution,
                large,
            });
        }
        let stats = results
            .iter()
            .fold(OpStats::default(), |acc, r| acc.merge(r.solution.stats));
        let wall = t0.elapsed();
        let throughput = if results.is_empty() {
            0.0
        } else {
            results.len() as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE)
        };
        CachedBatchReport {
            results,
            wall,
            stats,
            throughput,
            small_jobs,
            large_jobs,
            cache: counters,
            errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecBackend;

    fn spec(dims: &[u64]) -> ProblemSpec {
        ProblemSpec::chain(dims.to_vec()).unwrap()
    }

    fn seq_opts() -> SolveOptions {
        SolveOptions::default().exec(ExecBackend::Sequential)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pardp-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_separates_payload_family_algorithm_and_knobs() {
        let base =
            ProblemKey::derive(&spec(&[30, 35, 15, 5]), Algorithm::Sublinear, &seq_opts()).unwrap();
        // Payload.
        assert_ne!(
            base,
            ProblemKey::derive(&spec(&[30, 35, 15, 6]), Algorithm::Sublinear, &seq_opts()).unwrap()
        );
        // Family with an identical payload slice.
        let poly = ProblemSpec::polygon(vec![30, 35, 15, 5]).unwrap();
        assert_ne!(
            base,
            ProblemKey::derive(&poly, Algorithm::Sublinear, &seq_opts()).unwrap()
        );
        // Algorithm.
        assert_ne!(
            base,
            ProblemKey::derive(&spec(&[30, 35, 15, 5]), Algorithm::Sequential, &seq_opts())
                .unwrap()
        );
        // An identity-relevant knob the algorithm supports.
        assert_ne!(
            base,
            ProblemKey::derive(
                &spec(&[30, 35, 15, 5]),
                Algorithm::Sublinear,
                &seq_opts().termination(Termination::Fixpoint)
            )
            .unwrap()
        );
    }

    #[test]
    fn key_ignores_backend_square_and_grain() {
        let s = spec(&[30, 35, 15, 5, 10]);
        for algo in [Algorithm::Sublinear, Algorithm::Wavefront] {
            let base = ProblemKey::derive(&s, algo, &seq_opts()).unwrap();
            assert_eq!(
                base,
                ProblemKey::derive(&s, algo, &SolveOptions::default()).unwrap(),
                "{algo}: exec must not be identity-relevant"
            );
            assert_eq!(
                base,
                ProblemKey::derive(
                    &s,
                    algo,
                    &seq_opts().square(crate::ops::SquareStrategy::Naive)
                )
                .unwrap(),
                "{algo}: square must not be identity-relevant"
            );
            assert_eq!(
                base,
                ProblemKey::derive(&s, algo, &seq_opts().wavefront_grain(1)).unwrap(),
                "{algo}: grain must not be identity-relevant"
            );
        }
    }

    #[test]
    fn knuth_and_traced_jobs_bypass() {
        let s = spec(&[30, 35, 15, 5]);
        assert!(ProblemKey::derive(&s, Algorithm::Knuth, &seq_opts()).is_none());
        assert!(
            ProblemKey::derive(&s, Algorithm::Sublinear, &seq_opts().record_trace(true)).is_none()
        );
        let cache = MemoryCache::new(4);
        let (sol, outcome) = Solver::new(Algorithm::Sublinear)
            .options(seq_opts().record_trace(true))
            .with_cache(&cache)
            .solve(&s);
        assert_eq!(outcome, CacheOutcome::Bypass);
        assert_eq!(sol.value(), 7875);
        assert!(cache.is_empty());
    }

    #[test]
    fn memory_cache_hit_is_bit_identical() {
        let s = spec(&[30, 35, 15, 5, 10, 20, 25]);
        let cache = MemoryCache::new(8);
        let solver = Solver::new(Algorithm::Sublinear).options(seq_opts());
        let staged = solver.with_cache(&cache);
        let (cold, o1) = staged.solve(&s);
        assert_eq!(o1, CacheOutcome::Miss);
        let (hit, o2) = staged.solve(&s);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(hit.value(), 15125);
        assert!(hit.w.table_eq(&cold.w));
        assert_eq!(hit.stats, cold.stats);
        assert_eq!(
            serde_json::to_string(&hit.trace).unwrap(),
            serde_json::to_string(&cold.trace).unwrap()
        );
    }

    #[test]
    fn warm_start_matches_cold_solve_for_every_family() {
        let specs = [
            spec(&[30, 35, 15, 5, 10, 20, 25, 12, 7]),
            ProblemSpec::obst(vec![4, 2, 6, 3, 1, 5, 2], vec![1, 3, 2, 1, 2, 4, 1, 2]).unwrap(),
            ProblemSpec::polygon(vec![3, 7, 4, 5, 2, 6, 4, 8]).unwrap(),
            ProblemSpec::merge(vec![5, 2, 7, 1, 4, 3, 6, 2]).unwrap(),
        ];
        for s in specs {
            for algo in [
                Algorithm::Sequential,
                Algorithm::Wavefront,
                Algorithm::Sublinear,
                Algorithm::Reduced,
            ] {
                let cache = MemoryCache::new(8);
                let staged = Solver::new(algo).options(seq_opts()).with_cache(&cache);
                let prefix = s.prefix(s.n() - 2).unwrap();
                let (_, po) = staged.solve(&prefix);
                assert_eq!(po, CacheOutcome::Miss);
                let (warm, outcome) = staged.solve(&s);
                assert_eq!(
                    outcome,
                    CacheOutcome::Warm { seed_n: s.n() - 2 },
                    "{} {algo}",
                    s.family()
                );
                let cold = Solver::new(algo).options(seq_opts()).solve(&s.build());
                assert_eq!(warm.value(), cold.value(), "{} {algo}", s.family());
                assert!(warm.w.table_eq(&cold.w), "{} {algo}", s.family());
                if matches!(algo, Algorithm::Sequential | Algorithm::Wavefront) {
                    // Direct warm starts are fully identical, trace included.
                    assert_eq!(warm.trace, cold.trace);
                    assert_eq!(warm.stats, cold.stats);
                } else {
                    // Iterative warm starts do strictly less pebble work.
                    assert!(warm.stats.candidates <= cold.stats.candidates);
                }
                // The warm solution was inserted: next solve hits.
                let (_, o3) = staged.solve(&s);
                assert_eq!(o3, CacheOutcome::Hit);
            }
        }
    }

    #[test]
    fn lru_evicts_stalest_entry_only() {
        let cache = MemoryCache::new(2);
        let specs = [spec(&[2, 3, 4]), spec(&[5, 6, 7]), spec(&[8, 9, 10])];
        let staged = Solver::new(Algorithm::Sequential)
            .options(seq_opts())
            .with_cache(&cache);
        let (a, _) = staged.solve(&specs[0]);
        staged.solve(&specs[1]).0.value();
        // Touch the first entry so the second is stalest.
        assert_eq!(staged.solve(&specs[0]).1, CacheOutcome::Hit);
        staged.solve(&specs[2]).0.value();
        assert_eq!(cache.len(), 2);
        let (a2, o) = staged.solve(&specs[0]);
        assert_eq!(o, CacheOutcome::Hit);
        assert!(a2.w.table_eq(&a.w));
        assert_eq!(staged.solve(&specs[1]).1, CacheOutcome::Miss);
    }

    #[test]
    fn file_store_survives_reopen_and_skips_torn_tail() {
        let dir = temp_dir("reopen");
        let s = spec(&[30, 35, 15, 5, 10, 20, 25]);
        let solver = Solver::new(Algorithm::Reduced).options(seq_opts());
        {
            let store = FileStore::open(&dir).unwrap();
            let (sol, o) = solver.with_cache(&store).solve(&s);
            assert_eq!(o, CacheOutcome::Miss);
            assert_eq!(sol.value(), 15125);
            assert_eq!(store.len(), 1);
        }
        // Simulate a torn append: garbage after the valid record.
        let data = FileStore::data_path(&dir);
        {
            let mut f = OpenOptions::new().append(true).open(&data).unwrap();
            f.write_all(b"PARDPST1 torn half-written record").unwrap();
        }
        {
            let store = FileStore::open_existing(&dir).unwrap();
            assert_eq!(store.len(), 1);
            assert!(store.skipped_bytes() > 0);
            let (hit, o) = solver.with_cache(&store).solve(&s);
            assert_eq!(o, CacheOutcome::Hit);
            assert_eq!(hit.value(), 15125);
            // The next put overwrites the torn tail cleanly.
            let s2 = spec(&[5, 10, 3, 12, 5]);
            assert_eq!(solver.with_cache(&store).solve(&s2).1, CacheOutcome::Miss);
        }
        let store = FileStore::open_existing(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.skipped_bytes(), 0);
        let st = store.stat().unwrap();
        assert_eq!(st.records, 2);
        assert_eq!(st.families, vec![("chain".to_string(), 2)]);
        assert_eq!(store.wipe().unwrap(), 2);
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_existing_rejects_missing_directory() {
        let err = FileStore::open_existing("/nonexistent/pardp-cache").unwrap_err();
        assert!(err.0.contains("does not exist"), "{err}");
    }

    #[test]
    fn batch_dedups_and_shares_the_cache() {
        let jobs: Vec<ResolvedJob> = [
            &[30u64, 35, 15, 5, 10, 20, 25][..],
            &[30, 35, 15, 5, 10, 20, 25],
            &[5, 10, 3, 12, 5],
            &[30, 35, 15, 5, 10, 20, 25],
        ]
        .iter()
        .map(|dims| ResolvedJob {
            problem: spec(dims),
            algorithm: Algorithm::Sublinear,
            options: seq_opts(),
        })
        .collect();
        let cache = MemoryCache::new(8);
        let solver = BatchSolver::new().exec(ExecBackend::Sequential);
        let report = solver.solve_resolved(&jobs, Some(&cache));
        assert_eq!(report.cache.deduped, 2);
        assert_eq!(report.cache.hits, 0);
        assert_eq!(report.cache.misses, 2);
        assert_eq!(report.results.len(), 4);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.job, i);
            let cold = Solver::new(Algorithm::Sublinear)
                .options(seq_opts())
                .solve(&jobs[i].problem.build());
            assert_eq!(r.solution.value(), cold.value(), "job {i}");
            assert!(r.solution.w.table_eq(&cold.w), "job {i}");
            assert_eq!(r.solution.stats, cold.stats, "job {i}");
        }
        // Second run over the same jobs: all representatives hit.
        let again = solver.solve_resolved(&jobs, Some(&cache));
        assert_eq!(again.cache.hits, 2);
        assert_eq!(again.cache.misses, 0);
        assert_eq!(again.stats, report.stats);
        // Without a cache, dedup still applies.
        let nocache = solver.solve_resolved(&jobs, None);
        assert_eq!(nocache.cache.deduped, 2);
        assert_eq!(nocache.cache.hits + nocache.cache.misses, 0);
        assert_eq!(nocache.stats, report.stats);
    }

    #[test]
    fn injected_torn_write_corrupts_mid_file_and_costs_only_its_record() {
        use crate::fault::{FaultPlan, FaultSite};

        let dir = temp_dir("torn-write");
        // The second append is torn: half a record lands *between* two
        // valid ones, so the next open must skip a corrupt page in the
        // middle of the file, not just a garbage tail.
        let plan = Arc::new(FaultPlan::new().fail(FaultSite::TornWrite, &[1]));
        let solver = Solver::new(Algorithm::Reduced).options(seq_opts());
        let s0 = spec(&[30, 35, 15, 5]);
        let s1 = spec(&[5, 10, 3, 12, 5]);
        let s2 = spec(&[30, 35, 15, 5, 10]);
        {
            let store = FileStore::open(&dir).unwrap().with_fault_plan(plan);
            let staged = solver.with_cache(&store);
            assert_eq!(staged.solve(&s0).1, CacheOutcome::Miss);
            // The torn append fails: the job degrades to Bypass but is
            // still answered, and the broken record is never indexed.
            let (sol, outcome) = staged.solve(&s1);
            assert_eq!(outcome, CacheOutcome::Bypass);
            assert_eq!(sol.value(), solver.solve(&s1.build()).value());
            // s2 extends s0, so it warm-starts from the cached prefix —
            // and its insert lands cleanly *after* the torn page.
            assert_eq!(staged.solve(&s2).1, CacheOutcome::Warm { seed_n: 3 });
            assert_eq!(store.len(), 2);
        }
        let store = FileStore::open_existing(&dir).unwrap();
        assert_eq!(store.len(), 2, "the valid records bracket the tear");
        assert!(store.skipped_bytes() > 0, "the torn page is accounted");
        let staged = solver.with_cache(&store);
        assert_eq!(staged.solve(&s0).1, CacheOutcome::Hit);
        assert_eq!(staged.solve(&s2).1, CacheOutcome::Hit);
        // The torn record's job can be stored cleanly now (no plan).
        assert_eq!(staged.solve(&s1).1, CacheOutcome::Miss);
        assert_eq!(staged.solve(&s1).1, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resilient_cache_disables_the_backend_after_its_budget() {
        use crate::fault::{FaultPlan, FaultSite, FaultyCache};

        let plan = Arc::new(FaultPlan::new().fail(FaultSite::StoreRead, &[1, 2]));
        let faulty = Arc::new(FaultyCache::new(
            Arc::new(MemoryCache::new(8)),
            Arc::clone(&plan),
        ));
        let resilient = ResilientCache::with_budget(faulty, 2);
        let key =
            ProblemKey::derive(&spec(&[30, 35, 15, 5]), Algorithm::Sublinear, &seq_opts()).unwrap();
        // Occurrence 0 is healthy, 1 and 2 fail — spending the budget.
        assert!(resilient.try_get(key).unwrap().is_none());
        assert!(resilient.try_get(key).is_err());
        assert_eq!(resilient.errors(), 1);
        assert!(!resilient.is_disabled());
        assert!(resilient.try_get(key).is_err());
        assert_eq!(resilient.errors(), 2);
        assert!(resilient.is_disabled());
        // Disabled: every call short-circuits without touching the
        // backend — the error count freezes and no occurrence is spent.
        assert!(resilient.try_get(key).is_err());
        assert!(resilient.get(key).is_none());
        assert_eq!(resilient.len(), 0);
        assert_eq!(resilient.errors(), 2);
        assert_eq!(plan.occurrences(FaultSite::StoreRead), 3);
    }

    #[test]
    fn staged_solve_degrades_to_cold_solves_on_store_errors() {
        use crate::fault::{FaultPlan, FaultSite, FaultyCache};

        let plan = Arc::new(
            FaultPlan::new()
                .fail(FaultSite::StoreRead, &[1])
                .fail(FaultSite::StoreWrite, &[1]),
        );
        let faulty = Arc::new(FaultyCache::new(
            Arc::new(MemoryCache::new(8)),
            Arc::clone(&plan),
        ));
        let resilient = ResilientCache::new(faulty);
        let solver = Solver::new(Algorithm::Sublinear).options(seq_opts());
        let staged = solver.with_cache(&resilient);
        // n = 2 specs: no warm-start prefixes exist, so each solve
        // probes exactly one StoreRead (and at most one StoreWrite)
        // occurrence and the explicit schedule indexes by solve.
        let s0 = spec(&[30, 35, 15]);
        let s1 = spec(&[5, 10, 3]);

        // Healthy miss + insert.
        let (cold, o) = staged.solve(&s0);
        assert_eq!(o, CacheOutcome::Miss);
        // Lookup error: the solve is cold but correct, and the insert
        // is skipped (one failing disk costs one error, not two).
        let (sol, o) = staged.solve(&s0);
        assert_eq!(o, CacheOutcome::Bypass);
        assert_eq!(sol.value(), cold.value());
        assert!(sol.w.table_eq(&cold.w));
        // Insert error: the answer is unaffected.
        let (sol, o) = staged.solve(&s1);
        assert_eq!(o, CacheOutcome::Bypass);
        assert_eq!(sol.value(), solver.solve(&s1.build()).value());
        // The backend recovers (occurrences past the schedule): the
        // record stored before the errors still hits bit-identically.
        let (hit, o) = staged.solve(&s0);
        assert_eq!(o, CacheOutcome::Hit);
        assert!(hit.w.table_eq(&cold.w));
        assert_eq!(resilient.errors(), 2);
        assert!(!resilient.is_disabled());
    }
}
