//! The unified solver façade: one entry point, one options struct, one
//! result type for **all six** algorithms on the paper's spectrum.
//!
//! The paper positions its §2/§5 algorithms between the work-optimal
//! sequential/wavefront DPs and Rytter's `O(log² n)` scheme (§1). This
//! module exposes that whole spectrum behind a single API:
//!
//! ```
//! use pardp_core::prelude::*;
//!
//! let dims = vec![30u64, 35, 15, 5, 10, 20, 25];
//! let problem = FnProblem::new(
//!     dims.len() - 1,
//!     |_| 0u64,
//!     move |i, k, j| dims[i] * dims[k] * dims[j],
//! );
//! let solution = Solver::new(Algorithm::Sublinear)
//!     .options(SolveOptions::default().exec(ExecBackend::Sequential))
//!     .solve(&problem);
//! assert_eq!(solution.value(), 15125);
//! let tree = solution.tree(&problem).unwrap();
//! assert_eq!(tree.n_leaves(), 6);
//! ```
//!
//! Every algorithm returns the same [`Solution`]: the goal value, the full
//! `w` table, a [`SolveTrace`] (empty-but-well-formed for the
//! non-iterative paths), aggregate [`OpStats`], the wall-clock time, and
//! lazy optimal-tree reconstruction via [`Solution::tree`].
//!
//! ## Registry
//!
//! [`Algorithm`] doubles as the registry: [`Algorithm::ALL`] enumerates
//! the spectrum, [`Algorithm::from_str`](str::parse) parses user input
//! (with an error that lists every valid name), and the capability flags
//! ([`Algorithm::is_parallel`], [`Algorithm::supports_tile`], …) let
//! front ends validate knobs without hard-coding per-algorithm tables.
//!
//! ## Migration from the per-module entry points
//!
//! The free functions remain as thin, stable entry points — the façade
//! produces bit-identical tables (property-tested in
//! `crates/core/tests/proptest_facade.rs`):
//!
//! | old entry point | façade call |
//! |---|---|
//! | `seq::solve_sequential(p)` | `Solver::new(Algorithm::Sequential).solve(p)` |
//! | `seq::solve_knuth(p)` | `Solver::new(Algorithm::Knuth).solve(p)` |
//! | `wavefront::solve_wavefront(p, &WavefrontConfig { exec, parallel_threshold })` | `Solver::new(Algorithm::Wavefront).options(SolveOptions::default().exec(exec).wavefront_grain(g)).solve(p)` |
//! | `sublinear::solve_sublinear(p, &SolverConfig { exec, termination, .. })` | `Solver::new(Algorithm::Sublinear).options(SolveOptions::default().exec(exec).termination(t)).solve(p)` |
//! | `reduced::solve_reduced(p, &ReducedConfig { band, windowed_pebble, .. })` | `Solver::new(Algorithm::Reduced).options(SolveOptions::default().band(b).windowed_pebble(w)).solve(p)` |
//! | `rytter::solve_rytter(p, &RytterConfig::default())` | `Solver::new(Algorithm::Rytter).solve(p)` (the exact fixpoint stop stays on; a full-schedule run still needs `RytterConfig` directly) |
//!
//! The legacy config structs convert losslessly: [`SolveOptions`] carries
//! the union of their knobs and [`SolveOptions::sublinear_config`] /
//! [`SolveOptions::reduced_config`] / [`SolveOptions::rytter_config`] /
//! [`SolveOptions::wavefront_config`] produce the per-module structs the
//! façade itself dispatches through.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

use crate::exec::ExecBackend;
use crate::fault::CancelToken;
use crate::ops::{OpStats, SquareStrategy};
use crate::problem::DpProblem;
use crate::reconstruct::{reconstruct_root, ParenTree};
use crate::reduced::{solve_reduced_cancel, ReducedConfig};
use crate::rytter::{solve_rytter_cancel, RytterConfig};
use crate::seq::{solve_knuth, solve_sequential};
use crate::sublinear::{solve_sublinear_cancel, SolverConfig};
use crate::tables::WTable;
use crate::trace::{SolveTrace, StopReason, Termination};
use crate::wavefront::{solve_wavefront_cancel, WavefrontConfig};
use crate::weight::Weight;

/// Every solver on the paper's spectrum (§1), slowest-sequential to
/// most-parallel. The enum is the registry: parse names with
/// [`str::parse`], enumerate with [`Algorithm::ALL`], and query
/// capabilities with the `supports_*` / `is_*` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The classic `O(n³)` sequential dynamic program \[1\].
    Sequential,
    /// The Knuth–Yao `O(n²)` speedup — **only** valid on instances
    /// satisfying the quadrangle inequality (optimal BSTs, not arbitrary
    /// matrix chains); the façade runs it as asked and leaves validity to
    /// the caller, exactly like [`solve_knuth`].
    Knuth,
    /// The work-optimal anti-diagonal parallel DP \[10\].
    Wavefront,
    /// The paper's §2 algorithm: `O(√n log n)` time, `O(n⁵/log n)`
    /// processors, dense tables.
    Sublinear,
    /// The paper's §5 reduced-processor variant: banded tables and the
    /// windowed pebble, `O(n³·⁵/log n)` processors.
    Reduced,
    /// Rytter's baseline \[8\]: `O(log² n)` time, `O(n⁶/log n)` processors.
    Rytter,
}

impl Algorithm {
    /// The whole spectrum, in the order of the paper's comparison table.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Sequential,
        Algorithm::Knuth,
        Algorithm::Wavefront,
        Algorithm::Sublinear,
        Algorithm::Reduced,
        Algorithm::Rytter,
    ];

    /// Canonical name — round-trips through [`str::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Sequential => "sequential",
            Algorithm::Knuth => "knuth",
            Algorithm::Wavefront => "wavefront",
            Algorithm::Sublinear => "sublinear",
            Algorithm::Reduced => "reduced",
            Algorithm::Rytter => "rytter",
        }
    }

    /// Accepted aliases (the canonical name is always accepted too).
    pub fn aliases(&self) -> &'static [&'static str] {
        match self {
            Algorithm::Sequential => &["seq"],
            Algorithm::Knuth => &[],
            Algorithm::Wavefront => &["wave"],
            Algorithm::Sublinear => &["paper"],
            Algorithm::Reduced => &[],
            Algorithm::Rytter => &[],
        }
    }

    /// One-line description for listings and error messages.
    pub fn description(&self) -> &'static str {
        match self {
            Algorithm::Sequential => "classic O(n^3) sequential DP",
            Algorithm::Knuth => "Knuth-Yao O(n^2) DP (quadrangle-inequality instances only)",
            Algorithm::Wavefront => "work-optimal anti-diagonal parallel DP",
            Algorithm::Sublinear => "the paper's S2 algorithm: O(sqrt(n) log n) time, dense tables",
            Algorithm::Reduced => "the paper's S5 variant: banded tables + windowed pebble",
            Algorithm::Rytter => "Rytter's O(log^2 n) full-composition baseline",
        }
    }

    /// `time × processors` on the paper's comparison spectrum (§1).
    pub fn complexity(&self) -> &'static str {
        match self {
            Algorithm::Sequential => "O(n^3) x 1",
            Algorithm::Knuth => "O(n^2) x 1",
            Algorithm::Wavefront => "O(n) x O(n^2)",
            Algorithm::Sublinear => "O(sqrt(n) log n) x O(n^5/log n)",
            Algorithm::Reduced => "O(sqrt(n) log n) x O(n^3.5/log n)",
            Algorithm::Rytter => "O(log^2 n) x O(n^6/log n)",
        }
    }

    /// Whether the algorithm runs data-parallel passes on an
    /// [`ExecBackend`] (i.e. [`SolveOptions::exec`] has any effect).
    pub fn is_parallel(&self) -> bool {
        !matches!(self, Algorithm::Sequential | Algorithm::Knuth)
    }

    /// Whether the `a-square` kernel selection ([`SolveOptions::square`])
    /// applies — the algorithms that iterate (activate, square, pebble).
    pub fn supports_tile(&self) -> bool {
        self.is_iterative()
    }

    /// Whether the algorithm iterates the (activate, square, pebble)
    /// operations and therefore produces a non-empty per-iteration
    /// [`SolveTrace`] under [`SolveOptions::record_trace`].
    pub fn is_iterative(&self) -> bool {
        matches!(
            self,
            Algorithm::Sublinear | Algorithm::Reduced | Algorithm::Rytter
        )
    }

    /// Whether the stopping rule ([`SolveOptions::termination`]) affects
    /// the run. The §5 solver is excluded: its window argument relies on
    /// the fixed `2⌈√n⌉` schedule.
    pub fn supports_termination(&self) -> bool {
        matches!(self, Algorithm::Sublinear | Algorithm::Rytter)
    }

    /// Whether the §5 band-width override ([`SolveOptions::band`]) and
    /// the windowed-pebble toggle ([`SolveOptions::windowed_pebble`])
    /// apply.
    pub fn supports_band(&self) -> bool {
        matches!(self, Algorithm::Reduced)
    }

    /// Whether the wavefront fork-join grain
    /// ([`SolveOptions::wavefront_grain`]) applies.
    pub fn supports_grain(&self) -> bool {
        matches!(self, Algorithm::Wavefront)
    }

    /// Whether convergence-aware scheduling
    /// ([`SolveOptions::skip_clean_rows`]) applies.
    pub fn supports_skip(&self) -> bool {
        matches!(self, Algorithm::Sublinear | Algorithm::Reduced)
    }

    /// `"name — description"` lines for every algorithm, the body of the
    /// "unknown algorithm" error and of CLI listings.
    pub fn listing() -> String {
        let mut s = String::new();
        for a in Algorithm::ALL {
            s.push_str(&format!("  {:<10} — {}\n", a.name(), a.description()));
        }
        s
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The names of all algorithms satisfying `pred`, `" | "`-separated —
/// the "pick one of" tail of capability errors.
fn names_where(pred: impl Fn(Algorithm) -> bool) -> String {
    Algorithm::ALL
        .iter()
        .copied()
        .filter(|&a| pred(a))
        .map(|a| a.name())
        .collect::<Vec<_>>()
        .join(" | ")
}

/// A named [`SolveOptions`] knob — the unit of targeted validation.
///
/// Front ends map these to their own flag names (the CLI maps
/// [`SolveKnob::Exec`] to `--backend`, the JSONL job spec maps
/// [`SolveKnob::Band`] to `"band"`, …) and route every capability
/// rejection through [`SolveOptions::validate_knob`], so the rules live
/// once behind the façade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveKnob {
    /// [`SolveOptions::exec`] — the execution backend.
    Exec,
    /// [`SolveOptions::square`] — the `a-square` kernel.
    Square,
    /// [`SolveOptions::termination`] — the stopping rule.
    Termination,
    /// [`SolveOptions::record_trace`] — per-iteration trace records.
    RecordTrace,
    /// [`SolveOptions::skip_clean_rows`] — convergence-aware scheduling.
    SkipCleanRows,
    /// [`SolveOptions::band`] — the §5 band-width override.
    Band,
    /// [`SolveOptions::windowed_pebble`] — the §5 windowed pebble.
    WindowedPebble,
    /// [`SolveOptions::wavefront_grain`] — the wavefront fork-join grain.
    WavefrontGrain,
}

impl SolveKnob {
    /// Every knob, in [`SolveOptions`] field order.
    pub const ALL: [SolveKnob; 8] = [
        SolveKnob::Exec,
        SolveKnob::Square,
        SolveKnob::Termination,
        SolveKnob::RecordTrace,
        SolveKnob::SkipCleanRows,
        SolveKnob::Band,
        SolveKnob::WindowedPebble,
        SolveKnob::WavefrontGrain,
    ];

    /// The [`SolveOptions`] field name this knob denotes.
    pub fn field(&self) -> &'static str {
        match self {
            SolveKnob::Exec => "exec",
            SolveKnob::Square => "square",
            SolveKnob::Termination => "termination",
            SolveKnob::RecordTrace => "record_trace",
            SolveKnob::SkipCleanRows => "skip_clean_rows",
            SolveKnob::Band => "band",
            SolveKnob::WindowedPebble => "windowed_pebble",
            SolveKnob::WavefrontGrain => "wavefront_grain",
        }
    }
}

/// A rejected [`SolveOptions`] knob: which knob, and a pointed message.
///
/// [`OptionsError::message`] deliberately starts mid-sentence ("has no
/// effect on 'knuth' …") so front ends can prefix their own name for the
/// knob: the CLI renders `--backend {message}`, the job spec renders
/// `"band" {message}`, and [`fmt::Display`] renders the core field name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionsError {
    /// The offending knob.
    pub knob: SolveKnob,
    /// The message body (no leading knob name; see the type docs).
    pub message: String,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` {}", self.knob.field(), self.message)
    }
}

impl std::error::Error for OptionsError {}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        for a in Algorithm::ALL {
            if s == a.name() || a.aliases().contains(&s) {
                return Ok(a);
            }
        }
        Err(format!(
            "unknown algorithm '{s}'; valid algorithms:\n{}",
            Algorithm::listing()
        ))
    }
}

/// Every shared solver knob, in one builder. Each algorithm reads the
/// subset it understands (see the [`Algorithm`] capability flags) and
/// ignores the rest, so one `SolveOptions` can drive a sweep across the
/// whole spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Execution backend for the data-parallel passes (parallel
    /// algorithms only).
    pub exec: ExecBackend,
    /// `a-square` kernel of the iterative algorithms; every strategy
    /// produces bit-identical tables.
    pub square: SquareStrategy,
    /// Stopping rule for the §2 solver (it honours all three rules).
    /// The other iterative algorithms keep their own exact defaults:
    /// Rytter always stops at its fixpoint (running past it is a no-op,
    /// so the stop is exact — use [`RytterConfig`] directly to force a
    /// full-schedule run for work accounting), and the §5 solver always
    /// runs its fixed schedule (its window argument requires it).
    pub termination: Termination,
    /// Keep per-iteration records in the trace (iterative algorithms).
    pub record_trace: bool,
    /// Convergence-aware scheduling: copy forward square rows / pebble
    /// pairs whose inputs did not change (§2 dense and §5 banded solvers;
    /// exact under every configuration).
    pub skip_clean_rows: bool,
    /// §5 band-width override; `None` uses the paper's `2⌈√n⌉`.
    pub band: Option<usize>,
    /// Apply the §5 size window to the pebble step (the E8 ablation
    /// point; reduced solver only).
    pub windowed_pebble: bool,
    /// Wavefront fork-join grain: diagonals with fewer candidate
    /// evaluations than this run sequentially.
    pub wavefront_grain: usize,
    /// Cooperative deadline: the iterative solvers check it once per
    /// iteration and the wavefront once per diagonal, stopping with
    /// [`StopReason::DeadlineExceeded`] (a **partial** table — see
    /// [`Solution::timed_out`]) once it passes. The direct sequential
    /// solvers do not check (they do not iterate; bound them by problem
    /// size instead). `None` (the default) costs nothing. Unlike the
    /// other knobs, a deadline is execution policy, not part of the
    /// problem: it is accepted by every algorithm, excluded from
    /// [`validate`](SolveOptions::validate), and ignored by the solution
    /// store's cache key.
    pub deadline: Option<Instant>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            exec: ExecBackend::Parallel,
            square: SquareStrategy::Auto,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            skip_clean_rows: true,
            band: None,
            windowed_pebble: true,
            wavefront_grain: WavefrontConfig::default().parallel_threshold,
            deadline: None,
        }
    }
}

impl SolveOptions {
    /// Set the execution backend.
    pub fn exec(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// Set the `a-square` kernel.
    pub fn square(mut self, square: SquareStrategy) -> Self {
        self.square = square;
        self
    }

    /// Set the stopping rule.
    pub fn termination(mut self, termination: Termination) -> Self {
        self.termination = termination;
        self
    }

    /// Keep per-iteration records in the trace.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Toggle convergence-aware scheduling.
    pub fn skip_clean_rows(mut self, skip: bool) -> Self {
        self.skip_clean_rows = skip;
        self
    }

    /// Override the §5 band width (`None` = the paper's `2⌈√n⌉`).
    pub fn band(mut self, band: Option<usize>) -> Self {
        self.band = band;
        self
    }

    /// Toggle the §5 windowed pebble.
    pub fn windowed_pebble(mut self, windowed: bool) -> Self {
        self.windowed_pebble = windowed;
        self
    }

    /// Set the wavefront fork-join grain.
    pub fn wavefront_grain(mut self, grain: usize) -> Self {
        self.wavefront_grain = grain;
        self
    }

    /// Set the cooperative deadline (`None` never cancels).
    pub fn deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The [`CancelToken`] these options denote.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken::new(self.deadline)
    }

    /// Check one named knob against `algorithm`'s capability flags,
    /// regardless of the knob's current value — the gate for knobs a
    /// user set *explicitly* (a CLI flag, a JSONL job-spec field), where
    /// even restating the default on an incapable algorithm deserves a
    /// pointed rejection rather than silence.
    ///
    /// Value validity is checked too where it exists (the degenerate
    /// zero-edge [`SquareStrategy::Tiled`] tile).
    pub fn validate_knob(&self, algorithm: Algorithm, knob: SolveKnob) -> Result<(), OptionsError> {
        let err = |message: String| Err(OptionsError { knob, message });
        let no_effect = |why: &str, pick: String| {
            err(format!(
                "has no effect on '{algorithm}' ({}): {why}; drop it or pick one of: {pick}",
                algorithm.description()
            ))
        };
        match knob {
            SolveKnob::Exec => {
                if !algorithm.is_parallel() {
                    return no_effect(
                        "it runs no data-parallel passes",
                        names_where(|a| a.is_parallel()),
                    );
                }
            }
            SolveKnob::Square => {
                if self.square == SquareStrategy::Tiled(0) {
                    return err("requests the degenerate tile edge 0; write auto for the \
                         built-in choice, or any positive edge"
                        .into());
                }
                if !algorithm.supports_tile() {
                    return no_effect(
                        "it has no a-square kernel",
                        names_where(|a| a.supports_tile()),
                    );
                }
            }
            SolveKnob::Termination => {
                if !algorithm.supports_termination() {
                    return no_effect(
                        "it does not read a stopping rule (the §5 solver needs its \
                         fixed schedule; the direct algorithms do not iterate)",
                        names_where(|a| a.supports_termination()),
                    );
                }
            }
            SolveKnob::RecordTrace => {
                if !algorithm.is_iterative() {
                    return no_effect(
                        "it does not iterate (activate, square, pebble)",
                        names_where(|a| a.is_iterative()),
                    );
                }
            }
            SolveKnob::SkipCleanRows => {
                if !algorithm.supports_skip() {
                    return no_effect(
                        "convergence-aware scheduling applies to the §2/§5 solvers only",
                        names_where(|a| a.supports_skip()),
                    );
                }
            }
            SolveKnob::Band => {
                if let Some(0) = self.band {
                    return err("requests a zero band width; drop it for the paper's \
                         2*ceil(sqrt(n)) or give a positive width"
                        .into());
                }
                if !algorithm.supports_band() {
                    return no_effect(
                        "only the banded §5 solver reads a band width",
                        names_where(|a| a.supports_band()),
                    );
                }
            }
            SolveKnob::WindowedPebble => {
                if !algorithm.supports_band() {
                    return no_effect(
                        "only the §5 solver has a windowed pebble",
                        names_where(|a| a.supports_band()),
                    );
                }
            }
            SolveKnob::WavefrontGrain => {
                if !algorithm.supports_grain() {
                    return no_effect(
                        "only the wavefront solver reads a fork-join grain",
                        names_where(|a| a.supports_grain()),
                    );
                }
            }
        }
        Ok(())
    }

    /// Validate the whole option set against `algorithm`: every knob
    /// that deviates from [`SolveOptions::default`] must be one the
    /// algorithm actually reads (per the [`Algorithm`] capability
    /// flags), and value validity (zero tile edge, zero band) is checked
    /// unconditionally.
    ///
    /// [`ExecBackend::Sequential`] is always accepted: it is the
    /// meaning-free baseline every algorithm can honour (and the batch
    /// scheduler's own forced choice for small jobs). To reject *any*
    /// explicit backend on a sequential algorithm — the CLI's behaviour
    /// for `--backend` — use [`SolveOptions::validate_knob`] with
    /// [`SolveKnob::Exec`] instead.
    ///
    /// This is deliberately strict: options an algorithm would silently
    /// ignore are *errors* here, so admission gates (the serve daemon,
    /// programmatic front ends) reject misconfigured jobs instead of
    /// running them under different knobs than the caller believes.
    pub fn validate(&self, algorithm: Algorithm) -> Result<(), OptionsError> {
        let d = SolveOptions::default();
        // Value validity first, independent of defaults.
        if self.square == SquareStrategy::Tiled(0) {
            self.validate_knob(algorithm, SolveKnob::Square)?;
        }
        if self.band == Some(0) {
            self.validate_knob(algorithm, SolveKnob::Band)?;
        }
        if self.exec != d.exec && self.exec != ExecBackend::Sequential {
            self.validate_knob(algorithm, SolveKnob::Exec)?;
        }
        if self.square != d.square {
            self.validate_knob(algorithm, SolveKnob::Square)?;
        }
        if self.termination != d.termination {
            self.validate_knob(algorithm, SolveKnob::Termination)?;
        }
        if self.record_trace != d.record_trace {
            self.validate_knob(algorithm, SolveKnob::RecordTrace)?;
        }
        if self.skip_clean_rows != d.skip_clean_rows {
            self.validate_knob(algorithm, SolveKnob::SkipCleanRows)?;
        }
        if self.band.is_some() {
            self.validate_knob(algorithm, SolveKnob::Band)?;
        }
        if self.windowed_pebble != d.windowed_pebble {
            self.validate_knob(algorithm, SolveKnob::WindowedPebble)?;
        }
        if self.wavefront_grain != d.wavefront_grain {
            self.validate_knob(algorithm, SolveKnob::WavefrontGrain)?;
        }
        Ok(())
    }

    /// The [`SolverConfig`] these options denote for the §2 solver.
    pub fn sublinear_config(&self) -> SolverConfig {
        SolverConfig {
            exec: self.exec,
            termination: self.termination,
            record_trace: self.record_trace,
            square: self.square,
            skip_clean_rows: self.skip_clean_rows,
        }
    }

    /// The [`ReducedConfig`] these options denote for the §5 solver.
    pub fn reduced_config(&self) -> ReducedConfig {
        ReducedConfig {
            exec: self.exec,
            record_trace: self.record_trace,
            windowed_pebble: self.windowed_pebble,
            band: self.band,
            square: self.square,
            skip_clean_rows: self.skip_clean_rows,
        }
    }

    /// The [`RytterConfig`] these options denote. The fixpoint stop stays
    /// on — Rytter's legacy default — under every [`Termination`]: the
    /// stop is exact (iterating past a fixpoint is a no-op), so the rule
    /// choice cannot change the result. A full-schedule Rytter run (for
    /// work accounting) needs [`RytterConfig`] directly.
    pub fn rytter_config(&self) -> RytterConfig {
        RytterConfig {
            exec: self.exec,
            record_trace: self.record_trace,
            fixpoint_stop: true,
            square: self.square,
        }
    }

    /// The [`WavefrontConfig`] these options denote.
    pub fn wavefront_config(&self) -> WavefrontConfig {
        WavefrontConfig {
            exec: self.exec,
            parallel_threshold: self.wavefront_grain,
        }
    }
}

/// Result of any solver run: the full `w` table plus uniform diagnostics.
///
/// Every [`Algorithm`] produces one of these — the iterative solvers fill
/// the trace and statistics from their (activate, square, pebble) loops;
/// the direct solvers (sequential, Knuth, wavefront) attach an
/// empty-but-well-formed trace ([`SolveTrace::direct`]) so downstream
/// reporting code needs no per-algorithm cases.
#[derive(Debug, Clone)]
pub struct Solution<W> {
    /// Which algorithm produced this solution.
    pub algorithm: Algorithm,
    /// The computed `w'` table; `w.root()` is `c(0, n)`.
    pub w: WTable<W>,
    /// Run diagnostics (iteration counts, stop reason, per-iteration
    /// records when recording was enabled; see [`SolveTrace`]).
    pub trace: SolveTrace,
    /// Aggregate operation statistics over the whole run: candidates
    /// examined, improved-cell stores, and whether anything changed —
    /// summed across all ops and iterations. Zero for the direct solvers,
    /// which do not instrument their loops.
    pub stats: OpStats,
    /// Wall-clock time of the solve call.
    pub wall: Duration,
}

impl<W: Weight> Solution<W> {
    /// The goal value `c(0, n)`.
    pub fn value(&self) -> W {
        self.w.root()
    }

    /// The solved table.
    pub fn table(&self) -> &WTable<W> {
        &self.w
    }

    /// Whether the solve was cancelled by its deadline
    /// ([`SolveOptions::deadline`]). A timed-out solution carries a
    /// **partial** table: its value must not be reported, compared, or
    /// cached — the serving layers turn it into a `timeout` error line
    /// and skip the solution store.
    pub fn timed_out(&self) -> bool {
        self.trace.stop == StopReason::DeadlineExceeded
    }

    /// Work/Span summary of this solve under the parallel cost model:
    /// work is [`SolveTrace::total_candidates`], span the critical-path
    /// estimate of [`SolveTrace::span_estimate`]. Both are zero for the
    /// direct solvers, which do not instrument their loops. See the
    /// Work/Span discussion in the [`crate::trace`] module docs.
    pub fn work_span(&self) -> crate::telemetry::WorkSpan {
        crate::telemetry::WorkSpan::of_trace(&self.trace)
    }

    /// Reconstruct the optimal parenthesization tree lazily, by walking
    /// the solved table with [`reconstruct_root`]. The problem is a
    /// parameter (not captured at solve time) so solutions stay cheap to
    /// clone and ship across threads.
    pub fn tree<P: DpProblem<W> + ?Sized>(&self, problem: &P) -> Result<ParenTree, String> {
        reconstruct_root(problem, &self.w)
    }

    /// Wrap a bare table from a non-iterative solver in the uniform
    /// result shape. `wall` starts at zero — [`Solver::solve`] stamps
    /// the façade-measured duration onto every solution after dispatch.
    pub(crate) fn direct(algorithm: Algorithm, w: WTable<W>) -> Self {
        let n = w.n();
        Solution {
            algorithm,
            w,
            trace: SolveTrace::direct(n),
            stats: OpStats::default(),
            wall: Duration::ZERO,
        }
    }
}

/// The façade: pick an [`Algorithm`], optionally adjust [`SolveOptions`],
/// and [`solve`](Solver::solve) any [`DpProblem`].
///
/// ```
/// use pardp_core::prelude::*;
///
/// let p = FnProblem::new(3, |_| 0u64, |i, k, j| (i + k + j) as u64);
/// for algo in Algorithm::ALL {
///     if algo == Algorithm::Knuth {
///         continue; // needs the quadrangle inequality
///     }
///     let sol = Solver::new(algo)
///         .options(SolveOptions::default().exec(ExecBackend::Sequential))
///         .solve(&p);
///     assert_eq!(sol.value(), Solver::new(Algorithm::Sequential).solve(&p).value());
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Solver {
    algorithm: Algorithm,
    options: SolveOptions,
}

impl Solver {
    /// A solver for `algorithm` with [`SolveOptions::default`].
    pub fn new(algorithm: Algorithm) -> Self {
        Solver {
            algorithm,
            options: SolveOptions::default(),
        }
    }

    /// Replace the options wholesale (builder style).
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// The selected algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The current options.
    pub fn solve_options(&self) -> &SolveOptions {
        &self.options
    }

    /// Run the selected algorithm on `problem`. Dispatches to the
    /// per-module entry points, so results are bit-identical to calling
    /// them directly with the equivalent config.
    ///
    /// [`Solution::wall`] is measured here, around the whole dispatch,
    /// so its scope is uniform across the spectrum: solve plus
    /// diagnostics assembly, for direct and iterative algorithms alike.
    /// (The direct entry points keep their own narrower measurement
    /// when called directly.)
    pub fn solve<W: Weight, P: DpProblem<W> + ?Sized>(&self, problem: &P) -> Solution<W> {
        let opts = &self.options;
        let cancel = opts.cancel_token();
        let t0 = Instant::now();
        let mut solution = match self.algorithm {
            Algorithm::Sequential => {
                let w = solve_sequential(problem);
                Solution::direct(Algorithm::Sequential, w)
            }
            Algorithm::Knuth => {
                let w = solve_knuth(problem);
                Solution::direct(Algorithm::Knuth, w)
            }
            Algorithm::Wavefront => {
                let (w, completed) =
                    solve_wavefront_cancel(problem, &opts.wavefront_config(), cancel);
                let mut s = Solution::direct(Algorithm::Wavefront, w);
                if !completed {
                    s.trace.stop = StopReason::DeadlineExceeded;
                }
                s
            }
            Algorithm::Sublinear => {
                solve_sublinear_cancel(problem, &opts.sublinear_config(), cancel)
            }
            Algorithm::Reduced => solve_reduced_cancel(problem, &opts.reduced_config(), cancel),
            Algorithm::Rytter => solve_rytter_cancel(problem, &opts.rytter_config(), cancel),
        };
        solution.wall = t0.elapsed();
        solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::trace::StopReason;

    fn clrs() -> impl DpProblem<u64> {
        let dims = [30u64, 35, 15, 5, 10, 20, 25];
        FnProblem::new(6, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    #[test]
    fn registry_names_round_trip() {
        for a in Algorithm::ALL {
            assert_eq!(a.name().parse::<Algorithm>().unwrap(), a);
            for alias in a.aliases() {
                assert_eq!(alias.parse::<Algorithm>().unwrap(), a, "{alias}");
            }
            assert!(!a.description().is_empty());
            assert!(!a.complexity().is_empty());
        }
    }

    #[test]
    fn unknown_name_lists_all_algorithms() {
        let err = "sortof-parallel".parse::<Algorithm>().unwrap_err();
        for a in Algorithm::ALL {
            assert!(err.contains(a.name()), "{err}");
            assert!(err.contains(a.description()), "{err}");
        }
    }

    #[test]
    fn capability_flags_are_consistent() {
        for a in Algorithm::ALL {
            // Tiling and scheduling only make sense for the iterating
            // (activate, square, pebble) algorithms, which are parallel.
            assert_eq!(a.supports_tile(), a.is_iterative(), "{a}");
            assert!(!a.supports_tile() || a.is_parallel(), "{a}");
            assert!(!a.supports_skip() || a.is_iterative(), "{a}");
            assert!(!a.supports_band() || a.is_iterative(), "{a}");
            assert!(!a.supports_termination() || a.is_iterative(), "{a}");
            // The grain is the wavefront's alone.
            assert_eq!(a.supports_grain(), a == Algorithm::Wavefront, "{a}");
        }
        assert_eq!(Algorithm::ALL.len(), 6);
    }

    #[test]
    fn all_algorithms_agree_through_the_facade() {
        let p = clrs();
        let opts = SolveOptions::default().exec(ExecBackend::Sequential);
        for algo in Algorithm::ALL {
            if algo == Algorithm::Knuth {
                continue; // matrix chains lack the quadrangle inequality
            }
            let sol = Solver::new(algo).options(opts).solve(&p);
            assert_eq!(sol.value(), 15125, "{algo}");
            assert_eq!(sol.algorithm, algo);
            let tree = sol.tree(&p).unwrap();
            assert_eq!(tree.n_leaves(), 6, "{algo}");
        }
    }

    #[test]
    fn direct_solvers_return_well_formed_empty_traces() {
        let p = clrs();
        for algo in [
            Algorithm::Sequential,
            Algorithm::Knuth,
            Algorithm::Wavefront,
        ] {
            let sol = Solver::new(algo)
                .options(SolveOptions::default().exec(ExecBackend::Sequential))
                .solve(&p);
            assert_eq!(sol.trace.n, 6, "{algo}");
            assert_eq!(sol.trace.iterations, 0, "{algo}");
            assert_eq!(sol.trace.stop, StopReason::Direct, "{algo}");
            assert!(sol.trace.per_iteration.is_empty(), "{algo}");
            assert_eq!(sol.trace.work_by_op(), (0, 0, 0), "{algo}");
            assert_eq!(sol.stats, OpStats::default(), "{algo}");
        }
    }

    #[test]
    fn iterative_solvers_fill_stats_and_wall_time() {
        let p = clrs();
        for algo in [Algorithm::Sublinear, Algorithm::Reduced, Algorithm::Rytter] {
            let sol: Solution<u64> = Solver::new(algo)
                .options(
                    SolveOptions::default()
                        .exec(ExecBackend::Sequential)
                        .record_trace(true),
                )
                .solve(&p);
            assert!(sol.trace.iterations > 0, "{algo}");
            assert_eq!(sol.stats.candidates, sol.trace.total_candidates, "{algo}");
            assert!(sol.stats.changed, "{algo}");
            assert!(sol.stats.writes > 0, "{algo}");
        }
    }

    #[test]
    fn default_options_validate_for_every_algorithm() {
        for a in Algorithm::ALL {
            assert_eq!(SolveOptions::default().validate(a), Ok(()), "{a}");
            // The sequential baseline backend is always acceptable.
            assert_eq!(
                SolveOptions::default()
                    .exec(ExecBackend::Sequential)
                    .validate(a),
                Ok(()),
                "{a}"
            );
        }
    }

    #[test]
    fn validate_rejects_each_incapable_knob_deviation() {
        let cases: [(SolveOptions, SolveKnob, Algorithm); 7] = [
            (
                SolveOptions::default().exec(ExecBackend::Threads(2)),
                SolveKnob::Exec,
                Algorithm::Knuth,
            ),
            (
                SolveOptions::default().square(SquareStrategy::Naive),
                SolveKnob::Square,
                Algorithm::Wavefront,
            ),
            (
                SolveOptions::default().termination(Termination::Fixpoint),
                SolveKnob::Termination,
                Algorithm::Reduced,
            ),
            (
                SolveOptions::default().record_trace(true),
                SolveKnob::RecordTrace,
                Algorithm::Sequential,
            ),
            (
                SolveOptions::default().skip_clean_rows(false),
                SolveKnob::SkipCleanRows,
                Algorithm::Rytter,
            ),
            (
                SolveOptions::default().band(Some(8)),
                SolveKnob::Band,
                Algorithm::Sublinear,
            ),
            (
                SolveOptions::default().wavefront_grain(1),
                SolveKnob::WavefrontGrain,
                Algorithm::Reduced,
            ),
        ];
        for (opts, knob, algo) in cases {
            let err = opts.validate(algo).unwrap_err();
            assert_eq!(err.knob, knob, "{algo}");
            assert!(err.message.contains("has no effect"), "{knob:?}: {err}");
            assert!(err.message.contains(algo.name()), "{knob:?}: {err}");
            assert!(err.to_string().contains(knob.field()), "{knob:?}: {err}");
            // The same deviation on a capable algorithm passes.
            let capable = Algorithm::ALL
                .iter()
                .copied()
                .find(|&a| opts.validate(a).is_ok());
            assert!(capable.is_some(), "{knob:?} rejected everywhere");
        }
        // windowed_pebble deviates by turning *off* the default.
        let err = SolveOptions::default()
            .windowed_pebble(false)
            .validate(Algorithm::Sublinear)
            .unwrap_err();
        assert_eq!(err.knob, SolveKnob::WindowedPebble, "{err}");
    }

    #[test]
    fn validate_rejects_degenerate_values_everywhere() {
        for a in Algorithm::ALL {
            let err = SolveOptions::default()
                .square(SquareStrategy::Tiled(0))
                .validate(a)
                .unwrap_err();
            assert_eq!(err.knob, SolveKnob::Square, "{a}");
            assert!(err.message.contains("degenerate"), "{a}: {err}");
            assert!(err.message.contains("auto"), "{a}: {err}");
            let err = SolveOptions::default()
                .band(Some(0))
                .validate(a)
                .unwrap_err();
            assert_eq!(err.knob, SolveKnob::Band, "{a}");
            assert!(err.message.contains("zero band"), "{a}: {err}");
        }
    }

    #[test]
    fn validate_knob_is_unconditional_on_capability() {
        // Even the *default* backend is rejected when named explicitly
        // on a sequential algorithm — the CLI's `--backend` contract.
        let opts = SolveOptions::default();
        let err = opts
            .validate_knob(Algorithm::Sequential, SolveKnob::Exec)
            .unwrap_err();
        assert!(err.message.contains("no data-parallel passes"), "{err}");
        for a in Algorithm::ALL.iter().copied().filter(|a| a.is_parallel()) {
            assert_eq!(opts.validate_knob(a, SolveKnob::Exec), Ok(()), "{a}");
        }
        // Each knob agrees with the registry capability flags.
        for a in Algorithm::ALL {
            for knob in SolveKnob::ALL {
                let ok = opts.validate_knob(a, knob).is_ok();
                let expect = match knob {
                    SolveKnob::Exec => a.is_parallel(),
                    SolveKnob::Square => a.supports_tile(),
                    SolveKnob::Termination => a.supports_termination(),
                    SolveKnob::RecordTrace => a.is_iterative(),
                    SolveKnob::SkipCleanRows => a.supports_skip(),
                    SolveKnob::Band | SolveKnob::WindowedPebble => a.supports_band(),
                    SolveKnob::WavefrontGrain => a.supports_grain(),
                };
                assert_eq!(ok, expect, "{a} {knob:?}");
            }
        }
    }

    #[test]
    fn rytter_keeps_its_exact_fixpoint_stop_under_every_termination() {
        // The stop is exact, and it is Rytter's legacy default — the
        // façade must not silently trade it for full-schedule work.
        for term in [
            Termination::FixedSqrtN,
            Termination::Fixpoint,
            Termination::WStableTwice,
        ] {
            let opts = SolveOptions::default().termination(term);
            assert!(opts.rytter_config().fixpoint_stop, "{term:?}");
        }
        assert_eq!(
            SolveOptions::default().rytter_config().fixpoint_stop,
            RytterConfig::default().fixpoint_stop,
            "façade default must match the legacy Rytter default"
        );
    }
}
