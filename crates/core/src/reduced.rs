//! The §5 reduced-processor variant: `O(n^3.5 / log n)` processors,
//! same `O(sqrt(n) log n)` time.
//!
//! Two §5 observations shrink the work per iteration:
//!
//! 1. **Windowed pebbling.** By Lemma 3.3, after `2l` iterations every
//!    optimal-tree node of size ≤ `l^2` already holds its final value, and
//!    nodes of size > `(l+1)^2` cannot be finalised yet; so the pebble
//!    steps of iterations `2l - 1` and `2l` only need to consider pairs
//!    with `(l-1)^2 < j - i <= l^2` — `O(n^1.5)` of them.
//! 2. **Banded partial weights.** The heavy-chain decomposition shows the
//!    pebbling only ever exploits partial trees whose root-to-gap size
//!    difference is at most `2*ceil(sqrt(n))`; partial weights outside the
//!    band `(j-i) - (q-p) <= B` are never needed, and each in-band cell
//!    has only `O(sqrt(n))` in-band compositions.
//!
//! Because the window argument relies on the *fixed* `2*ceil(sqrt(n))`
//! schedule, this solver does not support convergence-based early
//! termination (change flags under a window are not a fixpoint signal),
//! and — for the same reason — it has no dirty-row square scheduling:
//! under the window each iteration's pebble consumes a *different* slice
//! of pairs, so "nothing changed last pass" says nothing about which
//! square rows the current pass needs fresh. The dense solver's
//! `skip_clean_rows` knob lives in
//! [`crate::sublinear::SolverConfig`] instead.

use crate::exec::ExecBackend;
use crate::ops::{a_activate_banded, a_pebble_banded, a_square_banded};
use crate::problem::DpProblem;
use crate::sublinear::Solution;
use crate::tables::{BandedPw, WTable};
use crate::trace::{IterationRecord, SolveTrace, StopReason};
use crate::weight::Weight;

/// Configuration of [`solve_reduced`].
#[derive(Debug, Clone, Copy)]
pub struct ReducedConfig {
    /// Execution backend for the data-parallel passes.
    pub exec: ExecBackend,
    /// Keep per-iteration records.
    pub record_trace: bool,
    /// Apply the §5 size window to the pebble step. Disabling it keeps the
    /// banded storage but re-minimises every pair each iteration — the E8
    /// ablation point separating the two §5 ideas.
    pub windowed_pebble: bool,
    /// Band width override; `None` uses the paper's `2 * ceil(sqrt(n))`.
    pub band: Option<usize>,
}

impl Default for ReducedConfig {
    fn default() -> Self {
        ReducedConfig {
            exec: ExecBackend::Parallel,
            record_trace: false,
            windowed_pebble: true,
            band: None,
        }
    }
}

/// The §5 band width `B = 2 * ceil(sqrt(n))`.
pub fn default_band(n: usize) -> usize {
    2 * pardp_pebble::ceil_sqrt(n as u64) as usize
}

/// Solve recurrence (*) with the §5 reduced-processor algorithm.
pub fn solve_reduced<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &ReducedConfig,
) -> Solution<W> {
    let n = problem.n();
    let exec = &config.exec;
    let band = config.band.unwrap_or_else(|| default_band(n));
    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    let mut pw = BandedPw::new(n, band);
    let mut pw_next = BandedPw::new(n, band);
    let mut w_next = w.clone();

    let mut trace = SolveTrace {
        n,
        iterations: 0,
        schedule_bound: schedule,
        stop: StopReason::ScheduleExhausted,
        total_candidates: 0,
        per_iteration: Vec::new(),
    };

    for iter in 1..=schedule {
        let act = a_activate_banded(problem, &w, &mut pw, exec);
        let sq = a_square_banded(&pw, &mut pw_next, exec);
        std::mem::swap(&mut pw, &mut pw_next);
        // Size window for iterations 2l-1 and 2l: (l-1)^2 < j-i <= l^2.
        let window = if config.windowed_pebble {
            let l = iter.div_ceil(2) as usize;
            Some(((l - 1) * (l - 1), l * l))
        } else {
            None
        };
        let pb = a_pebble_banded(problem, &pw, &w, &mut w_next, window, exec);
        std::mem::swap(&mut w, &mut w_next);

        trace.iterations = iter;
        trace.total_candidates += act.candidates + sq.candidates + pb.candidates;
        if config.record_trace {
            trace.per_iteration.push(IterationRecord {
                iteration: iter,
                activate: act.into(),
                square: sq.into(),
                pebble: pb.into(),
                root_finite: w.root().is_finite_cost(),
            });
        }
    }

    Solution { w, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, TabulatedProblem};
    use crate::seq::solve_sequential;
    use crate::sublinear::{solve_sublinear, SolverConfig};
    use crate::trace::Termination;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    fn cfg() -> ReducedConfig {
        ReducedConfig {
            exec: ExecBackend::Sequential,
            record_trace: true,
            windowed_pebble: true,
            band: None,
        }
    }

    #[test]
    fn reduced_solves_clrs_chain() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let sol = solve_reduced(&p, &cfg());
        assert_eq!(sol.value(), 15125);
        assert!(sol.w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn reduced_matches_oracle_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(4242);
        for n in [1usize, 2, 3, 4, 6, 9, 13, 18, 25, 33] {
            for _ in 0..3 {
                let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..50)).collect();
                let p = chain(dims);
                let oracle = solve_sequential(&p);
                let sol = solve_reduced(&p, &cfg());
                assert!(sol.w.table_eq(&oracle), "n={n}");
            }
        }
    }

    #[test]
    fn reduced_matches_oracle_on_arbitrary_costs() {
        // Matrix chains have structured f; arbitrary tabulated costs probe
        // the banded correctness argument harder.
        let mut rng = SmallRng::seed_from_u64(777);
        for n in [5usize, 10, 16, 24] {
            let init: Vec<u64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let m = n + 1;
            let f_vals: Vec<u64> = (0..m * m * m).map(|_| rng.gen_range(0..30)).collect();
            let p = TabulatedProblem::new(init, |i, k, j| f_vals[(i * m + k) * m + j]);
            let oracle = solve_sequential(&p);
            let sol = solve_reduced(&p, &cfg());
            assert!(sol.w.table_eq(&oracle), "n={n}");
        }
    }

    #[test]
    fn window_ablation_agrees() {
        let p = chain(vec![9, 4, 7, 2, 8, 3, 6, 5, 10, 1, 12, 11]);
        let windowed = solve_reduced(&p, &cfg());
        let unwindowed = solve_reduced(
            &p,
            &ReducedConfig {
                windowed_pebble: false,
                ..cfg()
            },
        );
        assert!(windowed.w.table_eq(&unwindowed.w));
        // The window strictly reduces pebble work.
        let (_, _, pb_win) = windowed.trace.work_by_op();
        let (_, _, pb_all) = unwindowed.trace.work_by_op();
        assert!(pb_win < pb_all, "windowed {pb_win} vs full {pb_all}");
    }

    #[test]
    fn reduced_does_much_less_square_work_than_dense() {
        let mut rng = SmallRng::seed_from_u64(9);
        let dims: Vec<u64> = (0..=36).map(|_| rng.gen_range(1..40)).collect();
        let p = chain(dims);
        let dense = solve_sublinear(
            &p,
            &SolverConfig {
                exec: ExecBackend::Sequential,
                termination: Termination::FixedSqrtN,
                record_trace: true,
                // Full sweeps: this test compares per-iteration op work.
                skip_clean_rows: false,
                ..Default::default()
            },
        );
        let red = solve_reduced(&p, &cfg());
        assert!(dense.w.table_eq(&red.w));
        let (_, sq_dense, _) = dense.trace.work_by_op();
        let (_, sq_red, _) = red.trace.work_by_op();
        assert!(
            sq_red * 2 < sq_dense,
            "reduced square work {sq_red} not well below dense {sq_dense}"
        );
    }

    #[test]
    fn parallel_equals_sequential_reduced() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dims: Vec<u64> = (0..=20).map(|_| rng.gen_range(1..30)).collect();
        let p = chain(dims);
        let seq = solve_reduced(&p, &cfg());
        let par = solve_reduced(
            &p,
            &ReducedConfig {
                exec: ExecBackend::Parallel,
                ..cfg()
            },
        );
        assert!(seq.w.table_eq(&par.w));
    }

    #[test]
    fn band_wider_than_needed_is_harmless() {
        let p = chain(vec![3, 7, 2, 9, 4, 8, 5]);
        let default = solve_reduced(&p, &cfg());
        let wide = solve_reduced(
            &p,
            &ReducedConfig {
                band: Some(100),
                ..cfg()
            },
        );
        assert!(default.w.table_eq(&wide.w));
    }
}
