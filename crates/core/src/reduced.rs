//! The §5 reduced-processor variant: `O(n^3.5 / log n)` processors,
//! same `O(sqrt(n) log n)` time.
//!
//! Two §5 observations shrink the work per iteration:
//!
//! 1. **Windowed pebbling.** By Lemma 3.3, after `2l` iterations every
//!    optimal-tree node of size ≤ `l^2` already holds its final value, and
//!    nodes of size > `(l+1)^2` cannot be finalised yet; so the pebble
//!    steps of iterations `2l - 1` and `2l` only need to consider pairs
//!    with `(l-1)^2 < j - i <= l^2` — `O(n^1.5)` of them.
//! 2. **Banded partial weights.** The heavy-chain decomposition shows the
//!    pebbling only ever exploits partial trees whose root-to-gap size
//!    difference is at most `2*ceil(sqrt(n))`; partial weights outside the
//!    band `(j-i) - (q-p) <= B` are never needed, and each in-band cell
//!    has only `O(sqrt(n))` in-band compositions.
//!
//! Because the window argument relies on the *fixed* `2*ceil(sqrt(n))`
//! schedule, this solver does not support convergence-based early
//! termination (change flags under a window are not a fixpoint signal).
//! Convergence-aware *scheduling* within the fixed schedule is a
//! different matter and is exact (`skip_clean_rows`, on by default):
//!
//! * **square rows** — banded square row `(i,j)` reads only `pw'` rows
//!   nested in `(i,j)`; if neither this iteration's activate nor the
//!   previous square changed any of them, the row is copied forward
//!   (exactly the dense solver's rule);
//! * **pebble pairs** — pebble pair `(i,j)` reads its own `pw'` row and
//!   the `w'` of its nested pairs. Because the window re-minimises a
//!   pair only on some iterations, a *persistent* per-pair dirty bit
//!   accumulates input changes across iterations and is cleared only
//!   when the pair is actually re-minimised; a windowed-in pair whose
//!   bit is clear would reproduce its current value and is copied
//!   instead.

use crate::exec::ExecBackend;
use crate::fault::CancelToken;
use crate::ops::{
    a_activate_banded_tracked, a_pebble_banded_scheduled, a_square_banded_scheduled, OpStats,
    SquareStrategy,
};
use crate::problem::DpProblem;
use crate::solver::{Algorithm, Solution};
use crate::tables::{BandedPw, WTable};
use crate::trace::{IterationRecord, SolveTrace, StopReason};
use crate::weight::Weight;

/// Configuration of [`solve_reduced`].
#[derive(Debug, Clone, Copy)]
pub struct ReducedConfig {
    /// Execution backend for the data-parallel passes.
    pub exec: ExecBackend,
    /// Keep per-iteration records.
    pub record_trace: bool,
    /// Apply the §5 size window to the pebble step. Disabling it keeps the
    /// banded storage but re-minimises every pair each iteration — the E8
    /// ablation point separating the two §5 ideas.
    pub windowed_pebble: bool,
    /// Band width override; `None` uses the paper's `2 * ceil(sqrt(n))`.
    pub band: Option<usize>,
    /// Kernel of the banded `a-square` — the §5 hot path. All strategies
    /// produce bit-identical tables; see [`SquareStrategy`].
    pub square: SquareStrategy,
    /// Convergence-aware scheduling (square rows and pebble pairs whose
    /// inputs did not change are copied forward; see the module docs).
    /// Exact: every configuration computes identical tables.
    pub skip_clean_rows: bool,
}

impl Default for ReducedConfig {
    fn default() -> Self {
        ReducedConfig {
            exec: ExecBackend::Parallel,
            record_trace: false,
            windowed_pebble: true,
            band: None,
            square: SquareStrategy::Auto,
            skip_clean_rows: true,
        }
    }
}

/// The §5 band width `B = 2 * ceil(sqrt(n))`.
pub fn default_band(n: usize) -> usize {
    2 * pardp_pebble::ceil_sqrt(n as u64) as usize
}

/// Solve recurrence (*) with the §5 reduced-processor algorithm.
pub fn solve_reduced<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &ReducedConfig,
) -> Solution<W> {
    solve_seeded(problem, config, None, CancelToken::NONE)
}

/// Cancellable §5 solve for the façade: `cancel` is checked once per
/// iteration, and an expired deadline stops the run with
/// [`StopReason::DeadlineExceeded`] and a partial table.
pub(crate) fn solve_reduced_cancel<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &ReducedConfig,
    cancel: CancelToken,
) -> Solution<W> {
    solve_seeded(problem, config, None, cancel)
}

/// Warm-started §5 solve for the solution store: pairs `(i,j)` with
/// `j <= seed_m` start at the cached optimal prefix values and are
/// dirty-bit-excluded from every pebble pass. Same exactness argument
/// as [`crate::sublinear::solve_sublinear_seeded`] — the window and the
/// banded storage are untouched, only the pebble skip mask gains the
/// always-final seeded pairs.
pub(crate) fn solve_reduced_seeded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &ReducedConfig,
    seed_m: usize,
    seed: &WTable<W>,
    cancel: CancelToken,
) -> Solution<W> {
    debug_assert!(seed.n() == seed_m && seed_m < problem.n());
    solve_seeded(problem, config, Some((seed_m, seed)), cancel)
}

fn solve_seeded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &ReducedConfig,
    seed: Option<(usize, &WTable<W>)>,
    cancel: CancelToken,
) -> Solution<W> {
    let t0 = std::time::Instant::now();
    let n = problem.n();
    let exec = &config.exec;
    let band = config.band.unwrap_or_else(|| default_band(n));
    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    if let Some((m, sw)) = seed {
        for i in 0..m {
            for j in i + 1..=m {
                w.set(i, j, sw.get(i, j));
            }
        }
    }
    let mut pw = BandedPw::new(n, band);
    let mut pw_next = BandedPw::new(n, band);
    let mut w_next = w.clone();

    let mut trace = SolveTrace {
        n,
        iterations: 0,
        schedule_bound: schedule,
        stop: StopReason::ScheduleExhausted,
        total_candidates: 0,
        per_iteration: Vec::new(),
    };
    let mut stats = OpStats::default();

    // Convergence-aware scheduling state (see the module docs): per-pair
    // change bits from the previous square and pebble, the persistent
    // pebble dirty bits, and scratch masks for the skip decisions.
    let idx = pw.indexer().clone();
    let pairs: Vec<(usize, usize)> = idx.pairs().collect();
    let dim = idx.len();
    let mut square_changed_rows = vec![true; dim];
    let mut w_changed_pairs = vec![true; dim];
    let mut pebble_dirty = vec![true; dim];
    let mut square_skip_mask = vec![false; dim];
    let mut pebble_skip_mask = vec![false; dim];
    // Warm start: seeded prefix pairs already hold their final optimal
    // values, so the pebble never needs to re-minimise them (it could
    // only confirm them — pebble is a monotone re-minimisation whose
    // candidates never undercut the optimum). Their square rows still
    // run: nested pw rows feed the un-seeded suffix pairs.
    let final_pairs: Option<Vec<bool>> =
        seed.map(|(m, _)| idx.pairs().map(|(_, j)| j <= m).collect::<Vec<bool>>());

    for iter in 1..=schedule {
        if cancel.is_cancelled() {
            trace.stop = StopReason::DeadlineExceeded;
            break;
        }
        let (act, activate_changed_rows) = a_activate_banded_tracked(problem, &w, &mut pw, exec);
        // Square row (i,j) reads the pw rows nested in (i,j): unchanged
        // since the previous square iff neither the previous square nor
        // this activate touched them (the dense solver's rule; the
        // pebble window below does not interfere — the square is not
        // windowed).
        let square_skip = if config.skip_clean_rows && iter > 1 {
            for a in 0..dim {
                square_skip_mask[a] = activate_changed_rows[a] || square_changed_rows[a];
            }
            idx.propagate_nested(&mut square_skip_mask);
            for dirty in square_skip_mask.iter_mut() {
                *dirty = !*dirty;
            }
            Some(square_skip_mask.as_slice())
        } else {
            None
        };
        let (sq, sq_rows) =
            a_square_banded_scheduled(&pw, &mut pw_next, config.square, square_skip, exec);
        square_changed_rows = sq_rows;
        std::mem::swap(&mut pw, &mut pw_next);
        // Size window for iterations 2l-1 and 2l: (l-1)^2 < j-i <= l^2.
        let window = if config.windowed_pebble {
            let l = iter.div_ceil(2) as usize;
            Some(((l - 1) * (l - 1), l * l))
        } else {
            None
        };
        // Accumulate input changes into the persistent dirty bits: pair
        // (i,j)'s pebble inputs are its own pw row (changed iff activate
        // or square touched it this iteration) and the w' of its nested
        // pairs (changed iff the previous pebble improved them). A
        // windowed-out pair keeps accumulating dirt until the window
        // reaches it.
        let pebble_skip = if config.skip_clean_rows {
            if iter > 1 {
                for a in 0..dim {
                    pebble_skip_mask[a] =
                        activate_changed_rows[a] || square_changed_rows[a] || w_changed_pairs[a];
                }
                idx.propagate_nested(&mut pebble_skip_mask);
                for (dirty, fresh) in pebble_dirty.iter_mut().zip(&pebble_skip_mask) {
                    *dirty |= fresh;
                }
            }
            for (skip, dirty) in pebble_skip_mask.iter_mut().zip(&pebble_dirty) {
                *skip = !dirty;
            }
            if let Some(fm) = &final_pairs {
                for (skip, f) in pebble_skip_mask.iter_mut().zip(fm) {
                    *skip |= *f;
                }
            }
            Some(pebble_skip_mask.as_slice())
        } else if let Some(fm) = &final_pairs {
            pebble_skip_mask.copy_from_slice(fm);
            Some(pebble_skip_mask.as_slice())
        } else {
            None
        };
        let (pb, pb_pairs) =
            a_pebble_banded_scheduled(problem, &pw, &w, &mut w_next, window, pebble_skip, exec);
        std::mem::swap(&mut w, &mut w_next);
        if config.skip_clean_rows {
            // Pairs the window admitted and the skip mask did not veto
            // were re-minimised against their current inputs: clean.
            for (a, &(pi, pj)) in pairs.iter().enumerate() {
                let in_window = window.is_none_or(|(lo, hi)| pj - pi > lo && pj - pi <= hi);
                if in_window && !pebble_skip_mask[a] {
                    pebble_dirty[a] = false;
                }
            }
            w_changed_pairs = pb_pairs;
        }

        trace.iterations = iter;
        trace.total_candidates += act.candidates + sq.candidates + pb.candidates;
        stats = stats.merge(act).merge(sq).merge(pb);
        if config.record_trace {
            trace.per_iteration.push(IterationRecord {
                iteration: iter,
                activate: act.into(),
                square: sq.into(),
                pebble: pb.into(),
                root_finite: w.root().is_finite_cost(),
            });
        }
    }

    Solution {
        algorithm: Algorithm::Reduced,
        w,
        trace,
        stats,
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, TabulatedProblem};
    use crate::seq::solve_sequential;
    use crate::sublinear::{solve_sublinear, SolverConfig};
    use crate::trace::Termination;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    /// Full-sweep sequential baseline: the work-accounting assertions
    /// below compare per-op candidate counts, so scheduling is off; the
    /// skip_* tests cover the scheduler.
    fn cfg() -> ReducedConfig {
        ReducedConfig {
            exec: ExecBackend::Sequential,
            record_trace: true,
            windowed_pebble: true,
            band: None,
            square: SquareStrategy::Auto,
            skip_clean_rows: false,
        }
    }

    #[test]
    fn reduced_solves_clrs_chain() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let sol = solve_reduced(&p, &cfg());
        assert_eq!(sol.value(), 15125);
        assert!(sol.w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn reduced_matches_oracle_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(4242);
        for n in [1usize, 2, 3, 4, 6, 9, 13, 18, 25, 33] {
            for _ in 0..3 {
                let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..50)).collect();
                let p = chain(dims);
                let oracle = solve_sequential(&p);
                let sol = solve_reduced(&p, &cfg());
                assert!(sol.w.table_eq(&oracle), "n={n}");
            }
        }
    }

    #[test]
    fn reduced_matches_oracle_on_arbitrary_costs() {
        // Matrix chains have structured f; arbitrary tabulated costs probe
        // the banded correctness argument harder.
        let mut rng = SmallRng::seed_from_u64(777);
        for n in [5usize, 10, 16, 24] {
            let init: Vec<u64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let m = n + 1;
            let f_vals: Vec<u64> = (0..m * m * m).map(|_| rng.gen_range(0..30)).collect();
            let p = TabulatedProblem::new(init, |i, k, j| f_vals[(i * m + k) * m + j]);
            let oracle = solve_sequential(&p);
            let sol = solve_reduced(&p, &cfg());
            assert!(sol.w.table_eq(&oracle), "n={n}");
        }
    }

    #[test]
    fn window_ablation_agrees() {
        let p = chain(vec![9, 4, 7, 2, 8, 3, 6, 5, 10, 1, 12, 11]);
        let windowed = solve_reduced(&p, &cfg());
        let unwindowed = solve_reduced(
            &p,
            &ReducedConfig {
                windowed_pebble: false,
                ..cfg()
            },
        );
        assert!(windowed.w.table_eq(&unwindowed.w));
        // The window strictly reduces pebble work.
        let (_, _, pb_win) = windowed.trace.work_by_op();
        let (_, _, pb_all) = unwindowed.trace.work_by_op();
        assert!(pb_win < pb_all, "windowed {pb_win} vs full {pb_all}");
    }

    #[test]
    fn reduced_does_much_less_square_work_than_dense() {
        let mut rng = SmallRng::seed_from_u64(9);
        let dims: Vec<u64> = (0..=36).map(|_| rng.gen_range(1..40)).collect();
        let p = chain(dims);
        let dense = solve_sublinear(
            &p,
            &SolverConfig {
                exec: ExecBackend::Sequential,
                termination: Termination::FixedSqrtN,
                record_trace: true,
                // Full sweeps: this test compares per-iteration op work.
                skip_clean_rows: false,
                ..Default::default()
            },
        );
        let red = solve_reduced(&p, &cfg());
        assert!(dense.w.table_eq(&red.w));
        let (_, sq_dense, _) = dense.trace.work_by_op();
        let (_, sq_red, _) = red.trace.work_by_op();
        assert!(
            sq_red * 2 < sq_dense,
            "reduced square work {sq_red} not well below dense {sq_dense}"
        );
    }

    #[test]
    fn parallel_equals_sequential_reduced() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dims: Vec<u64> = (0..=20).map(|_| rng.gen_range(1..30)).collect();
        let p = chain(dims);
        let seq = solve_reduced(&p, &cfg());
        let par = solve_reduced(
            &p,
            &ReducedConfig {
                exec: ExecBackend::Parallel,
                ..cfg()
            },
        );
        assert!(seq.w.table_eq(&par.w));
    }

    #[test]
    fn skip_clean_rows_is_exact_on_random_instances() {
        // Clean-row/pair skipping must not change a single table cell,
        // for every kernel, backend and window setting.
        let mut rng = SmallRng::seed_from_u64(20260728);
        for n in [2usize, 5, 9, 16, 25] {
            let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..40)).collect();
            let p = chain(dims);
            let oracle = solve_sequential(&p);
            for windowed in [true, false] {
                let base = solve_reduced(
                    &p,
                    &ReducedConfig {
                        windowed_pebble: windowed,
                        ..cfg()
                    },
                );
                assert!(base.w.table_eq(&oracle), "n={n} windowed={windowed}");
                for (square, exec) in [
                    (SquareStrategy::Auto, ExecBackend::Sequential),
                    (SquareStrategy::Naive, ExecBackend::Sequential),
                    (SquareStrategy::Auto, ExecBackend::Threads(4)),
                ] {
                    let skipping = solve_reduced(
                        &p,
                        &ReducedConfig {
                            exec,
                            windowed_pebble: windowed,
                            square,
                            skip_clean_rows: true,
                            ..cfg()
                        },
                    );
                    assert!(
                        skipping.w.table_eq(&base.w),
                        "n={n} windowed={windowed} {square} {exec}"
                    );
                    // Skipping can only remove candidate work.
                    assert!(
                        skipping.trace.total_candidates <= base.trace.total_candidates,
                        "n={n} windowed={windowed} {square} {exec}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_clean_rows_saves_reduced_work() {
        // Uniform dims converge fast; under the fixed 2*ceil(sqrt(n))
        // schedule the post-convergence iterations must skip nearly
        // everything, so total candidates drop well below the full-sweep
        // figure.
        let p = chain(vec![3u64; 50]); // n = 49, schedule bound 14
        let full = solve_reduced(&p, &cfg());
        let skipping = solve_reduced(
            &p,
            &ReducedConfig {
                skip_clean_rows: true,
                ..cfg()
            },
        );
        assert!(skipping.w.table_eq(&full.w));
        assert!(
            2 * skipping.trace.total_candidates < full.trace.total_candidates,
            "skip saved too little: {} vs {}",
            skipping.trace.total_candidates,
            full.trace.total_candidates
        );
    }

    #[test]
    fn square_strategies_agree_in_the_solver() {
        let mut rng = SmallRng::seed_from_u64(404);
        let dims: Vec<u64> = (0..=28).map(|_| rng.gen_range(1..60)).collect();
        let p = chain(dims);
        let naive = solve_reduced(
            &p,
            &ReducedConfig {
                square: SquareStrategy::Naive,
                ..cfg()
            },
        );
        for square in [SquareStrategy::Auto, SquareStrategy::Tiled(16)] {
            let other = solve_reduced(&p, &ReducedConfig { square, ..cfg() });
            assert!(other.w.table_eq(&naive.w), "{square}");
            assert_eq!(
                other.trace.total_candidates, naive.trace.total_candidates,
                "{square}"
            );
        }
    }

    #[test]
    fn band_wider_than_needed_is_harmless() {
        let p = chain(vec![3, 7, 2, 9, 4, 8, 5]);
        let default = solve_reduced(&p, &cfg());
        let wide = solve_reduced(
            &p,
            &ReducedConfig {
                band: Some(100),
                ..cfg()
            },
        );
        assert!(default.w.table_eq(&wide.w));
    }
}
