//! Weight (cost) types for recurrence (*).
//!
//! The paper only requires that `f(i,k,j)` and `init(i)` are *non-negative*
//! values combined by `+` and compared by `min`, with an identity `0` and an
//! absorbing top element `infinity` (the initial value of every table
//! entry). [`Weight`] captures exactly that: a commutative monoid under
//! saturating addition with a total order — the tropical (min, +) semiring
//! restricted to what the algorithm needs.
//!
//! Implementations are provided for `u64`, `i64` and `f64`. Integer
//! infinities are `MAX / 4` so that `INFINITY + INFINITY` cannot wrap; any
//! finite sum that would reach the infinity range saturates (documented
//! bound on representable costs).

/// A cost value in the tropical semiring used by recurrence (*).
pub trait Weight:
    Copy + PartialOrd + Send + Sync + std::fmt::Debug + std::fmt::Display + 'static
{
    /// The absorbing top element: the initial value of all table entries.
    const INFINITY: Self;
    /// The additive identity.
    const ZERO: Self;

    /// Saturating addition: `INFINITY + x = INFINITY`, never wraps.
    fn add(self, rhs: Self) -> Self;

    /// Total-order minimum (inputs must not be NaN for `f64`).
    #[inline]
    fn min2(self, rhs: Self) -> Self {
        if rhs < self {
            rhs
        } else {
            self
        }
    }

    /// Whether the value is below the infinity threshold.
    #[inline]
    fn is_finite_cost(&self) -> bool {
        *self < Self::INFINITY
    }

    /// Exact or approximate equality; `f64` uses a relative tolerance so
    /// that algebraically equal costs computed in different association
    /// orders compare equal.
    fn cost_eq(&self, other: &Self) -> bool;
}

impl Weight for u64 {
    const INFINITY: u64 = u64::MAX / 4;
    const ZERO: u64 = 0;

    #[inline]
    fn add(self, rhs: u64) -> u64 {
        let s = self.saturating_add(rhs);
        if s >= Self::INFINITY {
            Self::INFINITY
        } else {
            s
        }
    }

    #[inline]
    fn cost_eq(&self, other: &u64) -> bool {
        self == other
    }
}

impl Weight for i64 {
    const INFINITY: i64 = i64::MAX / 4;
    const ZERO: i64 = 0;

    #[inline]
    fn add(self, rhs: i64) -> i64 {
        debug_assert!(
            self >= 0 && rhs >= 0,
            "recurrence (*) requires non-negative costs"
        );
        let s = self.saturating_add(rhs);
        if s >= Self::INFINITY {
            Self::INFINITY
        } else {
            s
        }
    }

    #[inline]
    fn cost_eq(&self, other: &i64) -> bool {
        self == other
    }
}

impl Weight for f64 {
    const INFINITY: f64 = f64::INFINITY;
    const ZERO: f64 = 0.0;

    #[inline]
    fn add(self, rhs: f64) -> f64 {
        self + rhs
    }

    #[inline]
    fn cost_eq(&self, other: &f64) -> bool {
        if self == other {
            return true;
        }
        if !self.is_finite() || !other.is_finite() {
            return self == other;
        }
        let scale = self.abs().max(other.abs()).max(1.0);
        (self - other).abs() <= 1e-9 * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_infinity_is_absorbing_and_never_wraps() {
        let inf = <u64 as Weight>::INFINITY;
        assert_eq!(inf.add(inf), inf);
        assert_eq!(inf.add(5), inf);
        assert_eq!(5u64.add(inf), inf);
        // Sums below the threshold are exact.
        assert_eq!(3u64.add(4), 7);
        // Saturation at the threshold.
        assert_eq!((inf - 1).add(10), inf);
    }

    #[test]
    fn i64_matches_u64_behaviour() {
        let inf = <i64 as Weight>::INFINITY;
        assert_eq!(inf.add(7), inf);
        assert_eq!(2i64.add(3), 5);
        assert!(0i64.is_finite_cost());
        assert!(!inf.is_finite_cost());
    }

    #[test]
    fn f64_infinity_and_tolerant_equality() {
        let inf = <f64 as Weight>::INFINITY;
        assert_eq!(inf.add(1.0), inf);
        assert!(1.0f64.add(2.0).cost_eq(&3.0));
        // Relative tolerance absorbs reassociation error.
        let a = 0.1f64 + 0.2;
        assert!(a.cost_eq(&0.3));
        assert!(!1.0f64.cost_eq(&1.1));
        assert!(inf.cost_eq(&inf));
        assert!(!inf.cost_eq(&1.0));
    }

    #[test]
    fn min2_is_total_min() {
        assert_eq!(3u64.min2(5), 3);
        assert_eq!(5u64.min2(3), 3);
        assert_eq!(2.5f64.min2(2.4), 2.4);
        let inf = <u64 as Weight>::INFINITY;
        assert_eq!(inf.min2(7), 7);
        assert_eq!(7u64.min2(inf), 7);
    }
}
