//! Reconstructing the optimal parenthesization tree from a solved table.
//!
//! The solvers compute values only (`w'`); the realizing tree — "the tree
//! in S_n of minimum weight" (§2) — is recovered by walking the table:
//! at `(i,j)` pick the smallest `k` whose decomposition achieves `w(i,j)`.
//! The result is exactly a member of the paper's tree set `S`: nodes are
//! intervals, the sons of `(i,j)` are `(i,k)` and `(k,j)`, leaves are
//! `(i, i+1)`.

use pardp_pebble::tree::{FullBinaryTree, TreeBuilder};
use pardp_pebble::NodeId;

use crate::problem::DpProblem;
use crate::tables::WTable;
use crate::weight::Weight;

/// An optimal parenthesization tree (a member of the paper's set `S`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParenTree {
    /// The leaf `(i, i+1)`.
    Leaf {
        /// Left endpoint; the leaf covers `(i, i+1)`.
        i: usize,
    },
    /// An internal node `(i, j)` split at `k`.
    Node {
        /// Left endpoint.
        i: usize,
        /// Right endpoint.
        j: usize,
        /// The split: sons are `(i, k)` and `(k, j)`.
        k: usize,
        /// The son `(i, k)`.
        left: Box<ParenTree>,
        /// The son `(k, j)`.
        right: Box<ParenTree>,
    },
}

impl ParenTree {
    /// The interval `(i, j)` this subtree covers.
    pub fn interval(&self) -> (usize, usize) {
        match self {
            ParenTree::Leaf { i } => (*i, *i + 1),
            ParenTree::Node { i, j, .. } => (*i, *j),
        }
    }

    /// Number of leaves (`j - i`).
    pub fn n_leaves(&self) -> usize {
        let (i, j) = self.interval();
        j - i
    }

    /// Depth of the tree (leaf = 0).
    pub fn height(&self) -> usize {
        match self {
            ParenTree::Leaf { .. } => 0,
            ParenTree::Node { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// Render with one name per object, e.g. `((A1 A2) A3)`.
    pub fn render(&self, names: &[String]) -> String {
        match self {
            ParenTree::Leaf { i } => names.get(*i).cloned().unwrap_or_else(|| format!("x{i}")),
            ParenTree::Node { left, right, .. } => {
                format!("({} {})", left.render(names), right.render(names))
            }
        }
    }
}

/// Reconstruct an optimal tree for `(lo, hi)` from a solved `w` table by
/// re-deriving the argmin at every node (smallest achieving `k`).
///
/// Returns an error if the table is inconsistent (no decomposition of some
/// interval achieves its stored value — impossible for tables produced by
/// the crate's solvers).
pub fn reconstruct<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
    lo: usize,
    hi: usize,
) -> Result<ParenTree, String> {
    assert!(lo < hi && hi <= problem.n());
    if hi == lo + 1 {
        return Ok(ParenTree::Leaf { i: lo });
    }
    let target = w.get(lo, hi);
    if !target.is_finite_cost() {
        return Err(format!("w({lo},{hi}) is infinite — table not solved"));
    }
    for k in lo + 1..hi {
        let via = w.get(lo, k).add(w.get(k, hi)).add(problem.f(lo, k, hi));
        if via.cost_eq(&target) {
            let left = reconstruct(problem, w, lo, k)?;
            let right = reconstruct(problem, w, k, hi)?;
            return Ok(ParenTree::Node {
                i: lo,
                j: hi,
                k,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
    }
    Err(format!(
        "no split of ({lo},{hi}) achieves w = {target:?} — inconsistent table"
    ))
}

/// Reconstruct the root tree `(0, n)`.
pub fn reconstruct_root<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
) -> Result<ParenTree, String> {
    reconstruct(problem, w, 0, problem.n())
}

/// Independently evaluate the weight `W(T)` of a tree: the sum of
/// `f(i,k,j)` over internal nodes plus `init(i)` over leaves (§2).
pub fn tree_cost<W: Weight, P: DpProblem<W> + ?Sized>(problem: &P, tree: &ParenTree) -> W {
    match tree {
        ParenTree::Leaf { i } => problem.init(*i),
        ParenTree::Node {
            i,
            j,
            k,
            left,
            right,
        } => problem
            .f(*i, *k, *j)
            .add(tree_cost(problem, left))
            .add(tree_cost(problem, right)),
    }
}

/// Convert to a `pardp-pebble` tree for playing the §3 game on it. The
/// returned tree's [interval labels](FullBinaryTree::interval_labels)
/// shifted by `lo` coincide with the `ParenTree` intervals.
pub fn to_pebble_tree(tree: &ParenTree) -> FullBinaryTree {
    fn rec(t: &ParenTree, b: &mut TreeBuilder) -> NodeId {
        match t {
            ParenTree::Leaf { .. } => b.leaf(),
            ParenTree::Node { left, right, .. } => {
                let l = rec(left, b);
                let r = rec(right, b);
                b.internal(l, r)
            }
        }
    }
    let mut b = TreeBuilder::with_leaf_capacity(tree.n_leaves());
    let root = rec(tree, &mut b);
    b.build(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::seq::solve_sequential;

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    #[test]
    fn clrs_chain_reconstruction() {
        // CLRS optimal parenthesization: ((A1 (A2 A3)) ((A4 A5) A6)).
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let w = solve_sequential(&p);
        let t = reconstruct_root(&p, &w).unwrap();
        assert_eq!(tree_cost(&p, &t), 15125);
        let names: Vec<String> = (1..=6).map(|i| format!("A{i}")).collect();
        assert_eq!(t.render(&names), "((A1 (A2 A3)) ((A4 A5) A6))");
    }

    #[test]
    fn tree_cost_equals_table_value_on_random_instances() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(808);
        for n in 1..=25usize {
            let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..60)).collect();
            let p = chain(dims);
            let w = solve_sequential(&p);
            let t = reconstruct_root(&p, &w).unwrap();
            assert_eq!(tree_cost(&p, &t), w.root(), "n={n}");
            assert_eq!(t.n_leaves(), n);
        }
    }

    #[test]
    fn pebble_tree_roundtrip_preserves_intervals() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let w = solve_sequential(&p);
        let t = reconstruct_root(&p, &w).unwrap();
        let pt = to_pebble_tree(&t);
        assert_eq!(pt.n_leaves(), t.n_leaves());
        // Interval labels of the pebble tree match the ParenTree intervals.
        let labels = pt.interval_labels();
        fn collect(t: &ParenTree, out: &mut Vec<(usize, usize)>) {
            out.push(t.interval());
            if let ParenTree::Node { left, right, .. } = t {
                collect(left, out);
                collect(right, out);
            }
        }
        let mut intervals = Vec::new();
        collect(&t, &mut intervals);
        intervals.sort_unstable();
        let mut pebble_intervals: Vec<(usize, usize)> = pt.node_ids().map(|x| labels[x]).collect();
        pebble_intervals.sort_unstable();
        assert_eq!(intervals, pebble_intervals);
    }

    #[test]
    fn reconstruction_fails_on_unsolved_table() {
        let p = chain(vec![2, 3, 4, 5]);
        let w = WTable::<u64>::new(3); // all infinity
        assert!(reconstruct_root(&p, &w).is_err());
    }

    #[test]
    fn height_and_interval_accessors() {
        let p = chain(vec![2, 3, 4, 5, 6]);
        let w = solve_sequential(&p);
        let t = reconstruct_root(&p, &w).unwrap();
        assert_eq!(t.interval(), (0, 4));
        assert!(t.height() >= 2 && t.height() <= 3);
    }
}
