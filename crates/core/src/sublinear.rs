//! The sublinear algorithm of §2: `2 * ceil(sqrt(n))` iterations of
//! (`a-activate`, `a-square`, `a-pebble`) over dense tables.
//!
//! ```text
//! Initialize w'(i, i+1) = init(i),          0 <= i < n;
//! Initialize pw'(i, j, i, j) = 0,           0 <= i < j <= n;
//! repeat 2*ceil(sqrt(n)) times begin
//!     a-activate; a-square; a-pebble;
//! end.
//! ```
//!
//! On a CREW PRAM this runs in `O(sqrt(n) log n)` time with
//! `O(n^5 / log n)` processors (§4). Here each operation is executed as a
//! data-parallel pass on the configured [`ExecBackend`] (sequential
//! reference or the work-stealing thread pool); the PRAM costs are
//! recorded separately by [`crate::pram_exec`].
//!
//! **Release note:** the historical `ExecMode` name is deprecated; name
//! [`ExecBackend`] directly. Removal timeline: the prelude re-export was
//! removed in this release (it had carried `#[deprecated]` for one
//! release), and this module's [`ExecMode`] alias — `#[deprecated]`
//! since 0.1.0 — is removed in the next minor release. Migrate with a
//! textual rename; the variants and semantics are identical.

use crate::fault::CancelToken;
use crate::ops::{
    a_activate_dense_tracked, a_pebble_dense_scheduled, a_square_dense_scheduled, OpStats,
};
use crate::problem::DpProblem;
use crate::solver::Algorithm;
use crate::tables::{DensePw, WTable};
use crate::trace::{IterationRecord, SolveTrace, StopReason, Termination};
use crate::weight::Weight;

pub use crate::exec::ExecBackend;
pub use crate::ops::SquareStrategy;
pub use crate::solver::Solution;

/// Execution mode for the data-parallel passes — the historical name for
/// [`ExecBackend`], kept only so downstream code compiles while it
/// migrates. Same variants, same semantics; new code should name
/// `ExecBackend` directly.
#[deprecated(
    since = "0.1.0",
    note = "use `ExecBackend` (the alias predates the pluggable backend API)"
)]
pub type ExecMode = ExecBackend;

/// Configuration of [`solve_sublinear`].
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Execution backend for the data-parallel passes.
    pub exec: ExecBackend,
    /// Stopping rule (all rules are capped at `2 * ceil(sqrt(n))`, which
    /// Lemma 3.3 proves sufficient, so every configuration is exact).
    pub termination: Termination,
    /// Keep per-iteration records in the trace.
    pub record_trace: bool,
    /// Candidate-enumeration kernel of the dense `a-square` — the
    /// `O(n^5)` hot path. All strategies produce bit-identical tables;
    /// see [`SquareStrategy`].
    pub square: SquareStrategy,
    /// Convergence-aware scheduling: skip `a-square` rows none of whose
    /// input rows changed in the previous iteration, and `a-pebble` pairs
    /// none of whose inputs (their `pw'` row or a nested pair's `w'`)
    /// changed — both are copied forward and report zero candidates.
    /// Exact under every termination rule: square and pebble are
    /// deterministic monotone functions of their inputs, so a clean
    /// row's/pair's recomputation would reproduce its previous output.
    /// The §5 reduced solver has the same knob in
    /// [`crate::reduced::ReducedConfig`], where the pebble bookkeeping
    /// additionally persists across the size window.
    pub skip_clean_rows: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            exec: ExecBackend::Parallel,
            termination: Termination::FixedSqrtN,
            record_trace: false,
            square: SquareStrategy::Auto,
            skip_clean_rows: true,
        }
    }
}

/// Solve recurrence (*) with the paper's sublinear algorithm (§2, dense
/// `O(n^4)`-memory tables).
pub fn solve_sublinear<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &SolverConfig,
) -> Solution<W> {
    solve_seeded(problem, config, None, CancelToken::NONE)
}

/// Cancellable §2 solve for the façade: `cancel` is checked once per
/// iteration, and an expired deadline stops the run with
/// [`StopReason::DeadlineExceeded`] and a partial table.
pub(crate) fn solve_sublinear_cancel<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &SolverConfig,
    cancel: CancelToken,
) -> Solution<W> {
    solve_seeded(problem, config, None, cancel)
}

/// Warm-started §2 solve for the solution store: pairs `(i,j)` with
/// `j <= seed_m` start at the cached *optimal* prefix values in `seed`
/// and are dirty-bit-excluded from every pebble pass, so the iterations
/// converge only on the new region.
///
/// Exact by monotonicity: pebble is a non-increasing re-minimisation
/// whose candidates never undercut the optimum, so a pair already at
/// its optimal value is reproduced verbatim by any pebble — skipping it
/// is a no-op — and every other pair starts from inputs at least as
/// converged as a cold run's, so the fixed schedule still suffices and
/// the final table is bit-identical to a cold solve
/// (property-tested in `crates/core/tests/proptest_store.rs`).
pub(crate) fn solve_sublinear_seeded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &SolverConfig,
    seed_m: usize,
    seed: &crate::tables::WTable<W>,
    cancel: CancelToken,
) -> Solution<W> {
    debug_assert!(seed.n() == seed_m && seed_m < problem.n());
    solve_seeded(problem, config, Some((seed_m, seed)), cancel)
}

fn solve_seeded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &SolverConfig,
    seed: Option<(usize, &WTable<W>)>,
    cancel: CancelToken,
) -> Solution<W> {
    let t0 = std::time::Instant::now();
    let n = problem.n();
    let exec = &config.exec;
    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);

    // Initialize w'(i, i+1) = init(i); everything else infinity.
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    // Warm start: copy the cached optimal prefix cells into place.
    if let Some((m, sw)) = seed {
        for i in 0..m {
            for j in i + 1..=m {
                w.set(i, j, sw.get(i, j));
            }
        }
    }
    // Initialize pw'(i,j,i,j) = 0; everything else infinity.
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();

    let mut trace = SolveTrace {
        n,
        iterations: 0,
        schedule_bound: schedule,
        stop: StopReason::ScheduleExhausted,
        total_candidates: 0,
        per_iteration: Vec::new(),
    };
    let mut w_stable_streak = 0u32;
    let mut stats = OpStats::default();

    // Dirty-row scheduling state: which pw rows the previous square
    // changed, which pairs the previous pebble improved, and scratch
    // masks for the skip decisions.
    let dim = pw.dim();
    let mut square_changed_rows = vec![true; dim];
    let mut w_changed_pairs = vec![true; dim];
    let mut skip_mask = vec![false; dim];
    let mut pebble_skip_mask = vec![false; dim];
    // Warm start: seeded pairs are final from iteration 1 — exclude them
    // from every pebble (their square rows still run; partial weights of
    // prefix pairs feed the compositions of bigger pairs).
    let final_pairs: Option<Vec<bool>> = seed.map(|(m, _)| {
        pw.indexer()
            .pairs()
            .map(|(_, j)| j <= m)
            .collect::<Vec<bool>>()
    });

    for iter in 1..=schedule {
        if cancel.is_cancelled() {
            trace.stop = StopReason::DeadlineExceeded;
            break;
        }
        let (act, activate_changed_rows) = a_activate_dense_tracked(problem, &w, &mut pw, exec);
        // Row (i,j) of the square reads exactly the rows nested in (i,j)
        // of pw-after-activate. That input row c is unchanged since the
        // previous iteration iff neither the previous square nor this
        // activate touched it; if every input row is unchanged, the
        // square's output row is reproduced verbatim — copy it instead.
        let skip = if config.skip_clean_rows && iter > 1 {
            for a in 0..dim {
                skip_mask[a] = activate_changed_rows[a] || square_changed_rows[a];
            }
            pw.indexer().propagate_nested(&mut skip_mask);
            for dirty in skip_mask.iter_mut() {
                *dirty = !*dirty; // clean rows are the skippable ones
            }
            Some(skip_mask.as_slice())
        } else {
            None
        };
        let (sq, sq_rows) = a_square_dense_scheduled(&pw, &mut pw_next, config.square, skip, exec);
        square_changed_rows = sq_rows;
        std::mem::swap(&mut pw, &mut pw_next);
        // Pebble pair (i,j) reads its pw row (changed iff this
        // iteration's activate or square touched it) and the w' of its
        // nested pairs (changed iff the previous pebble improved them);
        // pairs with no changed input since their last re-minimisation
        // would reproduce their current value, so copy them instead.
        let pebble_skip = if config.skip_clean_rows && iter > 1 {
            for a in 0..dim {
                pebble_skip_mask[a] =
                    activate_changed_rows[a] || square_changed_rows[a] || w_changed_pairs[a];
            }
            pw.indexer().propagate_nested(&mut pebble_skip_mask);
            for dirty in pebble_skip_mask.iter_mut() {
                *dirty = !*dirty;
            }
            if let Some(fm) = &final_pairs {
                for (skip, f) in pebble_skip_mask.iter_mut().zip(fm) {
                    *skip |= *f;
                }
            }
            Some(pebble_skip_mask.as_slice())
        } else if let Some(fm) = &final_pairs {
            pebble_skip_mask.copy_from_slice(fm);
            Some(pebble_skip_mask.as_slice())
        } else {
            None
        };
        let (pb, pb_pairs) = a_pebble_dense_scheduled(&pw, &w, &mut w_next, pebble_skip, exec);
        w_changed_pairs = pb_pairs;
        std::mem::swap(&mut w, &mut w_next);

        trace.iterations = iter;
        trace.total_candidates += act.candidates + sq.candidates + pb.candidates;
        stats = stats.merge(act).merge(sq).merge(pb);
        if config.record_trace {
            trace.per_iteration.push(IterationRecord {
                iteration: iter,
                activate: act.into(),
                square: sq.into(),
                pebble: pb.into(),
                root_finite: w.root().is_finite_cost(),
            });
        }

        match config.termination {
            Termination::FixedSqrtN => {}
            Termination::Fixpoint => {
                if !act.changed && !sq.changed && !pb.changed {
                    trace.stop = StopReason::Fixpoint;
                    break;
                }
            }
            Termination::WStableTwice => {
                if pb.changed {
                    w_stable_streak = 0;
                } else {
                    w_stable_streak += 1;
                    if w_stable_streak >= 2 {
                        trace.stop = StopReason::WStable;
                        break;
                    }
                }
            }
        }
    }

    Solution {
        algorithm: Algorithm::Sublinear,
        w,
        trace,
        stats,
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::seq::solve_sequential;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    fn cfg(term: Termination) -> SolverConfig {
        SolverConfig {
            exec: ExecBackend::Sequential,
            termination: term,
            record_trace: true,
            square: SquareStrategy::Auto,
            // Off so the work-accounting assertions below see full sweeps;
            // the skip_* tests cover the scheduler.
            skip_clean_rows: false,
        }
    }

    #[test]
    fn solves_clrs_chain_exactly() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let sol = solve_sublinear(&p, &cfg(Termination::FixedSqrtN));
        assert_eq!(sol.value(), 15125);
        assert!(sol.w.table_eq(&solve_sequential(&p)));
        assert_eq!(sol.trace.iterations, sol.trace.schedule_bound);
    }

    #[test]
    fn all_terminations_agree_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(31337);
        for n in [1usize, 2, 3, 5, 9, 14, 20] {
            for _ in 0..4 {
                let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..40)).collect();
                let p = chain(dims);
                let oracle = solve_sequential(&p);
                for term in [
                    Termination::FixedSqrtN,
                    Termination::Fixpoint,
                    Termination::WStableTwice,
                ] {
                    let sol = solve_sublinear(&p, &cfg(term));
                    assert!(sol.w.table_eq(&oracle), "n={n} {term:?}");
                    assert!(sol.trace.iterations <= sol.trace.schedule_bound);
                }
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut rng = SmallRng::seed_from_u64(55);
        let dims: Vec<u64> = (0..=18).map(|_| rng.gen_range(1..30)).collect();
        let p = chain(dims);
        let seq = solve_sublinear(&p, &cfg(Termination::FixedSqrtN));
        let par = solve_sublinear(
            &p,
            &SolverConfig {
                exec: ExecBackend::Parallel,
                termination: Termination::FixedSqrtN,
                record_trace: false,
                ..Default::default()
            },
        );
        assert!(seq.w.table_eq(&par.w));
        assert_eq!(seq.trace.iterations, par.trace.iterations);
    }

    #[test]
    fn skip_clean_rows_is_exact_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(2026);
        for n in [2usize, 5, 9, 16, 24] {
            for term in [Termination::FixedSqrtN, Termination::Fixpoint] {
                let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..40)).collect();
                let p = chain(dims);
                let base = solve_sublinear(&p, &cfg(term));
                for (square, exec) in [
                    (SquareStrategy::Auto, ExecBackend::Sequential),
                    (SquareStrategy::Naive, ExecBackend::Sequential),
                    (SquareStrategy::Tiled(5), ExecBackend::Sequential),
                    (SquareStrategy::Auto, ExecBackend::Threads(4)),
                ] {
                    let skipping = solve_sublinear(
                        &p,
                        &SolverConfig {
                            exec,
                            termination: term,
                            record_trace: true,
                            square,
                            skip_clean_rows: true,
                        },
                    );
                    assert!(skipping.w.table_eq(&base.w), "n={n} {term:?} {square}");
                    assert_eq!(
                        skipping.trace.iterations, base.trace.iterations,
                        "n={n} {term:?} {square}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_clean_rows_saves_square_work() {
        // Uniform dims converge fast; under the fixed schedule the
        // post-convergence iterations must skip every row, so the total
        // square candidates are strictly below the full-sweep figure.
        let p = chain(vec![3u64; 50]); // n = 49, schedule bound 14
        let full = solve_sublinear(&p, &cfg(Termination::FixedSqrtN));
        let skipping = solve_sublinear(
            &p,
            &SolverConfig {
                skip_clean_rows: true,
                ..cfg(Termination::FixedSqrtN)
            },
        );
        assert!(skipping.w.table_eq(&full.w));
        let (_, sq_full, _) = full.trace.work_by_op();
        let (_, sq_skip, _) = skipping.trace.work_by_op();
        assert!(
            2 * sq_skip < sq_full,
            "skip saved too little: {sq_skip} vs {sq_full}"
        );
        // The final recorded iteration does no square work at all.
        let last = skipping.trace.per_iteration.last().unwrap();
        assert_eq!(last.square.candidates, 0);
        assert_eq!(last.square.writes, 0);
    }

    #[test]
    fn fixpoint_stops_early_on_easy_instances() {
        // Uniform dims make balanced decompositions optimal: convergence
        // in O(log n) iterations, well under 2*ceil(sqrt(n)).
        let p = chain(vec![2u64; 65]); // n = 64, schedule bound 16
        let sol = solve_sublinear(&p, &cfg(Termination::Fixpoint));
        assert_eq!(sol.trace.stop, StopReason::Fixpoint);
        assert!(
            sol.trace.iterations < sol.trace.schedule_bound,
            "expected early stop: {} < {}",
            sol.trace.iterations,
            sol.trace.schedule_bound
        );
        assert!(sol.w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn trace_candidate_totals_are_consistent() {
        let p = chain(vec![3, 5, 7, 2, 8, 4]);
        let sol = solve_sublinear(&p, &cfg(Termination::FixedSqrtN));
        let (a, s, pb) = sol.trace.work_by_op();
        assert_eq!(a + s + pb, sol.trace.total_candidates);
        assert_eq!(sol.trace.per_iteration.len() as u64, sol.trace.iterations);
        // Square dominates the work, as the analysis says (§4).
        assert!(s > a && s > pb);
    }

    #[test]
    fn float_instance_converges_to_reference() {
        let mut rng = SmallRng::seed_from_u64(77);
        let dims: Vec<f64> = (0..=12).map(|_| rng.gen_range(0.5..8.0)).collect();
        let n = dims.len() - 1;
        let p = FnProblem::new(n, |_| 0.0f64, move |i, k, j| dims[i] * dims[k] * dims[j]);
        let sol = solve_sublinear(&p, &cfg(Termination::FixedSqrtN));
        let oracle = solve_sequential(&p);
        assert!(sol.w.table_eq(&oracle));
    }

    #[test]
    fn n_equals_one_is_trivial() {
        let p = FnProblem::new(1, |_| 5u64, |_, _, _| 0u64);
        let sol = solve_sublinear(&p, &cfg(Termination::FixedSqrtN));
        assert_eq!(sol.value(), 5);
    }
}
