//! `pardp serve`: a persistent solving daemon over the JSONL wire API.
//!
//! The batch subsystem (PR 5) amortises scheduling across one job file;
//! this module amortises *process startup* across an entire session — a
//! long-running ingress loop for the ROADMAP's many-users north star.
//! It is std-only (threads, channels, condvars; no async runtime): a
//! thread-per-connection accept loop feeds a bounded MPMC job queue,
//! which a fixed pool of workers drains through the [`Solver`] façade.
//!
//! ## Protocol (newline-delimited JSON, request order preserved)
//!
//! Requests are [`JobSpec`] lines — the exact schema `pardp batch`
//! reads — plus two commands:
//!
//! ```json
//! {"family":"chain","values":[30,35,15,5,10,20,25]}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses come back **in request order**, one line per request: a
//! [`JobRecord`] for a solved job, `{"job":i,"error":"..."}` for a
//! rejected or failed one, `{"stats":{...}}` ([`ServeStats`]) for
//! `stats`, and `{"ok":"shutdown"}` for `shutdown`. Responses are
//! bit-identical to `pardp batch` on the same job lines, except the
//! nondeterministic `wall_seconds` field (see
//! [`JobRecord::deterministic`]).
//!
//! ## Backpressure and admission
//!
//! The queue is bounded ([`ServeConfig::queue_capacity`]): when it is
//! full, a job is rejected *immediately* with
//! `{"job":i,"error":"overloaded"}` rather than buffered without bound —
//! a loaded daemon stays responsive and honest. Jobs above
//! [`ServeConfig::max_cells`] (or [`ServeConfig::max_dense_cells`] for
//! the dense-table algorithms, whose `pw` table is quadratic in the cell
//! count) are rejected at admission, before they can wedge the pool.
//!
//! ## The regime gate
//!
//! Workers classify each job by the batch subsystem's small/large
//! `w`-table-cell split ([`ServeConfig::large_job_cells`]) and hold a
//! readers-writer gate while solving: small jobs (readers) run
//! concurrently, one sequential solve per worker; a large job (writer)
//! runs alone with the pool backend capped at the worker count. Inner ×
//! outer parallelism therefore never multiplies — the daemon never has
//! more runnable solver threads than workers, the same oversubscription
//! rule [`BatchSolver`](crate::batch::BatchSolver) enforces by phasing.
//!
//! ## Failure hardening
//!
//! Partial failure never takes the daemon down (see [`crate::fault`]
//! for the full taxonomy and the chaos-test harness):
//!
//! * every job runs under `catch_unwind` — a panicking solve yields an
//!   `internal` error line, ticks [`ServeStats::panics`], and the
//!   worker (and any lock the panic poisoned) keeps going;
//! * [`ServeConfig::job_timeout`] cancels a long solve cooperatively
//!   ([`SolveOptions::deadline`]) — the job answers with a `timeout`
//!   error line, releases the regime gate, and its partial table is
//!   never cached;
//! * cache backend failures degrade to misses behind a
//!   [`ResilientCache`] ([`ServeStats::cache_errors`]), with the
//!   backend disabled after a bounded failure budget;
//! * request lines longer than [`ServeConfig::max_line_bytes`] are
//!   rejected without being buffered, and TCP connections idle longer
//!   than [`ServeConfig::idle_timeout`] are dropped.
//!
//! Every error line carries a machine-readable `kind` field
//! ([`ErrorKind`]): `{"job":i,"error":"...","kind":"timeout"}`.
//!
//! ## Shutdown
//!
//! `{"cmd":"shutdown"}` (or [`Server::shutdown`], which the CLI wires to
//! SIGINT) stops admission — new jobs get `{"job":i,"error":"shutting
//! down...","kind":"rejected"}` — and **drains**: every accepted job is
//! still solved and its response written before workers exit.
//!
//! ## Migration note for batch users
//!
//! The job schema is [`crate::spec`], shared verbatim: a `jobs.jsonl`
//! that works with `pardp batch` streams unchanged through
//! `pardp serve --pipe`, and the result lines differ only in
//! `wall_seconds`. Library users construct [`JobSpec`] values (or
//! [`ProblemSpec`]s) instead of private CLI
//! types.
//!
//! ```
//! use pardp_core::serve::{serve_pipe, ServeConfig};
//!
//! let input = "{\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n\
//!              {\"cmd\":\"stats\"}\n";
//! let mut out = Vec::new();
//! let stats = serve_pipe(input.as_bytes(), &mut out, &ServeConfig::default());
//! let text = String::from_utf8(out).unwrap();
//! assert!(text.lines().next().unwrap().contains("\"value\":15125"));
//! assert_eq!(stats.completed, 1);
//! ```

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::batch::DEFAULT_LARGE_JOB_CELLS;
use crate::exec::ExecBackend;
use crate::fault::{unpoison, FaultPlan, FaultSite};
use crate::solver::{Algorithm, SolveOptions, Solver};
use crate::spec::{
    error_record, verify_knuth, ErrorKind, JobRecord, JobSpec, ProblemSpec, SpecProblem,
};
use crate::store::{cached_solve, CacheOutcome, ResilientCache, SolutionCache};
use crate::telemetry::{EventKind, LatencyHistogram, Telemetry};
use crate::trace::Termination;

/// Default bound of the job queue: submissions beyond this many waiting
/// jobs are rejected with `overloaded`.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default admission cap in `w`-table cells (`n(n+1)/2`; n = 512). Jobs
/// above it are rejected — a daemon must bound per-job memory, unlike a
/// one-shot batch run.
pub const DEFAULT_MAX_CELLS: usize = 512 * 513 / 2;

/// Default admission cap for the dense-table algorithms (sublinear §2,
/// Rytter), whose `pw` table is *quadratic* in the cell count (n = 96 ⇒
/// ~4.7k cells ⇒ ~22M `pw` entries). Larger instances should use the
/// banded §5 solver or a sequential baseline.
pub const DEFAULT_MAX_DENSE_CELLS: usize = 96 * 97 / 2;

/// Default cap on one request line in bytes (1 MiB). A line longer than
/// this is rejected with kind `rejected` and discarded without being
/// buffered — a client cannot make the daemon hold an unbounded line.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Configuration of the daemon. The defaults match `pardp batch`
/// (parallel pool, sublinear default algorithm, fixpoint stop, the batch
/// regime threshold), so responses agree bit-for-bit with a batch run of
/// the same lines.
#[derive(Clone)]
pub struct ServeConfig {
    /// The worker pool the daemon drains jobs over; the worker count is
    /// `exec.effective_threads()`.
    pub exec: ExecBackend,
    /// Algorithm for jobs without an `"algo"` field.
    pub default_algo: Algorithm,
    /// Base options every job starts from (per-job fields override).
    pub options: SolveOptions,
    /// Bound of the job queue (≥ 1; see [`DEFAULT_QUEUE_CAPACITY`]).
    pub queue_capacity: usize,
    /// The small/large regime threshold in `w`-table cells.
    pub large_job_cells: usize,
    /// Admission cap in `w`-table cells for every algorithm.
    pub max_cells: usize,
    /// Admission cap for the dense-table algorithms (sublinear, rytter).
    pub max_dense_cells: usize,
    /// Optional solution cache shared by every worker (`None` solves
    /// every job cold — the default, bit-identical to `pardp batch`).
    /// The daemon wraps it in a [`ResilientCache`], so backend failures
    /// degrade to misses instead of failing jobs; cache traffic shows up
    /// in [`ServeStats::cache_hits`] / [`ServeStats::cache_misses`] /
    /// [`ServeStats::warm_starts`] / [`ServeStats::cache_errors`].
    pub cache: Option<Arc<dyn SolutionCache>>,
    /// Per-job wall-clock deadline: a job still solving this long after
    /// it is picked up is cancelled cooperatively (see
    /// [`SolveOptions::deadline`]) and answered with a `timeout` error
    /// line. `None` (the default) never times out.
    pub job_timeout: Option<Duration>,
    /// Per-connection idle read timeout (TCP only): a connection that
    /// sends nothing for this long is dropped. `None` (the default)
    /// waits forever.
    pub idle_timeout: Option<Duration>,
    /// Cap on one request line in bytes
    /// ([`DEFAULT_MAX_LINE_BYTES`]); longer lines are rejected and
    /// discarded without being buffered.
    pub max_line_bytes: usize,
    /// Deterministic fault-injection plan for chaos tests (see
    /// [`crate::fault`]). `None` — the default and the production
    /// setting — injects nothing and costs one pointer check per site.
    pub fault: Option<Arc<FaultPlan>>,
    /// Structured event stream (see [`crate::telemetry`]). `None` — the
    /// default — emits nothing, constructs no events, and leaves every
    /// response byte-identical to an un-instrumented daemon; the CLI
    /// wires `--log <path|->` here.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("exec", &self.exec)
            .field("default_algo", &self.default_algo)
            .field("options", &self.options)
            .field("queue_capacity", &self.queue_capacity)
            .field("large_job_cells", &self.large_job_cells)
            .field("max_cells", &self.max_cells)
            .field("max_dense_cells", &self.max_dense_cells)
            .field("cache", &self.cache.as_ref().map(|c| c.len()))
            .field("job_timeout", &self.job_timeout)
            .field("idle_timeout", &self.idle_timeout)
            .field("max_line_bytes", &self.max_line_bytes)
            .field("fault", &self.fault)
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            exec: ExecBackend::Parallel,
            default_algo: Algorithm::Sublinear,
            options: SolveOptions::default().termination(Termination::Fixpoint),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            large_job_cells: DEFAULT_LARGE_JOB_CELLS,
            max_cells: DEFAULT_MAX_CELLS,
            max_dense_cells: DEFAULT_MAX_DENSE_CELLS,
            cache: None,
            job_timeout: None,
            idle_timeout: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            fault: None,
            telemetry: None,
        }
    }
}

/// A point-in-time snapshot of the daemon's counters — the response body
/// of `{"cmd":"stats"}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs rejected (queue full, admission caps, shutdown).
    pub rejected: u64,
    /// Request lines that were not valid jobs (bad JSON, bad spec).
    pub invalid: u64,
    /// Jobs picked up by a worker and answered — including jobs that
    /// panicked or timed out, which get an error line instead of a
    /// record. At drain, `completed == accepted`.
    pub completed: u64,
    /// Completed jobs that ran whole-problem-per-worker.
    pub completed_small: u64,
    /// Completed jobs that ran on the parallel per-problem path.
    pub completed_large: u64,
    /// Completed jobs served straight from the solution cache.
    pub cache_hits: u64,
    /// Completed jobs that missed the cache (warm starts included;
    /// always zero when no cache is configured).
    pub cache_misses: u64,
    /// Missed jobs seeded from a cached prefix table.
    pub warm_starts: u64,
    /// Jobs whose solve panicked; each was isolated at the job boundary
    /// and answered with an `internal` error line.
    pub panics: u64,
    /// Jobs cancelled at their [`ServeConfig::job_timeout`] deadline and
    /// answered with a `timeout` error line.
    pub timeouts: u64,
    /// Solution-cache backend failures tolerated so far (each degraded
    /// the affected job to a cold solve; see
    /// [`ResilientCache::errors`]).
    pub cache_errors: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// The deepest the queue has ever been — how close the daemon came
    /// to its `overloaded` bound.
    pub queue_high_watermark: u64,
    /// Error lines answered with kind `invalid` (bad JSON, bad spec).
    pub errors_invalid: u64,
    /// Error lines answered with kind `rejected` (admission caps,
    /// oversized lines, shutdown) — the overloaded ones counted apart.
    pub errors_rejected: u64,
    /// Error lines answered with kind `overloaded` (queue full).
    pub errors_overloaded: u64,
    /// Error lines answered with kind `timeout` (deadline passed).
    pub errors_timeout: u64,
    /// Error lines answered with kind `internal` (isolated panics).
    pub errors_internal: u64,
    /// Median answer latency (admission → reply) in microseconds, from
    /// the lock-free log₂ histogram ([`LatencyHistogram`]) — exact to
    /// within its 2× bucket resolution, like the other two percentiles.
    pub latency_p50_us: u64,
    /// 90th-percentile answer latency in microseconds.
    pub latency_p90_us: u64,
    /// 99th-percentile answer latency in microseconds.
    pub latency_p99_us: u64,
    /// Total work (candidate relaxations) across completed solves — see
    /// the Work/Span discussion in [`crate::trace`].
    pub work: u64,
    /// Total estimated span (critical-path depth) across completed
    /// solves ([`crate::trace::SolveTrace::span_estimate`]).
    pub span: u64,
    /// Work attributable to `a-activate` (nonzero only for jobs run
    /// with per-iteration trace recording).
    pub work_activate: u64,
    /// Work attributable to `a-square` (same caveat).
    pub work_square: u64,
    /// Work attributable to `a-pebble` (same caveat).
    pub work_pebble: u64,
    /// The configured queue bound.
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Seconds since the daemon started.
    pub uptime_seconds: f64,
    /// Small-regime jobs completed per second of uptime.
    pub small_per_second: f64,
    /// Large-regime jobs completed per second of uptime.
    pub large_per_second: f64,
}

/// Atomic counters, incremented lock-free from every thread.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    invalid: AtomicU64,
    completed: AtomicU64,
    completed_small: AtomicU64,
    completed_large: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    warm_starts: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    /// Rejections whose kind was specifically `overloaded` (these also
    /// tick `rejected`, the aggregate).
    overloaded: AtomicU64,
    queue_high_watermark: AtomicU64,
    work: AtomicU64,
    span: AtomicU64,
    work_activate: AtomicU64,
    work_square: AtomicU64,
    work_pebble: AtomicU64,
    /// Admission-to-reply latency of every answered job, in µs. Always
    /// on: recording is one relaxed atomic increment.
    latency: LatencyHistogram,
}

/// One queued job: a resolved, admitted request plus its reply slot.
struct Job {
    index: usize,
    family: &'static str,
    /// The validated spec — the cache identity (built instances carry
    /// prefix sums, not the canonical payload).
    spec: ProblemSpec,
    problem: SpecProblem,
    algorithm: Algorithm,
    options: SolveOptions,
    large: bool,
    /// When the job passed admission — the latency clock's zero.
    accepted: Instant,
    reply: mpsc::Sender<String>,
}

/// State shared by the accept loop, connections, and workers.
struct Shared {
    config: ServeConfig,
    workers: usize,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    /// The oversubscription gate: small jobs hold it shared, large jobs
    /// exclusively (see the module docs).
    regime: RwLock<()>,
    /// The configured cache behind the failure-tolerant wrapper: backend
    /// errors degrade to misses and a dying backend is disabled after
    /// its failure budget.
    cache: Option<Arc<ResilientCache>>,
    started: Instant,
}

impl Shared {
    fn new(config: ServeConfig) -> Self {
        Shared {
            workers: config.exec.effective_threads(),
            cache: config
                .cache
                .clone()
                .map(|c| Arc::new(ResilientCache::new(c))),
            config,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            regime: RwLock::new(()),
            started: Instant::now(),
        }
    }

    /// Stop admission and wake every worker so the queue drains.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Take the queue lock so no worker misses the flag between its
        // empty-check and its condvar wait.
        let _q = unpoison(self.queue.lock());
        self.not_empty.notify_all();
    }

    /// Emit a telemetry event if a stream is configured; free otherwise.
    fn emit(&self, kind: EventKind) {
        if let Some(tel) = &self.config.telemetry {
            tel.emit(kind);
        }
    }

    /// Emit the final `summary` event from the drained counters and
    /// flush the sink — the machine-readable twin of the CLI's stderr
    /// drain line. Called once per session, after the queue drains.
    fn emit_summary(&self) {
        if self.config.telemetry.is_none() {
            return;
        }
        let stats = self.stats();
        self.emit(EventKind::Summary {
            accepted: stats.accepted,
            rejected: stats.rejected,
            invalid: stats.invalid,
            completed: stats.completed,
            completed_small: stats.completed_small,
            completed_large: stats.completed_large,
            panics: stats.panics,
            timeouts: stats.timeouts,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            warm_starts: stats.warm_starts,
            cache_errors: stats.cache_errors,
        });
        if let Some(tel) = &self.config.telemetry {
            tel.flush();
        }
    }

    /// Try to enqueue a job; the error is the wire error kind + message.
    fn submit(&self, job: Job) -> Result<(), (ErrorKind, String)> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err((
                ErrorKind::Rejected,
                "shutting down: new jobs are rejected while the queue drains".into(),
            ));
        }
        let mut q = unpoison(self.queue.lock());
        if q.len() >= self.config.queue_capacity {
            return Err((ErrorKind::Overloaded, "overloaded".into()));
        }
        // Emitted while the queue lock is still held: no worker can pop
        // this job (and emit its `regime` event) before `admitted` is in
        // the stream, so per-job chains stay ordered.
        self.emit(EventKind::Admitted {
            job: job.index as u64,
        });
        q.push_back(job);
        let depth = q.len() as u64;
        // Ticked while the queue lock is still held: a worker can only
        // observe (and complete) this job after taking the same lock, so
        // no stats snapshot can transiently report `completed` ahead of
        // `accepted`, and the watermark is exact rather than racing the
        // push it describes.
        self.counters
            .queue_high_watermark
            .fetch_max(depth, Ordering::Relaxed);
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.not_empty.notify_one();
        Ok(())
    }

    fn stats(&self) -> ServeStats {
        let c = &self.counters;
        let completed = c.completed.load(Ordering::Relaxed);
        let completed_small = c.completed_small.load(Ordering::Relaxed);
        let completed_large = c.completed_large.load(Ordering::Relaxed);
        let rejected = c.rejected.load(Ordering::Relaxed);
        let overloaded = c.overloaded.load(Ordering::Relaxed);
        let invalid = c.invalid.load(Ordering::Relaxed);
        let panics = c.panics.load(Ordering::Relaxed);
        let timeouts = c.timeouts.load(Ordering::Relaxed);
        // `accepted` is loaded *inside* the queue critical section and
        // strictly after the `completed` load above. Every completed
        // tick we just observed is sequenced after its job's pop (under
        // this same mutex), whose submit critical section ticked
        // `accepted` — and those sections all happen-before this
        // acquire. So a snapshot can never report completed > accepted,
        // keeping mid-run stats consistent with the drain guarantee.
        let (queue_depth, accepted) = {
            let q = unpoison(self.queue.lock());
            (q.len(), c.accepted.load(Ordering::Relaxed))
        };
        let uptime = self.started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        ServeStats {
            accepted,
            rejected,
            invalid,
            completed,
            completed_small,
            completed_large,
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            warm_starts: c.warm_starts.load(Ordering::Relaxed),
            panics,
            timeouts,
            cache_errors: self.cache.as_ref().map_or(0, |c| c.errors()),
            queue_depth,
            queue_high_watermark: c.queue_high_watermark.load(Ordering::Relaxed),
            errors_invalid: invalid,
            errors_rejected: rejected.saturating_sub(overloaded),
            errors_overloaded: overloaded,
            errors_timeout: timeouts,
            errors_internal: panics,
            latency_p50_us: c.latency.percentile(0.50),
            latency_p90_us: c.latency.percentile(0.90),
            latency_p99_us: c.latency.percentile(0.99),
            work: c.work.load(Ordering::Relaxed),
            span: c.span.load(Ordering::Relaxed),
            work_activate: c.work_activate.load(Ordering::Relaxed),
            work_square: c.work_square.load(Ordering::Relaxed),
            work_pebble: c.work_pebble.load(Ordering::Relaxed),
            queue_capacity: self.config.queue_capacity,
            workers: self.workers,
            uptime_seconds: uptime,
            small_per_second: completed_small as f64 / uptime,
            large_per_second: completed_large as f64 / uptime,
        }
    }
}

/// Worker: pop jobs until shutdown is flagged *and* the queue is empty —
/// the drain guarantee.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = unpoison(shared.queue.lock());
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = unpoison(shared.not_empty.wait(q));
            }
        };
        match job {
            Some(j) => run_job(shared, j),
            None => return,
        }
    }
}

/// Inject a worker panic when the plan schedules one — called inside
/// the regime gate, before the solve, so the recovery path exercises
/// both the gate release and the `catch_unwind` boundary. The `fault`
/// event is emitted before unwinding starts, so chaos streams show the
/// injection site ahead of the resulting `panic` event.
fn maybe_panic(shared: &Shared, job_index: usize) {
    if let Some(plan) = &shared.config.fault {
        if plan.should(FaultSite::WorkerPanic) {
            shared.emit(EventKind::Fault {
                job: job_index as u64,
                site: FaultSite::WorkerPanic.name(),
            });
            panic!("injected worker panic");
        }
    }
}

/// Solve one job under its regime and write its response line into the
/// reply slot. A panicking solve is isolated here — the worker survives,
/// the client gets an `internal` error line — and a job that outlives
/// [`ServeConfig::job_timeout`] is cancelled cooperatively and answered
/// with a `timeout` error line.
fn run_job(shared: &Shared, job: Job) {
    // The deadline clock starts when a worker picks the job up, not at
    // admission: queue wait is backpressure, not solve time.
    let deadline = shared.config.job_timeout.map(|t| Instant::now() + t);
    shared.emit(EventKind::Regime {
        job: job.index as u64,
        large: job.large,
    });
    if let Some(plan) = &shared.config.fault {
        if plan.should(FaultSite::JobDelay) {
            shared.emit(EventKind::Fault {
                job: job.index as u64,
                site: FaultSite::JobDelay.name(),
            });
            thread::sleep(plan.injected_delay());
        }
    }
    // The two regimes mirror `BatchSolver::solve_batch` exactly — same
    // backend overrides, so the solved tables are bit-identical. With a
    // cache configured, the staged solve (key → lookup → warm-probe →
    // solve → insert) runs *inside* the regime gate: a hit skips the
    // kernels entirely but still respects response ordering. The gate
    // guard lives inside the catch_unwind closure, so a panicking solve
    // releases (and `unpoison` later recovers) the gate on unwind.
    let solved = catch_unwind(AssertUnwindSafe(|| {
        if job.large {
            let _gate = unpoison(shared.regime.write());
            maybe_panic(shared, job.index);
            let opts = job
                .options
                .exec(job.options.exec.capped(shared.workers))
                .deadline(deadline);
            solve_maybe_cached(shared, &job, opts)
        } else {
            let _gate = unpoison(shared.regime.read());
            maybe_panic(shared, job.index);
            let opts = job.options.exec(ExecBackend::Sequential).deadline(deadline);
            solve_maybe_cached(shared, &job, opts)
        }
    }));
    let line = match solved {
        Err(_) => {
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            shared.emit(EventKind::Panic {
                job: job.index as u64,
            });
            error_record(
                job.index,
                ErrorKind::Internal,
                "internal: the solve panicked; the job was isolated and the daemon continues",
            )
        }
        Ok((solution, outcome)) if solution.timed_out() => {
            // The partial table is discarded (the cache layer never
            // stores a timed-out solution) and cache counters are left
            // alone — the outcome is Bypass by construction.
            debug_assert_eq!(outcome, CacheOutcome::Bypass);
            shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            shared.emit(EventKind::Timeout {
                job: job.index as u64,
            });
            error_record(
                job.index,
                ErrorKind::Timeout,
                "timeout: the job's deadline passed before the solve completed; \
                 the partial result was discarded",
            )
        }
        Ok((solution, outcome)) => {
            match outcome {
                CacheOutcome::Hit => {
                    shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                CacheOutcome::Warm { .. } => {
                    shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                    shared.counters.warm_starts.fetch_add(1, Ordering::Relaxed);
                }
                CacheOutcome::Miss => {
                    shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                }
                CacheOutcome::Bypass => {}
            }
            shared.emit(EventKind::Cache {
                job: job.index as u64,
                outcome: outcome.name(),
            });
            // Work/Span accounting: the trace always carries the total
            // (work); the per-op split is nonzero only for jobs run with
            // trace recording (see `SolveTrace::work_by_op`).
            let ws = solution.work_span();
            let (wa, wsq, wp) = solution.trace.work_by_op();
            let c = &shared.counters;
            c.work.fetch_add(ws.work, Ordering::Relaxed);
            c.span.fetch_add(ws.span, Ordering::Relaxed);
            c.work_activate.fetch_add(wa, Ordering::Relaxed);
            c.work_square.fetch_add(wsq, Ordering::Relaxed);
            c.work_pebble.fetch_add(wp, Ordering::Relaxed);
            // Knuth is never cached (`ProblemKey::derive` bypasses it),
            // so a cache path cannot skip this verification.
            match verify_knuth(&job.problem, &solution) {
                Ok(()) => {
                    shared.emit(EventKind::Completed {
                        job: job.index as u64,
                        wall_us: solution.wall.as_micros() as u64,
                        value: solution.value(),
                    });
                    let record =
                        JobRecord::of_solution(job.index, job.family, &solution, job.large);
                    serde_json::to_string(&record).expect("record serializes")
                }
                Err(e) => {
                    shared.emit(EventKind::Rejected {
                        job: job.index as u64,
                        kind: ErrorKind::Invalid.name(),
                    });
                    error_record(job.index, ErrorKind::Invalid, &e.0)
                }
            }
        }
    };
    let c = &shared.counters;
    c.latency.record(job.accepted.elapsed().as_micros() as u64);
    c.completed.fetch_add(1, Ordering::Relaxed);
    if job.large {
        c.completed_large.fetch_add(1, Ordering::Relaxed);
    } else {
        c.completed_small.fetch_add(1, Ordering::Relaxed);
    }
    // The connection may already be gone; the job still counts as
    // completed (it was answered).
    job.reply.send(line).ok();
}

/// Solve one admitted job with `opts`, through the configured cache
/// (behind its resilient wrapper) when there is one.
fn solve_maybe_cached(
    shared: &Shared,
    job: &Job,
    opts: SolveOptions,
) -> (crate::solver::Solution<u64>, CacheOutcome) {
    match &shared.cache {
        Some(cache) => cached_solve(cache.as_ref(), &job.spec, job.algorithm, &opts),
        None => (
            Solver::new(job.algorithm).options(opts).solve(&job.problem),
            CacheOutcome::Bypass,
        ),
    }
}

/// `{"error":"...","kind":"..."}` — command-level errors with no job
/// index.
#[derive(Serialize)]
struct CmdError {
    error: String,
    kind: String,
}

/// `{"stats":{...}}`.
#[derive(Serialize)]
struct StatsLine {
    stats: ServeStats,
}

/// `{"ok":"shutdown"}`.
#[derive(Serialize)]
struct ShutdownAck {
    ok: String,
}

/// One request line read under the byte cap.
enum LineRead {
    /// A complete line (terminator stripped, `\r\n` tolerated).
    Line(String),
    /// The line exceeded the cap; it was drained and discarded without
    /// being buffered.
    Oversized,
    /// Clean end of input.
    Eof,
}

/// Read one `\n`-terminated line, buffering at most `cap` bytes. A line
/// longer than `cap` is consumed to its terminator but never held in
/// memory — the defence [`ServeConfig::max_line_bytes`] promises. An
/// unterminated trailing line still counts (matching
/// [`BufRead::lines`]); a non-UTF-8 line or any read error (including
/// an idle-timeout expiry on a socket) is an `Err`.
fn read_line_capped<R: BufRead>(reader: &mut R, cap: usize) -> std::io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    let mut overflowed = false;
    let mut terminated = false;
    loop {
        let used = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                break; // EOF
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !overflowed {
                        line.extend_from_slice(&available[..pos]);
                    }
                    terminated = true;
                    pos + 1
                }
                None => {
                    if !overflowed {
                        line.extend_from_slice(available);
                    }
                    available.len()
                }
            }
        };
        reader.consume(used);
        if line.len() > cap {
            overflowed = true;
            line = Vec::new();
        }
        if terminated {
            break;
        }
    }
    if overflowed {
        return Ok(LineRead::Oversized);
    }
    if line.is_empty() && !terminated {
        return Ok(LineRead::Eof);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map(LineRead::Line).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "request line is not UTF-8")
    })
}

/// A response slot, queued in request order: a line that is ready now,
/// the receiver a worker will deliver one into, or a deferred stats
/// snapshot. `Stats` is taken when the writer *reaches* the slot, so a
/// stats response deterministically covers every request answered
/// before it on the same connection.
enum Slot {
    Line(String),
    Pending(mpsc::Receiver<String>),
    Stats,
}

/// Check a resolved job against the admission caps; the error is the
/// wire message.
fn admit(shared: &Shared, algorithm: Algorithm, cells: usize) -> Result<(), String> {
    let cfg = &shared.config;
    if cells > cfg.max_cells {
        return Err(format!(
            "job too large: {cells} w-table cells exceeds the admission cap {}",
            cfg.max_cells
        ));
    }
    if matches!(algorithm, Algorithm::Sublinear | Algorithm::Rytter) && cells > cfg.max_dense_cells
    {
        return Err(format!(
            "job too large for the dense-table '{algorithm}' solver: {cells} \
             w-table cells exceeds the dense admission cap {} (its pw table is \
             quadratic in the cell count); use the banded reduced solver or a \
             sequential baseline",
            cfg.max_dense_cells
        ));
    }
    Ok(())
}

/// Serve one connection: read JSONL requests, answer each in request
/// order. Jobs are pipelined — the reader keeps admitting while earlier
/// jobs solve — and a writer thread drains the response slots so order
/// is preserved without blocking admission.
///
/// Returns when the input ends, the connection drops or times out idle,
/// or a `shutdown` command arrives (which also stops the whole daemon).
fn handle_connection<R: BufRead, W: Write + Send>(shared: &Shared, mut reader: R, writer: W) {
    shared.emit(EventKind::ConnOpen);
    let (tx, rx) = mpsc::channel::<Slot>();
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut w = writer;
            for slot in rx {
                let line = match slot {
                    Slot::Line(s) => s,
                    Slot::Pending(reply) => reply.recv().unwrap_or_else(|_| {
                        serde_json::to_string(&CmdError {
                            error: "internal: worker dropped the reply".into(),
                            kind: ErrorKind::Internal.name().into(),
                        })
                        .expect("error serializes")
                    }),
                    Slot::Stats => serde_json::to_string(&StatsLine {
                        stats: shared.stats(),
                    })
                    .expect("stats serialize"),
                };
                if writeln!(w, "{line}").is_err() || w.flush().is_err() {
                    // Client gone: stop writing. Dropping the remaining
                    // receivers is safe — workers ignore dead replies.
                    return;
                }
            }
        });

        let mut job_index = 0usize;
        loop {
            let line = match read_line_capped(&mut reader, shared.config.max_line_bytes) {
                // Read errors cover a dropped peer, a non-UTF-8 line,
                // and the idle-timeout expiry on a socket — all close
                // the connection (accepted jobs still drain).
                Err(_) | Ok(LineRead::Eof) => break,
                Ok(LineRead::Oversized) => {
                    // An oversized line consumes a job index like any
                    // other malformed request, but its bytes were never
                    // buffered.
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    shared.emit(EventKind::Rejected {
                        job: job_index as u64,
                        kind: ErrorKind::Rejected.name(),
                    });
                    let msg = error_record(
                        job_index,
                        ErrorKind::Rejected,
                        &format!(
                            "request line exceeds the {}-byte cap and was discarded",
                            shared.config.max_line_bytes
                        ),
                    );
                    job_index += 1;
                    if tx.send(Slot::Line(msg)).is_err() {
                        break;
                    }
                    continue;
                }
                Ok(LineRead::Line(l)) => l,
            };
            if line.trim().is_empty() {
                continue;
            }
            let value = match serde_json::parse_value(&line) {
                Ok(v) => v,
                Err(e) => {
                    // A malformed line consumes a job index (the client
                    // meant *something* here) but never kills the loop.
                    shared.counters.invalid.fetch_add(1, Ordering::Relaxed);
                    shared.emit(EventKind::Rejected {
                        job: job_index as u64,
                        kind: ErrorKind::Invalid.name(),
                    });
                    let msg = error_record(
                        job_index,
                        ErrorKind::Invalid,
                        &format!("line is not a JSON job: {e}"),
                    );
                    job_index += 1;
                    if tx.send(Slot::Line(msg)).is_err() {
                        break;
                    }
                    continue;
                }
            };
            if let Some(serde::Value::Str(cmd)) = value.get("cmd") {
                let response = match cmd.as_str() {
                    "stats" => Slot::Stats,
                    "shutdown" => {
                        shared.begin_shutdown();
                        let ack = serde_json::to_string(&ShutdownAck {
                            ok: "shutdown".into(),
                        })
                        .expect("ack serializes");
                        tx.send(Slot::Line(ack)).ok();
                        break;
                    }
                    other => Slot::Line(
                        serde_json::to_string(&CmdError {
                            error: format!("unknown cmd '{other}' (expected stats | shutdown)"),
                            kind: ErrorKind::Invalid.name().into(),
                        })
                        .expect("error serializes"),
                    ),
                };
                if tx.send(response).is_err() {
                    break;
                }
                continue;
            }

            let index = job_index;
            job_index += 1;
            let slot = match JobSpec::from_value(&value)
                .map_err(|e| e.0)
                .and_then(|spec| {
                    spec.resolve(shared.config.default_algo, shared.config.options)
                        .map_err(|e| e.0)
                }) {
                Err(e) => {
                    shared.counters.invalid.fetch_add(1, Ordering::Relaxed);
                    shared.emit(EventKind::Rejected {
                        job: index as u64,
                        kind: ErrorKind::Invalid.name(),
                    });
                    Slot::Line(error_record(index, ErrorKind::Invalid, &e))
                }
                Ok(resolved) => {
                    let cells = resolved.problem.cells();
                    match admit(shared, resolved.algorithm, cells) {
                        Err(e) => {
                            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                            shared.emit(EventKind::Rejected {
                                job: index as u64,
                                kind: ErrorKind::Rejected.name(),
                            });
                            Slot::Line(error_record(index, ErrorKind::Rejected, &e))
                        }
                        Ok(()) => {
                            let (reply_tx, reply_rx) = mpsc::channel();
                            let job = Job {
                                index,
                                family: resolved.problem.family(),
                                problem: resolved.problem.build(),
                                spec: resolved.problem,
                                algorithm: resolved.algorithm,
                                options: resolved.options,
                                large: cells > shared.config.large_job_cells,
                                accepted: Instant::now(),
                                reply: reply_tx,
                            };
                            match shared.submit(job) {
                                Ok(()) => Slot::Pending(reply_rx),
                                Err((kind, e)) => {
                                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                                    if kind == ErrorKind::Overloaded {
                                        shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                                    }
                                    shared.emit(EventKind::Rejected {
                                        job: index as u64,
                                        kind: kind.name(),
                                    });
                                    Slot::Line(error_record(index, kind, &e))
                                }
                            }
                        }
                    }
                }
            };
            if tx.send(slot).is_err() {
                break;
            }
        }
        drop(tx); // writer drains the remaining slots, then exits
    });
    shared.emit(EventKind::ConnClose);
}

/// Run the daemon over an in-process reader/writer pair — stdin/stdout
/// pipe mode (`pardp serve --pipe`), CI harnesses, and tests. Spawns the
/// worker pool, serves the single connection to EOF (or `shutdown`),
/// drains every accepted job, and returns the final stats.
pub fn serve_pipe<R: BufRead, W: Write + Send>(
    reader: R,
    writer: W,
    config: &ServeConfig,
) -> ServeStats {
    let shared = Shared::new(config.clone());
    thread::scope(|scope| {
        for _ in 0..shared.workers {
            scope.spawn(|| worker_loop(&shared));
        }
        handle_connection(&shared, reader, writer);
        shared.begin_shutdown();
    });
    shared.emit_summary();
    shared.stats()
}

/// A running TCP daemon (`pardp serve --addr`): an accept loop, a worker
/// pool, and one thread per connection, all draining through the shared
/// bounded queue.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start accepting. The daemon
    /// runs until [`Server::shutdown`] / a client's `{"cmd":"shutdown"}`,
    /// then [`Server::join`] drains and collects it.
    pub fn bind(addr: &str, config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared::new(config.clone()));

        let workers = (0..shared.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            // Connection threads and a read-half handle to kick each
            // blocked reader loose at shutdown.
            let mut conns: Vec<(TcpStream, thread::JoinHandle<()>)> = Vec::new();
            while !accept_shared.shutdown.load(Ordering::SeqCst) {
                // Reap finished connections: joining drops the last clone
                // of the socket, so the client sees EOF as soon as its
                // session is done — a read-until-EOF client must not wait
                // for daemon shutdown — and a long-lived daemon does not
                // accumulate one fd per connection ever served.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].1.is_finished() {
                        let (kick, handle) = conns.swap_remove(i);
                        handle.join().ok();
                        drop(kick);
                    } else {
                        i += 1;
                    }
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        stream.set_nodelay(true).ok();
                        // A silent connection is dropped after the idle
                        // timeout: its next read fails, the handler
                        // exits, and the reaper frees the fd.
                        stream
                            .set_read_timeout(accept_shared.config.idle_timeout)
                            .ok();
                        let Ok(read_half) = stream.try_clone() else {
                            continue;
                        };
                        let Ok(kick) = stream.try_clone() else {
                            continue;
                        };
                        let conn_shared = Arc::clone(&accept_shared);
                        let handle = thread::spawn(move || {
                            handle_connection(&conn_shared, BufReader::new(read_half), stream);
                        });
                        conns.push((kick, handle));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
            // Unblock readers stuck in a socket read, then wait for each
            // connection to flush its remaining responses.
            for (kick, _) in &conns {
                kick.shutdown(Shutdown::Read).ok();
            }
            for (_, handle) in conns {
                handle.join().ok();
            }
        });

        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Begin graceful shutdown: stop admitting, drain the queue. Join
    /// with [`Server::join`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has begun (via [`Server::shutdown`] or a
    /// client's `{"cmd":"shutdown"}`).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Shut down (if not already begun), drain every accepted job, join
    /// all threads, and return the final stats.
    pub fn join(mut self) -> ServeStats {
        self.shared.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            accept.join().ok();
        }
        for w in self.workers.drain(..) {
            w.join().ok();
        }
        self.shared.emit_summary();
        self.shared.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe(input: &str, config: &ServeConfig) -> (Vec<String>, ServeStats) {
        let mut out = Vec::new();
        let stats = serve_pipe(input.as_bytes(), &mut out, config);
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(|l| l.to_string()).collect(), stats)
    }

    #[test]
    fn solves_jobs_and_reports_stats_in_request_order() {
        let input = "{\"family\":\"chain\",\"values\":[30,35,15,5,10,20,25]}\n\
                     {\"family\":\"merge\",\"values\":[10,20,30],\"algo\":\"wavefront\"}\n\
                     {\"cmd\":\"stats\"}\n";
        let (lines, stats) = pipe(input, &ServeConfig::default());
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("\"job\":0"), "{}", lines[0]);
        assert!(lines[0].contains("\"value\":15125"), "{}", lines[0]);
        assert!(lines[1].contains("\"job\":1"), "{}", lines[1]);
        assert!(lines[1].contains("\"value\":90"), "{}", lines[1]);
        assert!(lines[2].contains("\"stats\":{"), "{}", lines[2]);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queue_depth, 0, "drained");
        // The stats line parses back into the snapshot type.
        let v = serde_json::parse_value(&lines[2]).unwrap();
        let snap = ServeStats::from_value(v.get("stats").unwrap()).unwrap();
        // The snapshot is taken when the writer reaches the slot, so it
        // covers both already-answered jobs deterministically.
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.workers, stats.workers);
    }

    #[test]
    fn malformed_and_invalid_lines_answer_without_killing_the_loop() {
        let input = "this is not json\n\
                     {\"family\":\"knapsack\",\"values\":[1]}\n\
                     {\"family\":\"obst\",\"values\":[1,2]}\n\
                     {\"family\":\"chain\",\"values\":[2,3,4],\"band\":64}\n\
                     {\"cmd\":\"frobnicate\"}\n\
                     {\"family\":\"chain\",\"values\":[2,3,4]}\n";
        let (lines, stats) = pipe(input, &ServeConfig::default());
        assert_eq!(lines.len(), 6, "{lines:?}");
        assert!(lines[0].contains("\"job\":0") && lines[0].contains("not a JSON job"));
        assert!(lines[1].contains("unknown problem family"), "{}", lines[1]);
        assert!(lines[2].contains(r#"\"q\" field"#), "{}", lines[2]);
        assert!(
            lines[3].contains(r#"\"band\" has no effect"#),
            "{}",
            lines[3]
        );
        assert!(lines[4].contains("unknown cmd"), "{}", lines[4]);
        assert!(lines[5].contains("\"value\":24"), "{}", lines[5]);
        assert_eq!(stats.invalid, 4);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn shutdown_command_acks_and_rejects_the_rest() {
        let input = "{\"family\":\"chain\",\"values\":[2,3,4]}\n\
                     {\"cmd\":\"shutdown\"}\n\
                     {\"family\":\"chain\",\"values\":[4,5,6]}\n";
        let (lines, stats) = pipe(input, &ServeConfig::default());
        // The reader stops at the shutdown command; the trailing job is
        // never read, but the accepted job is drained first.
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"value\":24"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":\"shutdown\""), "{}", lines[1]);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn admission_caps_reject_oversized_jobs() {
        let cfg = ServeConfig {
            max_cells: 10,
            ..ServeConfig::default()
        };
        let input = "{\"family\":\"merge\",\"values\":[1,1,1,1,1,1,1,1]}\n";
        let (lines, stats) = pipe(input, &cfg);
        assert!(lines[0].contains("job too large"), "{}", lines[0]);
        assert!(lines[0].contains("\"job\":0"), "{}", lines[0]);
        assert_eq!(stats.rejected, 1);
        // Dense cap: sublinear rejected where reduced is admitted.
        let cfg = ServeConfig {
            max_dense_cells: 10,
            ..ServeConfig::default()
        };
        let dims: Vec<String> = (0..9).map(|_| "2".to_string()).collect();
        let line = format!("{{\"family\":\"chain\",\"values\":[{}]}}", dims.join(","));
        let (lines, _) = pipe(&line, &cfg);
        assert!(lines[0].contains("dense"), "{}", lines[0]);
        assert!(lines[0].contains("reduced"), "{}", lines[0]);
        let reduced = format!(
            "{{\"family\":\"chain\",\"values\":[{}],\"algo\":\"reduced\"}}",
            dims.join(",")
        );
        let (lines, _) = pipe(&reduced, &cfg);
        assert!(lines[0].contains("\"value\":"), "{}", lines[0]);
    }

    #[test]
    fn error_lines_carry_machine_readable_kinds() {
        let input = "not json\n\
                     {\"family\":\"knapsack\",\"values\":[1]}\n\
                     {\"cmd\":\"frobnicate\"}\n";
        let (lines, _) = pipe(input, &ServeConfig::default());
        assert!(lines[0].contains("\"kind\":\"invalid\""), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"invalid\""), "{}", lines[1]);
        assert!(lines[2].contains("\"kind\":\"invalid\""), "{}", lines[2]);
        let cfg = ServeConfig {
            max_cells: 10,
            ..ServeConfig::default()
        };
        let (lines, _) = pipe(
            "{\"family\":\"merge\",\"values\":[1,1,1,1,1,1,1,1]}\n",
            &cfg,
        );
        assert!(lines[0].contains("\"kind\":\"rejected\""), "{}", lines[0]);
    }

    #[test]
    fn oversized_request_line_is_rejected_without_buffering() {
        let cfg = ServeConfig {
            max_line_bytes: 64,
            ..ServeConfig::default()
        };
        let long = format!(
            "{{\"family\":\"chain\",\"values\":[{}]}}",
            vec!["2"; 200].join(",")
        );
        let input = format!("{long}\n{{\"family\":\"chain\",\"values\":[2,3,4]}}\n");
        let (lines, stats) = pipe(&input, &cfg);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"job\":0"), "{}", lines[0]);
        assert!(lines[0].contains("exceeds the 64-byte cap"), "{}", lines[0]);
        assert!(lines[0].contains("\"kind\":\"rejected\""), "{}", lines[0]);
        // The next line is unaffected — the oversized one was drained.
        assert!(lines[1].contains("\"value\":24"), "{}", lines[1]);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn injected_panic_is_isolated_and_counted() {
        let plan = Arc::new(FaultPlan::new().fail(FaultSite::WorkerPanic, &[0]));
        let cfg = ServeConfig {
            exec: ExecBackend::Threads(1),
            fault: Some(Arc::clone(&plan)),
            ..ServeConfig::default()
        };
        let input = "{\"family\":\"chain\",\"values\":[2,3,4]}\n\
                     {\"family\":\"chain\",\"values\":[2,3,4]}\n";
        let (lines, stats) = pipe(input, &cfg);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"internal\""), "{}", lines[0]);
        assert!(lines[1].contains("\"value\":24"), "{}", lines[1]);
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.completed, 2, "a panicked job is still answered");
        assert_eq!(plan.injected(FaultSite::WorkerPanic), 1);
    }

    #[test]
    fn injected_delay_forces_a_deterministic_timeout() {
        let plan = Arc::new(
            FaultPlan::new()
                .fail(FaultSite::JobDelay, &[0])
                .delay(Duration::from_millis(30)),
        );
        let cfg = ServeConfig {
            exec: ExecBackend::Threads(1),
            job_timeout: Some(Duration::from_millis(5)),
            fault: Some(plan),
            ..ServeConfig::default()
        };
        let input = "{\"family\":\"chain\",\"values\":[2,3,4]}\n\
                     {\"family\":\"chain\",\"values\":[4,5,6]}\n";
        let (lines, stats) = pipe(input, &cfg);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"timeout\""), "{}", lines[0]);
        assert!(lines[1].contains("\"value\":120"), "{}", lines[1]);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn tcp_server_round_trips_and_drains_on_join() {
        use std::io::Write as _;
        let server = Server::bind("127.0.0.1:0", &ServeConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"{\"family\":\"polygon\",\"values\":[1,10,1,10]}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"value\":20"), "{line}");
        drop(reader);
        drop(stream);
        let stats = server.join();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.queue_depth, 0);
    }
}
