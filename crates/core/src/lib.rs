//! # pardp-core — sublinear parallel dynamic programming
//!
//! A faithful implementation of
//!
//! > S.-H. S. Huang, H. Liu, V. Viswanathan,
//! > *A sublinear parallel algorithm for some dynamic programming
//! > problems*, ICPP 1990; Theoretical Computer Science 106 (1992)
//! > 361–371.
//!
//! The paper gives a CREW-PRAM algorithm for parenthesization-shaped
//! dynamic programs (recurrence (*)):
//!
//! ```text
//! c(i,j) = min_{i<k<j} { c(i,k) + c(k,j) + f(i,k,j) },   c(i,i+1) = init(i)
//! ```
//!
//! running in `O(sqrt(n) log n)` time with `O(n^5 / log n)` processors
//! (§2–4), reduced to `O(n^3.5 / log n)` processors in §5 — between
//! Rytter's `O(log^2 n)`-time `O(n^6/log n)`-processor algorithm and the
//! work-optimal sequential/wavefront algorithms.
//!
//! ## Solvers
//!
//! All six algorithms run through the [`solver`] façade —
//! `Solver::new(algorithm).options(..).solve(&problem)` — and return the
//! same uniform [`solver::Solution`] (value, table, trace, statistics,
//! wall time, lazy tree reconstruction). [`solver::Algorithm`] is the
//! registry: names, descriptions, capability flags.
//!
//! | [`solver::Algorithm`] | direct entry point | algorithm | time × processors (paper) |
//! |---|---|---|---|
//! | `Sequential` | [`seq::solve_sequential`] | classic DP \[1\] | `O(n^3)` × 1 |
//! | `Knuth` | [`seq::solve_knuth`] | Knuth–Yao (QI instances) | `O(n^2)` × 1 |
//! | `Wavefront` | [`wavefront::solve_wavefront`] | anti-diagonal \[10\] | `O(n)` × `O(n^2)` |
//! | `Sublinear` | [`sublinear::solve_sublinear`] | **this paper §2** | `O(sqrt(n) log n)` × `O(n^5/log n)` |
//! | `Reduced` | [`reduced::solve_reduced`] | **this paper §5** | `O(sqrt(n) log n)` × `O(n^3.5/log n)` |
//! | `Rytter` | [`rytter::solve_rytter`] | Rytter \[8\] | `O(log^2 n)` × `O(n^6/log n)` |
//!
//! The direct entry points remain as thin, stable functions (the façade
//! dispatches through them, bit-identically). All parallel solvers
//! execute their data-parallel operations on a pluggable
//! [`exec::ExecBackend`] (sequential reference or the work-stealing
//! thread pool), and all agree exactly with the sequential oracle —
//! property-tested across problem families.
//!
//! Many instances solve concurrently over the same pool through
//! [`batch::BatchSolver`] — whole-problem-per-worker for small jobs,
//! the parallel per-problem path for large ones (see the [`batch`]
//! module docs for the scheduling regimes and the oversubscription
//! rule).
//!
//! ## Verification and accounting
//!
//! * [`verify::verify_coupled`] executes the paper's §4 correctness
//!   argument: the pebbling game on the optimal tree synchronised with
//!   the algebraic algorithm, invariants checked at every step.
//! * [`pram_exec`] replays the algorithms on the `pardp-pram` CREW cost
//!   model (exact work / depth / processor counts, Brent scheduling), and
//!   runs a fully audited exclusive-write execution.
//!
//! ## Quick start
//!
//! ```
//! use pardp_core::prelude::*;
//!
//! // Optimal order for multiplying matrices of dimensions
//! // 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 (CLRS example).
//! let dims = vec![30u64, 35, 15, 5, 10, 20, 25];
//! let problem = FnProblem::new(
//!     dims.len() - 1,
//!     |_| 0u64,
//!     move |i, k, j| dims[i] * dims[k] * dims[j],
//! );
//!
//! // Any algorithm on the paper's spectrum, one entry point:
//! let solution = Solver::new(Algorithm::Sublinear).solve(&problem);
//! assert_eq!(solution.value(), 15125);
//!
//! // Knobs ride in one options builder; results carry uniform
//! // diagnostics for every algorithm.
//! let solution = Solver::new(Algorithm::Reduced)
//!     .options(SolveOptions::default().exec(ExecBackend::Sequential))
//!     .solve(&problem);
//! assert_eq!(solution.value(), 15125);
//! assert!(solution.trace.iterations <= solution.trace.schedule_bound);
//! let tree = solution.tree(&problem).unwrap();
//! assert_eq!(tree.n_leaves(), 6);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod check;
pub mod exec;
pub mod fault;
pub mod ops;
pub mod pram_exec;
pub mod problem;
pub mod reconstruct;
pub mod reduced;
pub mod rytter;
pub mod seq;
pub mod serve;
pub mod solver;
pub mod spec;
pub mod store;
pub mod sublinear;
pub mod tables;
pub mod telemetry;
pub mod trace;
pub mod verify;
pub mod wavefront;
pub mod weight;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::batch::{BatchError, BatchJob, BatchReport, BatchResult, BatchSolver};
    pub use crate::exec::ExecBackend;
    pub use crate::fault::{unpoison, CancelToken, FaultPlan, FaultSite, FaultyCache};
    pub use crate::ops::{OpStats, SquareStrategy};
    pub use crate::problem::{DpProblem, FnProblem, TabulatedProblem};
    pub use crate::reconstruct::{reconstruct_root, tree_cost, ParenTree};
    pub use crate::reduced::{solve_reduced, ReducedConfig};
    pub use crate::rytter::{solve_rytter, RytterConfig};
    pub use crate::seq::{solve_knuth, solve_sequential};
    pub use crate::serve::{ServeConfig, ServeStats, Server};
    pub use crate::solver::{Algorithm, OptionsError, Solution, SolveKnob, SolveOptions, Solver};
    pub use crate::spec::{
        error_record, parse_jobs, table_hash, verify_knuth, BatchSummary, ErrorKind, JobRecord,
        JobSpec, ProblemSpec, ResolvedJob, SpecError, SpecProblem,
    };
    pub use crate::store::{
        cached_solve, CacheCounters, CacheOutcome, CachedBatchReport, CachedSolution, CachedSolver,
        FileStore, MemoryCache, ProblemKey, ResilientCache, SolutionCache, StoreError, StoreStat,
    };
    // The deprecated `ExecMode` prelude alias was removed in this
    // release; see the release note in [`crate::sublinear`] for the
    // remaining module-level alias and its removal timeline.
    pub use crate::sublinear::{solve_sublinear, SolverConfig};
    pub use crate::tables::WTable;
    pub use crate::telemetry::{
        Event, EventKind, EventSink, LatencyHistogram, LogLevel, NullSink, RingSink, Telemetry,
        WorkSpan, WriterSink,
    };
    pub use crate::trace::{StopReason, Termination};
    pub use crate::wavefront::{solve_wavefront, solve_wavefront_default, WavefrontConfig};
    pub use crate::weight::Weight;
}

/// `2 * ceil(sqrt(n))` — the iteration schedule of the paper (§2) and the
/// move bound of Lemma 3.3.
pub fn schedule_bound(n: usize) -> u64 {
    2 * pardp_pebble::ceil_sqrt(n as u64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn schedule_bound_matches_pebble_crate() {
        for n in [1usize, 2, 5, 16, 17, 100] {
            assert_eq!(super::schedule_bound(n), pardp_pebble::lemma_move_bound(n));
        }
    }
}
