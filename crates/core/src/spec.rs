//! The public wire API: JSONL job specs and result records shared by
//! `pardp batch`, `pardp serve`, and programmatic front ends.
//!
//! PR 5 introduced a JSONL job schema, but its parser lived as private
//! code in `crates/cli`. This module promotes it behind the façade: one
//! [`JobSpec`] input shape, one [`JobRecord`] output shape, one
//! [`BatchSummary`] trailer — so the batch CLI and the serve daemon
//! cannot drift apart, and library users submit jobs with the exact
//! semantics the CLI documents.
//!
//! ## Input: one JSON object per line
//!
//! ```json
//! {"family":"chain","values":[30,35,15,5,10,20,25]}
//! {"family":"obst","values":[15,10],"q":[5,10,5],"algo":"reduced"}
//! {"family":"merge","values":[10,20,30],"algo":"reduced","band":12,"trace":true}
//! ```
//!
//! * `family` — `chain | obst | polygon | merge` (the [`ProblemSpec`]
//!   constructors validate each family's shape rules);
//! * `values` — dimensions / key frequencies / vertex weights / run
//!   lengths;
//! * `q` — obst dummy frequencies (`values.len() + 1` entries);
//! * `algo` — optional per-job override of the default algorithm;
//! * `band` — optional §5 band-width override (reduced solver only;
//!   widths narrower than the paper's `2⌈√n⌉` are rejected — only wider
//!   bands are proven exact);
//! * `tile` — optional `a-square` kernel (`auto | naive | <edge>`);
//! * `trace` — optional per-iteration trace recording (iterative
//!   algorithms only; the record's `trace` field carries the result).
//!
//! Every per-job knob is routed through
//! [`SolveOptions::validate_knob`], so capability errors are identical
//! whether a job arrives via CLI flag, batch file, or serve socket.
//!
//! ## Output: one [`JobRecord`] per job, one [`BatchSummary`] trailer
//!
//! Records are deterministic except for `wall_seconds`;
//! [`JobRecord::deterministic`] zeroes the timing for bit-exact
//! comparisons between front ends ([`table_hash`] fingerprints the full
//! solved table, so agreement is checked cell-for-cell, not just on the
//! goal value).

use crate::batch::BatchResult;
use crate::exec::ExecBackend;
use crate::problem::DpProblem;
use crate::reduced::default_band;
use crate::solver::{Algorithm, Solution, SolveKnob, SolveOptions};
use crate::tables::WTable;
use crate::trace::SolveTrace;

use serde::{DeError, Deserialize, Serialize, Value};

/// A job-spec or record error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A validated problem instance of one of the four wire families.
///
/// The constructors hold every family's shape rules (formerly private to
/// the CLI's parser), so `pardp solve`, `pardp batch`, and `pardp serve`
/// accept and reject exactly the same instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemSpec {
    /// Matrix chain from a dimension list.
    Chain {
        /// Dimensions `d_0 .. d_n` (all positive).
        dims: Vec<u64>,
    },
    /// Optimal BST from key and dummy frequencies.
    Obst {
        /// Key frequencies.
        p: Vec<u64>,
        /// Dummy frequencies (one more than keys).
        q: Vec<u64>,
    },
    /// Weighted polygon triangulation.
    Polygon {
        /// Vertex weights.
        weights: Vec<u64>,
    },
    /// Optimal adjacent merge order.
    Merge {
        /// Run lengths.
        lengths: Vec<u64>,
    },
}

impl ProblemSpec {
    /// Validated chain instance.
    pub fn chain(dims: Vec<u64>) -> Result<Self, SpecError> {
        if dims.len() < 2 {
            return Err(SpecError("chain needs at least two dimensions".into()));
        }
        if dims.contains(&0) {
            return Err(SpecError(
                "chain dimensions must be positive (a 0-dimensional matrix \
                 has no entries)"
                    .into(),
            ));
        }
        Ok(ProblemSpec::Chain { dims })
    }

    /// Validated OBST instance (`q` must have one more entry than `p`).
    pub fn obst(p: Vec<u64>, q: Vec<u64>) -> Result<Self, SpecError> {
        if q.len() != p.len() + 1 {
            return Err(SpecError(format!(
                "q needs exactly {} entries (one more than the key frequencies)",
                p.len() + 1
            )));
        }
        if p.is_empty() {
            return Err(SpecError("obst needs at least one key frequency".into()));
        }
        Ok(ProblemSpec::Obst { p, q })
    }

    /// Validated polygon instance.
    pub fn polygon(weights: Vec<u64>) -> Result<Self, SpecError> {
        if weights.len() < 3 {
            return Err(SpecError("polygon needs at least three vertices".into()));
        }
        Ok(ProblemSpec::Polygon { weights })
    }

    /// Validated merge instance.
    pub fn merge(lengths: Vec<u64>) -> Result<Self, SpecError> {
        if lengths.is_empty() {
            return Err(SpecError("merge needs at least one run length".into()));
        }
        Ok(ProblemSpec::Merge { lengths })
    }

    /// Build from wire fields: a family name plus the `values` / `q`
    /// payload of a [`JobSpec`].
    pub fn from_family(
        family: &str,
        values: Vec<u64>,
        q: Option<Vec<u64>>,
    ) -> Result<Self, SpecError> {
        match family {
            "chain" => Self::chain(values),
            "obst" => {
                let q = q.ok_or_else(|| {
                    SpecError("obst needs a \"q\" field (dummy frequencies)".to_string())
                })?;
                Self::obst(values, q)
            }
            "polygon" => Self::polygon(values),
            "merge" => Self::merge(values),
            other => Err(SpecError(format!(
                "unknown problem family '{other}' (expected chain | obst | polygon | merge)"
            ))),
        }
    }

    /// The wire family name.
    pub fn family(&self) -> &'static str {
        match self {
            ProblemSpec::Chain { .. } => "chain",
            ProblemSpec::Obst { .. } => "obst",
            ProblemSpec::Polygon { .. } => "polygon",
            ProblemSpec::Merge { .. } => "merge",
        }
    }

    /// The recurrence size `n` of the instance.
    pub fn n(&self) -> usize {
        match self {
            ProblemSpec::Chain { dims } => dims.len() - 1,
            ProblemSpec::Obst { p, .. } => p.len() + 1,
            ProblemSpec::Polygon { weights } => weights.len() - 1,
            ProblemSpec::Merge { lengths } => lengths.len(),
        }
    }

    /// The `w`-table cell count `n(n+1)/2` — the scheduler's size
    /// measure.
    pub fn cells(&self) -> usize {
        let n = self.n();
        n * (n + 1) / 2
    }

    /// The size-`m` prefix instance. Prefixing is *exact* for every
    /// wire family: a pair `(i,j)` of recurrence (*) reads only pairs
    /// nested inside it, and each family's `init` / `f` at a nested
    /// pair reads only the payload entries inside `[i, j]` — never the
    /// suffix — so every `w(i,j)` with `j <= m` of the prefix instance
    /// equals the same cell of the full instance. The solution store
    /// exploits this for warm starts: a cached size-`m` table seeds the
    /// first `m(m+1)/2` cells of a size-`n` solve of the same family
    /// and payload prefix.
    ///
    /// Returns `None` unless `2 <= m < n` (a strict prefix large enough
    /// to satisfy every family's shape rule).
    pub fn prefix(&self, m: usize) -> Option<ProblemSpec> {
        if m < 2 || m >= self.n() {
            return None;
        }
        Some(match self {
            // n = dims.len() - 1: size m keeps dims d_0 ..= d_m.
            ProblemSpec::Chain { dims } => ProblemSpec::Chain {
                dims: dims[..=m].to_vec(),
            },
            // n = keys + 1: size m keeps the first m - 1 keys and their
            // m leading dummy frequencies (appending keys appends `q`
            // entries without touching the existing ones).
            ProblemSpec::Obst { p, q } => ProblemSpec::Obst {
                p: p[..m - 1].to_vec(),
                q: q[..=m - 1].to_vec(),
            },
            // n = weights.len() - 1: f(i,k,j) reads single vertex
            // weights, all inside [i, j].
            ProblemSpec::Polygon { weights } => ProblemSpec::Polygon {
                weights: weights[..=m].to_vec(),
            },
            // n = lengths.len(): f(i,_,j) is a prefix-sum difference
            // inside [i, j].
            ProblemSpec::Merge { lengths } => ProblemSpec::Merge {
                lengths: lengths[..m].to_vec(),
            },
        })
    }

    /// Build the solvable instance.
    pub fn build(&self) -> SpecProblem {
        match self {
            ProblemSpec::Chain { dims } => SpecProblem::Chain { dims: dims.clone() },
            ProblemSpec::Obst { p, q } => {
                let mut p_prefix = vec![0u64];
                for &x in p {
                    p_prefix.push(p_prefix.last().unwrap() + x);
                }
                let mut q_prefix = vec![0u64];
                for &x in q {
                    q_prefix.push(q_prefix.last().unwrap() + x);
                }
                SpecProblem::Obst {
                    n: p.len() + 1,
                    q: q.clone(),
                    p_prefix,
                    q_prefix,
                }
            }
            ProblemSpec::Polygon { weights } => SpecProblem::Polygon {
                weights: weights.clone(),
            },
            ProblemSpec::Merge { lengths } => {
                let mut prefix = vec![0u64];
                for &l in lengths {
                    prefix.push(prefix.last().unwrap() + l);
                }
                SpecProblem::Merge {
                    n: lengths.len(),
                    prefix,
                }
            }
        }
    }
}

/// The solvable instance a [`ProblemSpec`] builds: a [`DpProblem`] over
/// `u64` weights, with the same `init` / `f` as the reference
/// implementations in `pardp-apps` (property-tested there — `pardp-core`
/// cannot depend on `pardp-apps`, so the recurrences are mirrored).
#[derive(Debug, Clone)]
pub enum SpecProblem {
    /// `init = 0`, `f(i,k,j) = d_i d_k d_j`.
    Chain {
        /// Dimensions `d_0 .. d_n`.
        dims: Vec<u64>,
    },
    /// `init(i) = q_i`, `f(i,k,j) = W(i,j)` via prefix sums.
    Obst {
        /// `n = keys + 1`.
        n: usize,
        /// Dummy frequencies `q_0 .. q_m`.
        q: Vec<u64>,
        /// `p_prefix[t] = p_1 + .. + p_t`.
        p_prefix: Vec<u64>,
        /// `q_prefix[t] = q_0 + .. + q_{t-1}`.
        q_prefix: Vec<u64>,
    },
    /// `init = 0`, `f(i,k,j) = w_i w_k w_j`.
    Polygon {
        /// Vertex weights.
        weights: Vec<u64>,
    },
    /// `init = 0`, `f(i,_,j) = prefix[j] - prefix[i]`.
    Merge {
        /// Number of runs.
        n: usize,
        /// Run-length prefix sums.
        prefix: Vec<u64>,
    },
}

impl DpProblem<u64> for SpecProblem {
    fn n(&self) -> usize {
        match self {
            SpecProblem::Chain { dims } => dims.len() - 1,
            SpecProblem::Obst { n, .. } => *n,
            SpecProblem::Polygon { weights } => weights.len() - 1,
            SpecProblem::Merge { n, .. } => *n,
        }
    }

    #[inline]
    fn init(&self, i: usize) -> u64 {
        match self {
            SpecProblem::Obst { q, .. } => q[i],
            _ => 0,
        }
    }

    #[inline]
    fn f(&self, i: usize, k: usize, j: usize) -> u64 {
        match self {
            SpecProblem::Chain { dims } => dims[i] * dims[k] * dims[j],
            SpecProblem::Obst {
                p_prefix, q_prefix, ..
            } => (p_prefix[j - 1] - p_prefix[i]) + (q_prefix[j] - q_prefix[i]),
            SpecProblem::Polygon { weights } => weights[i] * weights[k] * weights[j],
            SpecProblem::Merge { prefix, .. } => prefix[j] - prefix[i],
        }
    }

    fn name(&self) -> &str {
        match self {
            SpecProblem::Chain { .. } => "matrix-chain",
            SpecProblem::Obst { .. } => "optimal-bst",
            SpecProblem::Polygon { .. } => "triangulation-weighted",
            SpecProblem::Merge { .. } => "merge-order",
        }
    }
}

/// One JSONL job line, exactly as it appears on the wire: the problem
/// payload plus optional per-job overrides. Parse one with
/// [`serde_json::from_str`], a whole file with [`parse_jobs`], and turn
/// it into a runnable job with [`JobSpec::resolve`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Problem family: `chain | obst | polygon | merge`.
    pub family: String,
    /// Dimensions / key frequencies / vertex weights / run lengths.
    pub values: Vec<u64>,
    /// Obst dummy frequencies (obst only; `values.len() + 1` entries).
    pub q: Option<Vec<u64>>,
    /// Per-job algorithm override.
    pub algo: Option<String>,
    /// Per-job §5 band-width override (reduced solver only; must be at
    /// least the paper's `2⌈√n⌉` — only wider bands are proven exact).
    pub band: Option<usize>,
    /// Per-job `a-square` kernel: `auto | naive | <edge>`.
    pub tile: Option<String>,
    /// Record the per-iteration trace into the job's record.
    pub trace: Option<bool>,
}

// Hand-written so absent keys read as `None` (the derive requires every
// field present, which would reject minimal `{"family":..,"values":..}`
// lines).
impl Deserialize for JobSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        fn opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, DeError> {
            match v.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(inner) => T::from_value(inner)
                    .map(Some)
                    .map_err(|e| DeError(format!("field '{name}': {}", e.0))),
            }
        }
        Ok(JobSpec {
            family: serde::field(v, "family")?,
            values: serde::field(v, "values")?,
            q: opt(v, "q")?,
            algo: opt(v, "algo")?,
            band: opt(v, "band")?,
            tile: opt(v, "tile")?,
            trace: opt(v, "trace")?,
        })
    }
}

impl From<&ProblemSpec> for JobSpec {
    fn from(p: &ProblemSpec) -> Self {
        let (values, q) = match p {
            ProblemSpec::Chain { dims } => (dims.clone(), None),
            ProblemSpec::Obst { p, q } => (p.clone(), Some(q.clone())),
            ProblemSpec::Polygon { weights } => (weights.clone(), None),
            ProblemSpec::Merge { lengths } => (lengths.clone(), None),
        };
        JobSpec {
            family: p.family().to_string(),
            values,
            q,
            algo: None,
            band: None,
            tile: None,
            trace: None,
        }
    }
}

/// A fully resolved, runnable job: the validated problem plus the
/// algorithm and options after applying every per-job override.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedJob {
    /// The validated instance.
    pub problem: ProblemSpec,
    /// The algorithm (per-job override or the caller's default).
    pub algorithm: Algorithm,
    /// The options (caller's base with per-job overrides applied).
    pub options: SolveOptions,
}

impl JobSpec {
    /// The validated [`ProblemSpec`] this job describes.
    pub fn problem(&self) -> Result<ProblemSpec, SpecError> {
        ProblemSpec::from_family(&self.family, self.values.clone(), self.q.clone())
    }

    /// Resolve against a default algorithm and base options: validate
    /// the family shape, parse the per-job overrides, and route each
    /// explicitly-set knob through [`SolveOptions::validate_knob`].
    ///
    /// Only *explicitly set* fields are validated — the base options are
    /// the caller's business (the batch CLI, for example, sets a
    /// fixpoint stop for every job, which only the capable algorithms
    /// read).
    pub fn resolve(
        &self,
        default_algo: Algorithm,
        base: SolveOptions,
    ) -> Result<ResolvedJob, SpecError> {
        let problem = self.problem()?;
        let algorithm = match &self.algo {
            Some(name) => name.parse::<Algorithm>().map_err(SpecError)?,
            None => default_algo,
        };
        let mut options = base;
        if let Some(b) = self.band {
            options = options.band(Some(b));
            options
                .validate_knob(algorithm, SolveKnob::Band)
                .map_err(|e| SpecError(format!("\"band\" {}", e.message)))?;
            let floor = default_band(problem.n());
            if b < floor {
                return Err(SpecError(format!(
                    "\"band\" {b} is narrower than the paper's 2*ceil(sqrt(n)) = \
                     {floor} for n = {}; only wider bands are proven exact — \
                     drop it or widen it",
                    problem.n()
                )));
            }
        }
        if let Some(t) = &self.tile {
            let square = t.parse().map_err(SpecError)?;
            options = options.square(square);
            options
                .validate_knob(algorithm, SolveKnob::Square)
                .map_err(|e| SpecError(format!("\"tile\" {}", e.message)))?;
        }
        if let Some(tr) = self.trace {
            options = options.record_trace(tr);
            if tr {
                options
                    .validate_knob(algorithm, SolveKnob::RecordTrace)
                    .map_err(|e| SpecError(format!("\"trace\" {}", e.message)))?;
            }
        }
        Ok(ResolvedJob {
            problem,
            algorithm,
            options,
        })
    }
}

/// Parse a JSONL job file: one [`JobSpec`] per non-blank line. Errors
/// name the offending 1-based line (`"line 3: ..."`); callers prefix
/// their own source name (a path, a connection).
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, SpecError> {
    let mut specs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let spec: JobSpec = serde_json::from_str(line)
            .map_err(|e| SpecError(format!("line {}: {e}", lineno + 1)))?;
        specs.push(spec);
    }
    Ok(specs)
}

/// The canonical FNV-1a 64 hasher behind every identity in the wire
/// API: [`table_hash`] fingerprints solved tables with it, and
/// [`ProblemKey`](crate::store::ProblemKey) derives cache identities
/// from it — one hash function, one byte encoding (little-endian),
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalHasher {
    state: u64,
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl CanonicalHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        CanonicalHasher {
            state: Self::OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb one `u64`, little-endian.
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Absorb a length-prefixed `u64` slice (the prefix keeps
    /// `[1] ++ [2]` and `[1, 2]` distinct across adjacent fields).
    pub fn write_slice(&mut self, xs: &[u64]) {
        self.write_u64(xs.len() as u64);
        for &x in xs {
            self.write_u64(x);
        }
    }

    /// Absorb a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as 16 hex digits — the wire rendering.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// FNV-1a 64 fingerprint of a solved `w` table (size then every cell,
/// little-endian), rendered as 16 hex digits. Two runs agree on this
/// hash iff they produced identical tables — the bit-parity check of
/// records that do not carry the full table. Built on
/// [`CanonicalHasher`], the same hash the solution store derives
/// problem identities from.
pub fn table_hash(w: &WTable<u64>) -> String {
    let mut h = CanonicalHasher::new();
    h.write_u64(w.n() as u64);
    for &cell in w.as_slice() {
        h.write_u64(cell);
    }
    h.finish_hex()
}

/// Cross-check a Knuth–Yao solution against the full DP. The speedup is
/// only valid on quadrangle-inequality instances; front ends guard every
/// Knuth job with this before emitting its record.
pub fn verify_knuth<P: DpProblem<u64> + ?Sized>(
    problem: &P,
    solution: &Solution<u64>,
) -> Result<(), SpecError> {
    if solution.algorithm == Algorithm::Knuth
        && !solution.w.table_eq(&crate::seq::solve_sequential(problem))
    {
        return Err(SpecError(
            "knuth speedup disagrees with the full DP — instance lacks the \
             quadrangle inequality; use the sequential algorithm (algo seq)"
                .into(),
        ));
    }
    Ok(())
}

/// The machine-readable error taxonomy shared by the serve daemon and
/// the batch CLI: every JSONL error line carries a `kind` field naming
/// one of these, next to the human-readable `error` text (which remains
/// free to change). Front ends branch on `kind`, never on the prose.
///
/// | kind | meaning | retry advice |
/// |---|---|---|
/// | `invalid` | the request itself is wrong (bad JSON, bad spec, failed Knuth guard) | fix the job, do not retry as-is |
/// | `rejected` | refused at admission (size caps, oversized line, shutdown drain) | resubmit elsewhere / smaller |
/// | `overloaded` | the bounded queue is full | back off and retry |
/// | `timeout` | the job exceeded its deadline | retry with a longer `--job-timeout` or a cheaper algorithm |
/// | `internal` | the solve panicked; the job was isolated | report a bug; the daemon is still healthy |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The request itself is wrong: unparseable JSON, an invalid
    /// problem spec or knob, or a failed result verification.
    Invalid,
    /// Refused at admission: over the size caps, an oversized request
    /// line, or submitted while the daemon drains for shutdown.
    Rejected,
    /// The bounded job queue is full — backpressure, retry later.
    Overloaded,
    /// The job exceeded its deadline and was cancelled cooperatively.
    Timeout,
    /// The solve panicked; panic isolation answered for it.
    Internal,
}

impl ErrorKind {
    /// The wire name carried in the `kind` field.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::Invalid => "invalid",
            ErrorKind::Rejected => "rejected",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wire shape of one JSONL error line (see [`error_record`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ErrorRecordLine {
    job: usize,
    error: String,
    kind: String,
}

/// Render the one JSONL error-line shape both front ends emit:
/// `{"job":N,"error":"...","kind":"..."}` — `job` is the 0-based input
/// index the failed job consumed, `kind` the [`ErrorKind`] wire name.
pub fn error_record(job: usize, kind: ErrorKind, error: &str) -> String {
    serde_json::to_string(&ErrorRecordLine {
        job,
        error: error.to_string(),
        kind: kind.name().to_string(),
    })
    .expect("an error record always serializes")
}

/// One JSONL result line: the deterministic solve outcome plus timing.
/// Serialized field order is the wire order; `wall_seconds` is last and
/// is the only nondeterministic field (see
/// [`JobRecord::deterministic`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job index within its batch / connection (0-based, input order).
    pub job: usize,
    /// The wire family name.
    pub family: String,
    /// Recurrence size.
    pub n: usize,
    /// Canonical algorithm name.
    pub algo: String,
    /// The goal value `c(0, n)`.
    pub value: u64,
    /// Iterations executed (0 for the direct algorithms).
    pub iterations: u64,
    /// Scheduling regime: `"small"` (whole-problem-per-worker) or
    /// `"large"` (parallel per-problem).
    pub regime: String,
    /// [`table_hash`] fingerprint of the solved table.
    pub tables_hash: String,
    /// Composition candidates examined (0 for the direct algorithms).
    pub candidates: u64,
    /// Improved-cell stores (0 for the direct algorithms).
    pub writes: u64,
    /// The per-iteration trace, when the job asked for one.
    pub trace: Option<SolveTrace>,
    /// Wall-clock seconds of the solve (nondeterministic).
    pub wall_seconds: f64,
}

impl JobRecord {
    /// Build the record of a solution: `job` is the 0-based input index,
    /// `large` the scheduling regime the job ran under.
    pub fn of_solution(job: usize, family: &str, solution: &Solution<u64>, large: bool) -> Self {
        JobRecord {
            job,
            family: family.to_string(),
            n: solution.trace.n,
            algo: solution.algorithm.name().to_string(),
            value: solution.value(),
            iterations: solution.trace.iterations,
            regime: if large { "large" } else { "small" }.to_string(),
            tables_hash: table_hash(&solution.w),
            candidates: solution.stats.candidates,
            writes: solution.stats.writes,
            trace: if solution.trace.per_iteration.is_empty() {
                None
            } else {
                Some(solution.trace.clone())
            },
            wall_seconds: solution.wall.as_secs_f64(),
        }
    }

    /// Build the record of one batch result.
    pub fn new(family: &str, r: &BatchResult<u64>) -> Self {
        Self::of_solution(r.job, family, &r.solution, r.large)
    }

    /// A copy with `wall_seconds` zeroed — every remaining field is a
    /// deterministic function of the job, so two front ends agree on
    /// `deterministic()` output iff they solved identically.
    pub fn deterministic(&self) -> JobRecord {
        let mut r = self.clone();
        r.wall_seconds = 0.0;
        r
    }
}

/// The trailing JSONL summary line of a batch (or of a serve session's
/// drained queue).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Total jobs.
    pub jobs: usize,
    /// Jobs run whole-problem-per-worker.
    pub small_jobs: usize,
    /// Jobs run on the parallel per-problem path.
    pub large_jobs: usize,
    /// The pool backend (resolved, e.g. `threads(8)`).
    pub backend: String,
    /// Batch wall-clock seconds.
    pub wall_seconds: f64,
    /// Jobs per second.
    pub throughput: f64,
    /// Aggregate candidates over every job.
    pub candidates: u64,
    /// Aggregate improved-cell stores.
    pub writes: u64,
}

impl BatchSummary {
    /// Summarise a [`BatchReport`](crate::batch::BatchReport).
    pub fn new(report: &crate::batch::BatchReport<u64>, backend: ExecBackend) -> Self {
        BatchSummary {
            jobs: report.results.len(),
            small_jobs: report.small_jobs,
            large_jobs: report.large_jobs,
            backend: backend.to_string(),
            wall_seconds: report.wall.as_secs_f64(),
            throughput: report.throughput,
            candidates: report.stats.candidates,
            writes: report.stats.writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchJob, BatchSolver};
    use crate::solver::Solver;

    #[test]
    fn family_constructors_enforce_shape_rules() {
        assert!(ProblemSpec::chain(vec![2, 3, 4]).is_ok());
        let e = ProblemSpec::chain(vec![5]).unwrap_err();
        assert!(e.0.contains("at least two dimensions"), "{e}");
        let e = ProblemSpec::chain(vec![2, 0, 4]).unwrap_err();
        assert!(e.0.contains("positive"), "{e}");
        assert!(ProblemSpec::obst(vec![1, 2], vec![1, 2, 3]).is_ok());
        let e = ProblemSpec::obst(vec![1, 2], vec![1, 2]).unwrap_err();
        assert!(e.0.contains("exactly 3"), "{e}");
        let e = ProblemSpec::obst(vec![], vec![7]).unwrap_err();
        assert!(e.0.contains("at least one key"), "{e}");
        let e = ProblemSpec::polygon(vec![1, 2]).unwrap_err();
        assert!(e.0.contains("three vertices"), "{e}");
        let e = ProblemSpec::merge(vec![]).unwrap_err();
        assert!(e.0.contains("one run length"), "{e}");
        let e = ProblemSpec::from_family("knapsack", vec![1, 2], None).unwrap_err();
        assert!(e.0.contains("unknown problem family"), "{e}");
        let e = ProblemSpec::from_family("obst", vec![1, 2], None).unwrap_err();
        assert!(e.0.contains("\"q\" field"), "{e}");
    }

    #[test]
    fn spec_problems_solve_to_known_values() {
        let clrs = ProblemSpec::chain(vec![30, 35, 15, 5, 10, 20, 25]).unwrap();
        let sol = Solver::new(Algorithm::Sequential).solve(&clrs.build());
        assert_eq!(sol.value(), 15125);
        let bst = ProblemSpec::obst(vec![15, 10, 5, 10, 20], vec![5, 10, 5, 5, 5, 10]).unwrap();
        assert_eq!(
            Solver::new(Algorithm::Sequential)
                .solve(&bst.build())
                .value(),
            275
        );
        let poly = ProblemSpec::polygon(vec![1, 10, 1, 10]).unwrap();
        assert_eq!(
            Solver::new(Algorithm::Sequential)
                .solve(&poly.build())
                .value(),
            20
        );
        let merge = ProblemSpec::merge(vec![10, 20, 30]).unwrap();
        assert_eq!(
            Solver::new(Algorithm::Sequential)
                .solve(&merge.build())
                .value(),
            90
        );
    }

    #[test]
    fn spec_sizes_match_built_problems() {
        for spec in [
            ProblemSpec::chain(vec![2, 3, 4, 5]).unwrap(),
            ProblemSpec::obst(vec![1, 2], vec![1, 2, 3]).unwrap(),
            ProblemSpec::polygon(vec![1, 2, 3, 4, 5]).unwrap(),
            ProblemSpec::merge(vec![8, 9]).unwrap(),
        ] {
            assert_eq!(spec.n(), spec.build().n(), "{}", spec.family());
            assert_eq!(spec.cells(), spec.n() * (spec.n() + 1) / 2);
        }
    }

    #[test]
    fn jobspec_parses_minimal_and_full_lines() {
        let j: JobSpec = serde_json::from_str("{\"family\":\"chain\",\"values\":[2,3,4]}").unwrap();
        assert_eq!(j.family, "chain");
        assert_eq!(j.values, vec![2, 3, 4]);
        assert_eq!(
            (j.q, j.algo, j.band, j.tile, j.trace),
            (None, None, None, None, None)
        );
        let j: JobSpec = serde_json::from_str(
            "{\"family\":\"merge\",\"values\":[1,2],\"algo\":\"reduced\",\
             \"band\":12,\"tile\":\"8\",\"trace\":true}",
        )
        .unwrap();
        assert_eq!(j.algo.as_deref(), Some("reduced"));
        assert_eq!(j.band, Some(12));
        assert_eq!(j.tile.as_deref(), Some("8"));
        assert_eq!(j.trace, Some(true));
    }

    #[test]
    fn jobspec_serializes_roundtrip() {
        let spec = ProblemSpec::obst(vec![3, 1], vec![2, 2, 2]).unwrap();
        let job = JobSpec::from(&spec);
        let line = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&line).unwrap();
        assert_eq!(back, job);
        assert_eq!(back.problem().unwrap(), spec);
    }

    #[test]
    fn resolve_applies_and_validates_overrides() {
        let base = SolveOptions::default();
        let mut job = JobSpec::from(&ProblemSpec::chain(vec![2; 40]).unwrap());
        // Default algorithm flows through.
        let r = job.resolve(Algorithm::Sublinear, base).unwrap();
        assert_eq!(r.algorithm, Algorithm::Sublinear);
        assert_eq!(r.options, base);
        // Per-job algo + band on the capable solver.
        job.algo = Some("reduced".into());
        job.band = Some(14); // n = 39 → default band 2*ceil(sqrt(39)) = 14
        let r = job.resolve(Algorithm::Sublinear, base).unwrap();
        assert_eq!(r.algorithm, Algorithm::Reduced);
        assert_eq!(r.options.band, Some(14));
        // Narrower than the paper's default: unsound, rejected.
        job.band = Some(13);
        let e = job.resolve(Algorithm::Sublinear, base).unwrap_err();
        assert!(e.0.contains("\"band\""), "{e}");
        assert!(e.0.contains("narrower"), "{e}");
        // Band on a band-less algorithm.
        job.algo = Some("sublinear".into());
        job.band = Some(64);
        let e = job.resolve(Algorithm::Sublinear, base).unwrap_err();
        assert!(e.0.contains("\"band\" has no effect"), "{e}");
        // Tile on a direct algorithm.
        job.band = None;
        job.algo = Some("seq".into());
        job.tile = Some("8".into());
        let e = job.resolve(Algorithm::Sublinear, base).unwrap_err();
        assert!(e.0.contains("\"tile\" has no effect"), "{e}");
        // Unparseable tile.
        job.algo = None;
        job.tile = Some("blocky".into());
        let e = job.resolve(Algorithm::Sublinear, base).unwrap_err();
        assert!(e.0.contains("unknown square strategy"), "{e}");
        // Trace on a non-iterative algorithm; trace:false is harmless.
        job.tile = None;
        job.algo = Some("wavefront".into());
        job.trace = Some(true);
        let e = job.resolve(Algorithm::Sublinear, base).unwrap_err();
        assert!(e.0.contains("\"trace\" has no effect"), "{e}");
        job.trace = Some(false);
        assert!(job.resolve(Algorithm::Sublinear, base).is_ok());
        // Unknown per-job algorithm.
        job.algo = Some("reducedd".into());
        let e = job.resolve(Algorithm::Sublinear, base).unwrap_err();
        assert!(e.0.contains("unknown algorithm"), "{e}");
    }

    #[test]
    fn parse_jobs_skips_blanks_and_names_bad_lines() {
        let specs = parse_jobs(
            "{\"family\":\"chain\",\"values\":[2,3]}\n\
             \n\
             {\"family\":\"merge\",\"values\":[4]}\n",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        let e = parse_jobs("\n{\"family\":\"chain\"\n").unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
    }

    #[test]
    fn canonical_hasher_is_stable_and_field_separating() {
        // The digest of (n, cells...) must match the historical
        // `table_hash` byte stream — recorded fingerprints stay valid.
        let mut h = CanonicalHasher::new();
        h.write_u64(0);
        assert_eq!(
            h.finish_hex(),
            "a8c7f832281a39c5",
            "FNV-1a 64 of 8 zero bytes"
        );
        // Length prefixes keep adjacent variable-length fields apart.
        let mut a = CanonicalHasher::new();
        a.write_slice(&[1]);
        a.write_slice(&[2]);
        let mut b = CanonicalHasher::new();
        b.write_slice(&[1, 2]);
        b.write_slice(&[]);
        assert_ne!(a.finish(), b.finish());
        let mut s = CanonicalHasher::new();
        s.write_str("ab");
        let mut t = CanonicalHasher::new();
        t.write_str("a");
        t.write_bytes(b"b");
        assert_ne!(s.finish(), t.finish());
    }

    #[test]
    fn prefix_instances_are_exact_for_every_family() {
        let specs = [
            ProblemSpec::chain(vec![30, 35, 15, 5, 10, 20, 25]).unwrap(),
            ProblemSpec::obst(vec![15, 10, 5, 10, 20], vec![5, 10, 5, 5, 5, 10]).unwrap(),
            ProblemSpec::polygon(vec![1, 10, 1, 10, 3, 7]).unwrap(),
            ProblemSpec::merge(vec![10, 20, 30, 5, 8]).unwrap(),
        ];
        for spec in specs {
            let n = spec.n();
            let full = Solver::new(Algorithm::Sequential).solve(&spec.build());
            for m in 2..n {
                let pre = spec
                    .prefix(m)
                    .unwrap_or_else(|| panic!("{} m={m}", spec.family()));
                assert_eq!(pre.family(), spec.family());
                assert_eq!(pre.n(), m, "{} m={m}", spec.family());
                let w = Solver::new(Algorithm::Sequential).solve(&pre.build());
                for i in 0..m {
                    for j in i + 1..=m {
                        assert_eq!(
                            w.w.get(i, j),
                            full.w.get(i, j),
                            "{} m={m} cell ({i},{j})",
                            spec.family()
                        );
                    }
                }
            }
            // Degenerate prefixes are refused.
            assert!(spec.prefix(0).is_none());
            assert!(spec.prefix(1).is_none());
            assert!(spec.prefix(n).is_none());
            assert!(spec.prefix(n + 1).is_none());
        }
    }

    #[test]
    fn table_hash_separates_tables() {
        let a = Solver::new(Algorithm::Sequential)
            .solve(&ProblemSpec::chain(vec![2, 3, 4]).unwrap().build());
        let b = Solver::new(Algorithm::Sequential)
            .solve(&ProblemSpec::chain(vec![2, 3, 5]).unwrap().build());
        assert_eq!(table_hash(&a.w).len(), 16);
        assert_ne!(table_hash(&a.w), table_hash(&b.w));
        let again = Solver::new(Algorithm::Sublinear)
            .solve(&ProblemSpec::chain(vec![2, 3, 4]).unwrap().build());
        assert_eq!(table_hash(&a.w), table_hash(&again.w));
    }

    #[test]
    fn job_record_roundtrips_and_compares_deterministically() {
        let spec = ProblemSpec::chain(vec![30, 35, 15, 5, 10, 20, 25]).unwrap();
        let p = spec.build();
        let opts = SolveOptions::default().record_trace(true);
        let jobs = [BatchJob::new(&p)
            .algorithm(Algorithm::Sublinear)
            .options(opts)];
        let report = BatchSolver::new().solve_batch(&jobs);
        let rec = JobRecord::new(spec.family(), &report.results[0]);
        assert_eq!(rec.value, 15125);
        assert_eq!(rec.regime, "small");
        assert!(rec.trace.is_some(), "record_trace jobs carry the trace");
        let line = serde_json::to_string(&rec).unwrap();
        let back: JobRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.deterministic(), rec.deterministic());
        assert_ne!(rec.wall_seconds, 0.0);
        // Untraced jobs serialize a null trace.
        let jobs = [BatchJob::new(&p).algorithm(Algorithm::Sublinear)];
        let report = BatchSolver::new().solve_batch(&jobs);
        let rec = JobRecord::new(spec.family(), &report.results[0]);
        assert!(rec.trace.is_none());
        assert!(serde_json::to_string(&rec)
            .unwrap()
            .contains("\"trace\":null"));
    }

    #[test]
    fn knuth_guard_rejects_non_qi_chains() {
        let bad = ProblemSpec::chain(vec![10, 1, 10, 1, 10, 1, 10])
            .unwrap()
            .build();
        let sol = Solver::new(Algorithm::Knuth).solve(&bad);
        let e = verify_knuth(&bad, &sol).unwrap_err();
        assert!(e.0.contains("quadrangle"), "{e}");
        // QI instances pass.
        let good = ProblemSpec::obst(vec![15, 10, 5, 10, 20], vec![5, 10, 5, 5, 5, 10])
            .unwrap()
            .build();
        let sol = Solver::new(Algorithm::Knuth).solve(&good);
        assert!(verify_knuth(&good, &sol).is_ok());
        // Non-Knuth solutions are never questioned.
        let sol = Solver::new(Algorithm::Sequential).solve(&bad);
        assert!(verify_knuth(&bad, &sol).is_ok());
    }

    #[test]
    fn batch_summary_mirrors_the_report() {
        let spec = ProblemSpec::merge(vec![4, 5, 6]).unwrap();
        let p = spec.build();
        let jobs = [BatchJob::new(&p), BatchJob::new(&p)];
        let solver = BatchSolver::new();
        let report = solver.solve_batch(&jobs);
        let s = BatchSummary::new(&report, solver.backend());
        assert_eq!((s.jobs, s.small_jobs, s.large_jobs), (2, 2, 0));
        assert_eq!(s.candidates, report.stats.candidates);
        let line = serde_json::to_string(&s).unwrap();
        let back: BatchSummary = serde_json::from_str(&line).unwrap();
        assert_eq!(back, s);
    }
}
