//! Replaying the algorithms on the CREW PRAM cost model (experiment E5).
//!
//! Two facilities:
//!
//! * [`account_sublinear`] / [`account_reduced`] / [`account_rytter`] /
//!   [`account_wavefront`] — run the algorithm while recording every
//!   parallel phase on a [`Pram`]: `a-activate` as a unit-depth map,
//!   `a-square`/`a-pebble` as mixed-fan-in balanced-tree reductions with
//!   the *exact* per-cell candidate counts. The resulting machine reports
//!   work, depth, peak processor demand, Brent time on any `p`, and the
//!   processor–time product of the paper's comparison table.
//! * [`audited_sublinear_value`] — execute the §2 schedule through
//!   [`SharedArray`]s with full CREW auditing: any two writes to one cell
//!   in a step, or any read of a freshly written cell, aborts the run.
//!   This machine-checks the paper's claim that the three operations obey
//!   the exclusive-write discipline.

use pardp_pram::{AuditMode, PhaseRecord, Pram, PramError, SharedArray};

use crate::exec::ExecBackend;
use crate::ops::{
    a_activate_banded, a_activate_dense, a_pebble_banded, a_pebble_dense, a_square_banded,
    a_square_dense, a_square_rytter,
};
use crate::problem::DpProblem;
use crate::reduced::default_band;
use crate::seq::sequential_work;
use crate::tables::{BandedPw, DensePw, PairIndexer, WTable};
use crate::weight::Weight;

/// The accounting runs execute sequentially: phase costs are derived from
/// exact candidate counts, which must not depend on worker scheduling.
const SEQ: ExecBackend = ExecBackend::Sequential;

// ---------------------------------------------------------------------------
// Fan-in histograms (iteration-independent, computed once per run)
// ---------------------------------------------------------------------------

fn push_hist(hist: &mut std::collections::BTreeMap<u64, u64>, fan: u64) {
    if fan > 0 {
        *hist.entry(fan).or_insert(0) += 1;
    }
}

/// Fan-ins of the dense `a-square`: cell `(i,j,p,q)` minimises over
/// `(p - i) + (j - q)` compositions plus its old value.
fn dense_square_hist(n: usize) -> Vec<(u64, u64)> {
    let mut hist = std::collections::BTreeMap::new();
    for (i, j) in PairIndexer::new(n).pairs() {
        for p in i..j {
            for q in p + 1..=j {
                push_hist(&mut hist, ((p - i) + (j - q) + 1) as u64);
            }
        }
    }
    hist.into_iter().collect()
}

/// Fan-ins of Rytter's square: `(p - i + 1) * (j - q + 1)` intermediate
/// gaps per cell.
fn rytter_square_hist(n: usize) -> Vec<(u64, u64)> {
    let mut hist = std::collections::BTreeMap::new();
    for (i, j) in PairIndexer::new(n).pairs() {
        for p in i..j {
            for q in p + 1..=j {
                push_hist(&mut hist, ((p - i + 1) * (j - q + 1)) as u64);
            }
        }
    }
    hist.into_iter().collect()
}

/// Fan-ins of the dense `a-pebble`: `d (d + 1) / 2` gap candidates per
/// pair of width `d` (including the identity gap).
fn dense_pebble_hist(n: usize) -> Vec<(u64, u64)> {
    let mut hist = std::collections::BTreeMap::new();
    for d in 1..=n {
        let fan = (d * (d + 1) / 2) as u64;
        let count = (n + 1 - d) as u64;
        if fan > 1 {
            *hist.entry(fan).or_insert(0) += count;
        }
    }
    hist.into_iter().collect()
}

/// Fan-ins of the banded `a-square` (§5 windows).
fn banded_square_hist(n: usize, band: usize) -> Vec<(u64, u64)> {
    let mut hist = std::collections::BTreeMap::new();
    for (i, j) in PairIndexer::new(n).pairs() {
        let d = j - i;
        let emax = (d - 1).min(band);
        for e in 0..=emax {
            let g = d - e;
            for p in i..=i + e {
                let q = p + g;
                let mut fan = 1u64; // old value
                let r_lo = i.max(p.saturating_sub(band));
                if p > r_lo {
                    let r_hi = (p - 1).min(q + band - d);
                    if r_hi >= r_lo {
                        fan += (r_hi - r_lo + 1) as u64;
                    }
                }
                let s_lo = (q + 1).max((p + d).saturating_sub(band));
                let s_hi = j.min(q + band);
                if s_hi >= s_lo {
                    fan += (s_hi - s_lo + 1) as u64;
                }
                push_hist(&mut hist, fan);
            }
        }
    }
    hist.into_iter().collect()
}

/// Fan-ins of the banded `a-pebble` for the §5 size window of iteration
/// `iter` (`None` = no window).
fn banded_pebble_hist(n: usize, band: usize, window: Option<(usize, usize)>) -> Vec<(u64, u64)> {
    let mut hist = std::collections::BTreeMap::new();
    for d in 1..=n {
        if let Some((lo, hi)) = window {
            if d <= lo || d > hi {
                continue;
            }
        }
        let emax = (d - 1).min(band);
        // In-band gaps (incl. identity) plus the d-1 direct decompositions
        // (see `a_pebble_banded`).
        let fan = ((emax + 1) * (emax + 2) / 2 + (d - 1)) as u64;
        if fan > 1 {
            *hist.entry(fan).or_insert(0) += (n + 1 - d) as u64;
        }
    }
    hist.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Accounting runs
// ---------------------------------------------------------------------------

/// A value + machine pair returned by the accounting runs.
#[derive(Debug)]
pub struct AccountedRun<W> {
    /// The computed `c(0, n)`.
    pub value: W,
    /// The recorded machine.
    pub pram: Pram,
    /// Iterations executed.
    pub iterations: u64,
}

/// Run the §2 dense algorithm with exact PRAM phase accounting.
pub fn account_sublinear<W: Weight, P: DpProblem<W> + ?Sized>(problem: &P) -> AccountedRun<W> {
    let n = problem.n();
    let mut pram = Pram::new(format!("sublinear(n={n})"));
    let sq_hist = dense_square_hist(n);
    let pb_hist = dense_pebble_hist(n);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    pram.map_phase("init/w", n as u64);
    pram.map_phase("init/pw", PairIndexer::new(n).len() as u64);
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();
    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);
    for _ in 0..schedule {
        let act = a_activate_dense(problem, &w, &mut pw, &SEQ);
        pram.map_phase("a-activate/update", act.candidates);
        a_square_dense(&pw, &mut pw_next, &SEQ);
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-square/min",
            sq_hist.iter().copied(),
        ));
        std::mem::swap(&mut pw, &mut pw_next);
        a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-pebble/min",
            pb_hist.iter().copied(),
        ));
        std::mem::swap(&mut w, &mut w_next);
    }
    AccountedRun {
        value: w.root(),
        pram,
        iterations: schedule,
    }
}

/// Run the §5 reduced algorithm with exact PRAM phase accounting.
pub fn account_reduced<W: Weight, P: DpProblem<W> + ?Sized>(problem: &P) -> AccountedRun<W> {
    let n = problem.n();
    let band = default_band(n);
    let mut pram = Pram::new(format!("reduced(n={n},B={band})"));
    let sq_hist = banded_square_hist(n, band);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    pram.map_phase("init/w", n as u64);
    pram.map_phase("init/pw", PairIndexer::new(n).len() as u64);
    let mut pw = BandedPw::new(n, band);
    let mut pw_next = BandedPw::new(n, band);
    let mut w_next = w.clone();
    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);
    for iter in 1..=schedule {
        let act = a_activate_banded(problem, &w, &mut pw, &SEQ);
        pram.map_phase("a-activate/update", act.candidates);
        a_square_banded(&pw, &mut pw_next, &SEQ);
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-square/min",
            sq_hist.iter().copied(),
        ));
        std::mem::swap(&mut pw, &mut pw_next);
        let l = iter.div_ceil(2) as usize;
        let window = Some(((l - 1) * (l - 1), l * l));
        a_pebble_banded(problem, &pw, &w, &mut w_next, window, &SEQ);
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-pebble/min",
            banded_pebble_hist(n, band, window),
        ));
        std::mem::swap(&mut w, &mut w_next);
    }
    AccountedRun {
        value: w.root(),
        pram,
        iterations: schedule,
    }
}

/// Run Rytter's algorithm \[8\] with exact PRAM phase accounting.
pub fn account_rytter<W: Weight, P: DpProblem<W> + ?Sized>(problem: &P) -> AccountedRun<W> {
    let n = problem.n();
    let mut pram = Pram::new(format!("rytter(n={n})"));
    let sq_hist = rytter_square_hist(n);
    let pb_hist = dense_pebble_hist(n);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    pram.map_phase("init/w", n as u64);
    pram.map_phase("init/pw", PairIndexer::new(n).len() as u64);
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();
    let schedule = crate::rytter::rytter_schedule(n);
    let mut iterations = 0;
    for _ in 0..schedule {
        iterations += 1;
        let act = a_activate_dense(problem, &w, &mut pw, &SEQ);
        pram.map_phase("a-activate/update", act.candidates);
        let sq = a_square_rytter(&pw, &mut pw_next, &SEQ);
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-square/min",
            sq_hist.iter().copied(),
        ));
        std::mem::swap(&mut pw, &mut pw_next);
        let pb = a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-pebble/min",
            pb_hist.iter().copied(),
        ));
        std::mem::swap(&mut w, &mut w_next);
        if !act.changed && !sq.changed && !pb.changed {
            break;
        }
    }
    AccountedRun {
        value: w.root(),
        pram,
        iterations,
    }
}

/// Account the wavefront algorithm \[10\]: one reduce phase per
/// anti-diagonal (`n - 1` phases, `O(n^3)` work — the work-optimal row of
/// the comparison table). Each cell of diagonal `d` reduces over its
/// `d - 1` candidates plus the infinity seed (fan `d`), so the phase work
/// equals the candidate count — the same convention as the other
/// algorithms' histograms.
pub fn account_wavefront(n: usize) -> Pram {
    let mut pram = Pram::new(format!("wavefront(n={n})"));
    pram.map_phase("init/w", n as u64);
    for d in 2..=n {
        pram.push(PhaseRecord::reduce(
            format!("diagonal/{d}"),
            (n + 1 - d) as u64,
            d as u64,
        ));
    }
    pram
}

// ---------------------------------------------------------------------------
// Pure cost models (no execution) — for large-n scaling studies
// ---------------------------------------------------------------------------

/// Analytic `a-activate` task count for dense storage:
/// `2` candidates per triple `i < k < j` with `j - i >= 2`.
fn dense_activate_tasks(n: usize) -> u64 {
    2 * sequential_work(n)
}

/// Analytic `a-activate` task count for banded storage: per pair of width
/// `d`, `2 * min(d - 1, B)` in-band single-edge gaps.
fn banded_activate_tasks(n: usize, band: usize) -> u64 {
    (1..=n as u64)
        .map(|d| (n as u64 + 1 - d) * 2 * (d.saturating_sub(1)).min(band as u64))
        .sum()
}

/// The PRAM cost model of the §2 dense algorithm at size `n`, without
/// executing it: the full `2*ceil(sqrt(n))` schedule with exact per-cell
/// fan-ins. Used by the E5 scaling tables at sizes where the `O(n^4)`
/// tables would not fit in memory.
pub fn model_sublinear(n: usize) -> Pram {
    let mut pram = Pram::new(format!("sublinear-model(n={n})"));
    let sq_hist = dense_square_hist(n);
    let pb_hist = dense_pebble_hist(n);
    pram.map_phase("init/w", n as u64);
    pram.map_phase("init/pw", PairIndexer::new(n).len() as u64);
    for _ in 0..2 * pardp_pebble::ceil_sqrt(n as u64) {
        pram.map_phase("a-activate/update", dense_activate_tasks(n));
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-square/min",
            sq_hist.iter().copied(),
        ));
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-pebble/min",
            pb_hist.iter().copied(),
        ));
    }
    pram
}

/// The PRAM cost model of the §5 reduced algorithm at size `n`.
pub fn model_reduced(n: usize) -> Pram {
    let band = default_band(n);
    let mut pram = Pram::new(format!("reduced-model(n={n},B={band})"));
    let sq_hist = banded_square_hist(n, band);
    pram.map_phase("init/w", n as u64);
    pram.map_phase("init/pw", PairIndexer::new(n).len() as u64);
    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);
    for iter in 1..=schedule {
        pram.map_phase("a-activate/update", banded_activate_tasks(n, band));
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-square/min",
            sq_hist.iter().copied(),
        ));
        let l = iter.div_ceil(2) as usize;
        let window = Some(((l - 1) * (l - 1), l * l));
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-pebble/min",
            banded_pebble_hist(n, band, window),
        ));
    }
    pram
}

/// The PRAM cost model of Rytter's algorithm \[8\] at size `n`, for the
/// given iteration count (pass [`crate::rytter::rytter_schedule`] for the
/// worst case, or an observed count).
pub fn model_rytter(n: usize, iterations: u64) -> Pram {
    let mut pram = Pram::new(format!("rytter-model(n={n})"));
    let sq_hist = rytter_square_hist(n);
    let pb_hist = dense_pebble_hist(n);
    pram.map_phase("init/w", n as u64);
    pram.map_phase("init/pw", PairIndexer::new(n).len() as u64);
    for _ in 0..iterations {
        pram.map_phase("a-activate/update", dense_activate_tasks(n));
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-square/min",
            sq_hist.iter().copied(),
        ));
        pram.push(PhaseRecord::reduce_from_histogram(
            "a-pebble/min",
            pb_hist.iter().copied(),
        ));
    }
    pram
}

/// Account the sequential `O(n^3)` algorithm: all work on one processor
/// (depth = work).
pub fn account_sequential(n: usize) -> Pram {
    let mut pram = Pram::new(format!("sequential(n={n})"));
    let work = sequential_work(n);
    // One candidate per time step on one processor: depth = work. The
    // layer vector is collapsed to a single entry (exact for work and for
    // Brent time at p = 1, which is the only p a sequential machine has).
    pram.push(PhaseRecord {
        name: "seq-dp".into(),
        kind: pardp_pram::PhaseKind::Map,
        work,
        depth: work,
        peak_processors: 1,
        layers: vec![work],
    });
    pram
}

// ---------------------------------------------------------------------------
// Fully audited CREW execution
// ---------------------------------------------------------------------------

/// Execute the §2 schedule through audited shared memory and return the
/// final `c(0, n)`. Every read/write goes through [`SharedArray`] with
/// [`AuditMode::Full`]; a CREW violation aborts with the offending cell.
///
/// Memory is `O(n^4)`; intended for `n <= 24` (tests use less).
pub fn audited_sublinear_value<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
) -> Result<W, PramError> {
    let n = problem.n();
    let idx = PairIndexer::new(n);
    let pairs = idx.len();
    let wn = (n + 1) * (n + 1);

    let mut w = SharedArray::new("w", wn, W::INFINITY, AuditMode::Full);
    for i in 0..n {
        w.write(i * (n + 1) + i + 1, problem.init(i))?;
    }
    w.barrier();
    let mut pw_cur = SharedArray::new("pw", pairs * pairs, W::INFINITY, AuditMode::Full);
    for a in 0..pairs {
        pw_cur.write(a * pairs + a, W::ZERO)?;
    }
    pw_cur.barrier();
    let mut pw_nxt = SharedArray::new("pw-next", pairs * pairs, W::INFINITY, AuditMode::Full);
    for a in 0..pairs {
        pw_nxt.write(a * pairs + a, W::ZERO)?;
    }
    pw_nxt.barrier();
    let mut w_nxt = SharedArray::new("w-next", wn, W::INFINITY, AuditMode::Full);

    let schedule = 2 * pardp_pebble::ceil_sqrt(n as u64);
    for _ in 0..schedule {
        // --- a-activate: for all i < k < j, exclusive writes into pw_cur.
        for (i, j) in idx.pairs() {
            if j - i < 2 {
                continue;
            }
            let a = idx.index(i, j);
            for k in i + 1..j {
                let fikj = problem.f(i, k, j);
                let b1 = idx.index(i, k);
                let old1 = pw_cur.read(a * pairs + b1)?;
                let cand1 = fikj.add(w.read(k * (n + 1) + j)?);
                if cand1 < old1 {
                    pw_cur.write(a * pairs + b1, cand1)?;
                }
                let b2 = idx.index(k, j);
                let old2 = pw_cur.read(a * pairs + b2)?;
                let cand2 = fikj.add(w.read(i * (n + 1) + k)?);
                if cand2 < old2 {
                    pw_cur.write(a * pairs + b2, cand2)?;
                }
            }
        }
        pw_cur.barrier();

        // --- a-square: read pw_cur, write pw_nxt.
        for (i, j) in idx.pairs() {
            let a = idx.index(i, j);
            for p in i..j {
                for q in p + 1..=j {
                    let b = idx.index(p, q);
                    let mut best = pw_cur.read(a * pairs + b)?;
                    for r in i..p {
                        let c = idx.index(r, q);
                        let cand = pw_cur.read(a * pairs + c)?.add(pw_cur.read(c * pairs + b)?);
                        best = best.min2(cand);
                    }
                    for s in q + 1..=j {
                        let c = idx.index(p, s);
                        let cand = pw_cur.read(a * pairs + c)?.add(pw_cur.read(c * pairs + b)?);
                        best = best.min2(cand);
                    }
                    pw_nxt.write(a * pairs + b, best)?;
                }
            }
        }
        pw_cur.barrier();
        pw_nxt.barrier();
        std::mem::swap(&mut pw_cur, &mut pw_nxt);

        // --- a-pebble: read pw_cur + w, write w_nxt.
        for (i, j) in idx.pairs() {
            let a = idx.index(i, j);
            let mut best = w.read(i * (n + 1) + j)?;
            for p in i..j {
                for q in p + 1..=j {
                    if p == i && q == j {
                        continue;
                    }
                    let b = idx.index(p, q);
                    let cand = pw_cur.read(a * pairs + b)?.add(w.read(p * (n + 1) + q)?);
                    best = best.min2(cand);
                }
            }
            w_nxt.write(i * (n + 1) + j, best)?;
        }
        w.barrier();
        w_nxt.barrier();
        std::mem::swap(&mut w, &mut w_nxt);
    }
    w.read(n) // w(0, n) at index 0 * (n+1) + n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::seq::solve_sequential;

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    #[test]
    fn accounted_runs_compute_correct_values() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        assert_eq!(account_sublinear(&p).value, 15125);
        assert_eq!(account_reduced(&p).value, 15125);
        assert_eq!(account_rytter(&p).value, 15125);
    }

    #[test]
    fn work_ordering_matches_the_paper() {
        // seq = wavefront (work-optimal) < reduced < sublinear < rytter,
        // on the full worst-case schedules (pure cost models).
        let n = 40usize;
        let seq_w = account_sequential(n).metrics().work;
        let wave_w = account_wavefront(n).metrics().work;
        let red_w = model_reduced(n).metrics().work;
        let sub_w = model_sublinear(n).metrics().work;
        let ryt_w = model_rytter(n, crate::rytter::rytter_schedule(n))
            .metrics()
            .work;
        // Wavefront = sequential candidates + the n init writes.
        assert_eq!(seq_w + n as u64, wave_w, "wavefront is work-optimal");
        assert!(wave_w < red_w, "{wave_w} < {red_w}");
        assert!(red_w < sub_w, "{red_w} < {sub_w}");
        assert!(sub_w < ryt_w, "{sub_w} < {ryt_w}");
    }

    #[test]
    fn accounted_execution_matches_pure_model() {
        // The executed accounting and the analytic model must agree
        // exactly (same phases, same counts).
        let p = chain(vec![3, 7, 2, 9, 4, 8, 5, 6, 10, 1, 12, 11]);
        let n = p.n();
        let run = account_sublinear(&p);
        let model = model_sublinear(n);
        assert_eq!(run.pram.metrics().work, model.metrics().work);
        assert_eq!(run.pram.metrics().depth, model.metrics().depth);
        let run_r = account_reduced(&p);
        let model_r = model_reduced(n);
        assert_eq!(run_r.pram.metrics().work, model_r.metrics().work);
        assert_eq!(run_r.pram.metrics().depth, model_r.metrics().depth);
    }

    #[test]
    fn depth_ordering_matches_the_paper() {
        // Rytter O(log^2) < sublinear O(sqrt(n) log n) < wavefront
        // O(n log n) < sequential O(n^3). The sublinear/wavefront
        // crossover sits around n ~ 80 with exact constants, so compare
        // at n = 128 (pure models — no O(n^4) tables needed). Rytter is
        // modelled at its typical convergence (~log2 n + 2 iterations,
        // which the executed tests confirm); its worst-case *cap*
        // `2 log2 n + 4` only pulls ahead of the sublinear schedule at
        // larger n.
        let n = 128usize;
        let seq_d = account_sequential(n).metrics().depth;
        let wave_d = account_wavefront(n).metrics().depth;
        let sub_d = model_sublinear(n).metrics().depth;
        let ryt_iters = (n as f64).log2().ceil() as u64 + 2;
        let ryt_d = model_rytter(n, ryt_iters).metrics().depth;
        assert!(ryt_d < sub_d, "{ryt_d} < {sub_d}");
        assert!(sub_d < wave_d, "{sub_d} < {wave_d}");
        assert!(wave_d < seq_d, "{wave_d} < {seq_d}");
    }

    #[test]
    fn pt_product_improvement_over_rytter_grows() {
        // The §5 algorithm's PT-product advantage over Rytter must grow
        // with n (the paper: a factor of Theta(n^2 log n)).
        let ratio = |n: usize| {
            let red = model_reduced(n);
            let ryt = model_rytter(n, crate::rytter::rytter_schedule(n));
            ryt.metrics().pt_product() as f64 / red.metrics().pt_product() as f64
        };
        let r16 = ratio(16);
        let r48 = ratio(48);
        assert!(r16 > 1.0, "reduced must already win at n=16: {r16}");
        assert!(r48 > 2.0 * r16, "advantage must grow: {r16} -> {r48}");
    }

    #[test]
    fn brent_time_at_peak_equals_depth_bound() {
        let p = chain(vec![2, 5, 3, 7, 4, 6]);
        let run = account_sublinear(&p);
        let m = run.pram.metrics().clone();
        let t_inf = run.pram.brent_time(u64::MAX);
        assert_eq!(t_inf, m.depth);
        assert_eq!(run.pram.brent_time(1), m.work);
    }

    #[test]
    fn audited_run_is_crew_clean_and_correct() {
        for dims in [
            vec![30u64, 35, 15, 5, 10, 20, 25],
            vec![4, 9, 2, 7, 3, 8, 5, 6],
            vec![1, 2],
        ] {
            let p = chain(dims);
            let oracle = solve_sequential(&p).root();
            let audited = audited_sublinear_value(&p).expect("CREW violation");
            assert_eq!(audited, oracle);
        }
    }

    #[test]
    fn histograms_are_consistent_with_op_candidate_counts() {
        // The analytic fan-in histograms must total exactly the candidates
        // the executable ops report (+1 per cell for the old value in the
        // square/pebble, which ops count as implicit).
        use crate::ops::{a_square_dense, OpStats};
        use crate::tables::DensePw;
        let n = 9usize;
        let pw = DensePw::<u64>::new(n);
        let mut next = DensePw::new(n);
        let OpStats {
            candidates, writes, ..
        } = a_square_dense(&pw, &mut next, &SEQ);
        let hist_total: u64 = dense_square_hist(n)
            .iter()
            .map(|&(fan, count)| (fan - 1) * count)
            .sum();
        // hist counts fan-1 compositions per cell beyond the old value;
        // cells with fan = 1 (no compositions) don't appear in ops' sums.
        assert_eq!(hist_total, candidates, "square candidates");
        let _ = writes;
    }
}
