//! Flat table storage for `w'(i,j)` and `pw'(i,j,p,q)`.
//!
//! * [`PairIndexer`] maps interval pairs `(i,j)`, `0 <= i < j <= n`, to a
//!   dense index `0..P` with `P = n(n+1)/2` — the node names of the paper.
//! * [`WTable`] holds `w'` as a flat `(n+1)^2` square (simple indexing).
//! * [`DensePw`] holds `pw'` as a `P x P` matrix over pair indices: row
//!   `(i,j)`, column `(p,q)`. Only *nested* cells (`i <= p < q <= j`) are
//!   meaningful; all others stay `INFINITY` forever. This layout makes the
//!   paper's `a-square` a (restricted) min-plus matrix product and
//!   Rytter's square \[8\] a full min-plus matrix square over the same
//!   storage.
//! * [`BandedPw`] holds only the §5 band `(j-i) - (q-p) <= B` with
//!   `B = 2 ceil(sqrt(n))`: `O(n^3)` memory instead of `O(n^4)`, realizing
//!   the processor reduction's observation that the optimal-tree pebbling
//!   never needs a partial weight whose gap lags the root by more than
//!   `2 sqrt(n)` leaves.

use crate::weight::Weight;

/// Dense indexing of interval pairs `(i, j)` with `0 <= i < j <= n`.
///
/// Pairs are ordered lexicographically: `(0,1), (0,2), …, (0,n), (1,2), …`.
#[derive(Debug, Clone)]
pub struct PairIndexer {
    n: usize,
    /// `offsets[i]` = index of pair `(i, i+1)`.
    offsets: Vec<u32>,
}

impl PairIndexer {
    /// Indexer for intervals over `0..=n`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one object");
        assert!(
            n < u16::MAX as usize,
            "n too large for 32-bit pair indexing"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for i in 0..=n {
            offsets.push(acc);
            acc += (n - i) as u32;
        }
        PairIndexer { n, offsets }
    }

    /// The underlying `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of pairs `P = n(n+1)/2`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n * (self.n + 1) / 2
    }

    /// Whether there are no pairs (never, since `n >= 1`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dense index of pair `(i, j)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < j && j <= self.n,
            "invalid pair ({i},{j}) for n={}",
            self.n
        );
        self.offsets[i] as usize + (j - i - 1)
    }

    /// Inverse of [`Self::index`].
    pub fn pair(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.len());
        // offsets is sorted; find the greatest i with offsets[i] <= idx.
        let i = match self.offsets.binary_search(&(idx as u32)) {
            Ok(mut exact) => {
                // Skip duplicate offsets produced by i = n (zero-width row).
                while exact < self.n && self.offsets[exact + 1] as usize == idx {
                    exact += 1;
                }
                exact
            }
            Err(ins) => ins - 1,
        };
        let j = i + 1 + (idx - self.offsets[i] as usize);
        (i, j)
    }

    /// Iterate all pairs in index order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| (i + 1..=self.n).map(move |j| (i, j)))
    }

    /// The contiguous index range of the pairs `(p, q)` with
    /// `q ∈ q_lo..=q_hi` — pairs sharing a left endpoint are adjacent in
    /// index space, which the blocked `a-square` kernels exploit for
    /// streaming (rather than gathered) access.
    ///
    /// Requires `p < q_lo <= q_hi <= n`.
    #[inline]
    pub fn segment(&self, p: usize, q_lo: usize, q_hi: usize) -> std::ops::Range<usize> {
        debug_assert!(
            p < q_lo && q_lo <= q_hi && q_hi <= self.n,
            "invalid segment p={p} q={q_lo}..={q_hi} for n={}",
            self.n
        );
        let start = self.index(p, q_lo);
        start..start + (q_hi - q_lo) + 1
    }

    /// Close a per-pair mask under nesting: afterwards `mask[a]` is set
    /// iff, on entry, the mask was set for **any** pair nested in `a`
    /// (including `a` itself). `O(P)` via the interval recurrence
    /// `D(i,j) |= D(i+1,j) | D(i,j-1)`, widths ascending.
    ///
    /// The dirty-row scheduler uses this to decide which `a-square` rows
    /// can be skipped: row `(i,j)` reads only rows nested in `(i,j)`, so
    /// it can only produce a new value if some nested row changed.
    ///
    /// # Panics
    /// If `mask.len()` differs from [`Self::len`].
    pub fn propagate_nested(&self, mask: &mut [bool]) {
        assert_eq!(mask.len(), self.len(), "mask must have one slot per pair");
        for d in 2..=self.n {
            for i in 0..=self.n - d {
                let j = i + d;
                if mask[self.index(i + 1, j)] || mask[self.index(i, j - 1)] {
                    mask[self.index(i, j)] = true;
                }
            }
        }
    }
}

/// The `w'(i,j)` table: a flat `(n+1) x (n+1)` square, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct WTable<W> {
    n: usize,
    data: Vec<W>,
}

impl<W: Weight> WTable<W> {
    /// All-infinity table for intervals over `0..=n`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        WTable {
            n,
            data: vec![W::INFINITY; (n + 1) * (n + 1)],
        }
    }

    /// The `n` this table was sized for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read `w'(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> W {
        debug_assert!(i < j && j <= self.n);
        self.data[i * (self.n + 1) + j]
    }

    /// Write `w'(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: W) {
        debug_assert!(i < j && j <= self.n);
        self.data[i * (self.n + 1) + j] = v;
    }

    /// The root value `w'(0, n)` — the goal `c(0, n)`.
    #[inline]
    pub fn root(&self) -> W {
        self.get(0, self.n)
    }

    /// Number of finite entries (diagnostic).
    pub fn finite_count(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in i + 1..=self.n {
                if self.get(i, j).is_finite_cost() {
                    count += 1;
                }
            }
        }
        count
    }

    /// The flat backing slice (`(n+1)^2` cells, row-major: cell `(i, j)`
    /// at `i * (n + 1) + j`). Used by the row-parallel execution backends.
    #[inline]
    pub fn as_slice(&self) -> &[W] {
        &self.data
    }

    /// The flat backing slice, mutable (see [`Self::as_slice`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [W] {
        &mut self.data
    }

    /// Whether two tables agree on every interval under [`Weight::cost_eq`].
    pub fn table_eq(&self, other: &WTable<W>) -> bool {
        if self.n != other.n {
            return false;
        }
        for i in 0..self.n {
            for j in i + 1..=self.n {
                if !self.get(i, j).cost_eq(&other.get(i, j)) {
                    return false;
                }
            }
        }
        true
    }
}

/// Dense `pw'` storage: a `P x P` matrix over pair indices.
///
/// Row `a = (i,j)`, column `b = (p,q)`; the cell is meaningful iff `(p,q)`
/// is **nested** in `(i,j)` (`i <= p < q <= j`). The diagonal is
/// `pw'(i,j,i,j) = 0`; all non-nested cells stay `INFINITY` and act as
/// neutral elements in min-plus compositions.
#[derive(Debug, Clone)]
pub struct DensePw<W> {
    idx: PairIndexer,
    data: Vec<W>,
}

impl<W: Weight> DensePw<W> {
    /// Fresh table: diagonal zero, everything else infinity.
    pub fn new(n: usize) -> Self {
        let idx = PairIndexer::new(n);
        let p = idx.len();
        let mut data = vec![W::INFINITY; p * p];
        for a in 0..p {
            data[a * p + a] = W::ZERO;
        }
        DensePw { idx, data }
    }

    /// The pair indexer.
    #[inline]
    pub fn indexer(&self) -> &PairIndexer {
        &self.idx
    }

    /// Number of pairs `P` (the matrix dimension).
    #[inline]
    pub fn dim(&self) -> usize {
        self.idx.len()
    }

    /// Read `pw'(i,j,p,q)` by pair indices.
    #[inline]
    pub fn get_ab(&self, a: usize, b: usize) -> W {
        self.data[a * self.idx.len() + b]
    }

    /// Write by pair indices.
    #[inline]
    pub fn set_ab(&mut self, a: usize, b: usize, v: W) {
        let p = self.idx.len();
        self.data[a * p + b] = v;
    }

    /// Read `pw'(i,j,p,q)` by interval endpoints.
    #[inline]
    pub fn get(&self, i: usize, j: usize, p: usize, q: usize) -> W {
        debug_assert!(
            i <= p && p < q && q <= j,
            "gap ({p},{q}) not nested in ({i},{j})"
        );
        self.get_ab(self.idx.index(i, j), self.idx.index(p, q))
    }

    /// Write by interval endpoints.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, p: usize, q: usize, v: W) {
        debug_assert!(i <= p && p < q && q <= j);
        let a = self.idx.index(i, j);
        let b = self.idx.index(p, q);
        self.set_ab(a, b, v);
    }

    /// Immutable row `a` (length `P`).
    #[inline]
    pub fn row(&self, a: usize) -> &[W] {
        let p = self.idx.len();
        &self.data[a * p..(a + 1) * p]
    }

    /// The full backing slice (rows concatenated).
    #[inline]
    pub fn as_slice(&self) -> &[W] {
        &self.data
    }

    /// The full backing slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [W] {
        &mut self.data
    }

    /// Copy all cells from `other` (same dimensions).
    pub fn copy_from(&mut self, other: &DensePw<W>) {
        assert_eq!(self.idx.n(), other.idx.n());
        self.data.copy_from_slice(&other.data);
    }
}

/// The §5 banded `pw'` storage: only cells with
/// `(j - i) - (q - p) <= band` are stored.
///
/// # Layout
///
/// Rows (one per root pair `(i,j)`, in [`PairIndexer`] order) are
/// concatenated in one flat buffer; [`Self::row_span`] / [`Self::row`]
/// recover a row's slice. Within a row with `d = j - i`, the stored gaps
/// are grouped by *eccentricity* `e = d - (q - p)`
/// (`0 <= e <= emax = min(d-1, band)`): block `e` starts at offset
/// [`block_offset(e)`](Self::block_offset) `= e(e+1)/2` within the row
/// and holds the `e + 1` gaps `(p, p + d - e)` for `p = i ..= i + e`, so
/// a whole row occupies `(emax+1)(emax+2)/2` cells. Two flat-kernel
/// consequences:
///
/// * gaps of equal eccentricity and consecutive left endpoints are
///   **adjacent cells**, so per-eccentricity candidate families stream
///   instead of gather;
/// * a gap's in-row position `block_offset(e) + (p - i)` depends only on
///   `(e, p - i)`, so kernels precompute block offsets once per row
///   instead of redoing the offset arithmetic per cell (what the
///   per-cell [`Self::get`] accessor has to do).
#[derive(Debug, Clone)]
pub struct BandedPw<W> {
    idx: PairIndexer,
    band: usize,
    /// Start of each pair's row in `data`, plus one trailing end offset.
    row_offsets: Vec<u64>,
    data: Vec<W>,
}

impl<W: Weight> BandedPw<W> {
    /// Fresh banded table with the given band width `B` (the §5 algorithm
    /// uses `B = 2 ceil(sqrt(n))`): diagonal zero, everything else
    /// infinity.
    pub fn new(n: usize, band: usize) -> Self {
        let idx = PairIndexer::new(n);
        let p = idx.len();
        let mut row_offsets = Vec::with_capacity(p + 1);
        let mut acc = 0u64;
        for (i, j) in idx.pairs() {
            row_offsets.push(acc);
            let d = j - i;
            let emax = (d - 1).min(band);
            acc += ((emax + 1) * (emax + 2) / 2) as u64;
        }
        row_offsets.push(acc);
        let mut data = vec![W::INFINITY; acc as usize];
        // Diagonal (e = 0, p = i) is the first cell of each row.
        for a in 0..p {
            data[row_offsets[a] as usize] = W::ZERO;
        }
        BandedPw {
            idx,
            band,
            row_offsets,
            data,
        }
    }

    /// The pair indexer.
    #[inline]
    pub fn indexer(&self) -> &PairIndexer {
        &self.idx
    }

    /// The band width `B`.
    #[inline]
    pub fn band(&self) -> usize {
        self.band
    }

    /// Total stored cells (the §5 `O(n^3)` figure).
    #[inline]
    pub fn stored_cells(&self) -> usize {
        self.data.len()
    }

    /// Whether gap `(p,q)` of root `(i,j)` lies in the band.
    #[inline]
    pub fn in_band(&self, i: usize, j: usize, p: usize, q: usize) -> bool {
        debug_assert!(i <= p && p < q && q <= j);
        (j - i) - (q - p) <= self.band
    }

    /// Offset of eccentricity block `e` within any row: `e(e+1)/2`. Block
    /// `e` holds the `e + 1` gaps `(i + t, i + t + d - e)` for
    /// `t = 0 ..= e`, so the cell of gap `(p, q)` sits at
    /// `block_offset(e) + (p - i)` with `e = (j-i) - (q-p)`.
    #[inline]
    pub const fn block_offset(e: usize) -> usize {
        e * (e + 1) / 2
    }

    /// The highest stored eccentricity of a width-`d` row:
    /// `min(d - 1, band)`.
    #[inline]
    pub fn emax(&self, d: usize) -> usize {
        debug_assert!(d >= 1, "rows have width >= 1");
        (d - 1).min(self.band)
    }

    /// Immutable row of pair index `a`: all stored gaps of that root, in
    /// eccentricity-block order (see the type-level layout notes).
    #[inline]
    pub fn row(&self, a: usize) -> &[W] {
        debug_assert!(a < self.idx.len(), "pair index {a} out of range");
        &self.data[self.row_offsets[a] as usize..self.row_offsets[a + 1] as usize]
    }

    /// Mutable row of pair index `a` (see [`Self::row`]).
    #[inline]
    pub fn row_mut(&mut self, a: usize) -> &mut [W] {
        debug_assert!(a < self.idx.len(), "pair index {a} out of range");
        &mut self.data[self.row_offsets[a] as usize..self.row_offsets[a + 1] as usize]
    }

    #[inline]
    fn cell(&self, i: usize, j: usize, p: usize, q: usize) -> usize {
        let a = self.idx.index(i, j);
        let e = (j - i) - (q - p);
        debug_assert!(e <= self.band);
        let c = self.row_offsets[a] as usize + Self::block_offset(e) + (p - i);
        debug_assert!(c < self.row_offsets[a + 1] as usize, "cell outside row");
        c
    }

    /// Read `pw'(i,j,p,q)`; out-of-band cells read as `INFINITY`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, p: usize, q: usize) -> W {
        debug_assert!(i <= p && p < q && q <= j);
        if (j - i) - (q - p) > self.band {
            return W::INFINITY;
        }
        self.data[self.cell(i, j, p, q)]
    }

    /// Write an in-band cell.
    ///
    /// # Panics (debug)
    /// If the cell is out of band — the §5 algorithm never writes one.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, p: usize, q: usize, v: W) {
        let c = self.cell(i, j, p, q);
        self.data[c] = v;
    }

    /// Row span (offset range in `data`) of pair index `a`, for parallel
    /// row partitioning.
    #[inline]
    pub fn row_span(&self, a: usize) -> (usize, usize) {
        (
            self.row_offsets[a] as usize,
            self.row_offsets[a + 1] as usize,
        )
    }

    /// The full backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[W] {
        &self.data
    }

    /// The full backing slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [W] {
        &mut self.data
    }

    /// Enumerate the in-band gaps `(p, q)` of root `(i, j)` in storage
    /// order (eccentricity-major).
    pub fn gaps_of(&self, i: usize, j: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let d = j - i;
        let emax = (d - 1).min(self.band);
        (0..=emax).flat_map(move |e| (0..=e).map(move |t| (i + t, i + t + d - e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_indexer_roundtrip() {
        for n in 1..=20usize {
            let idx = PairIndexer::new(n);
            assert_eq!(idx.len(), n * (n + 1) / 2);
            let mut seen = 0;
            for (i, j) in idx.pairs() {
                let a = idx.index(i, j);
                assert_eq!(a, seen, "pairs() must enumerate in index order");
                assert_eq!(idx.pair(a), (i, j));
                seen += 1;
            }
            assert_eq!(seen, idx.len());
        }
    }

    #[test]
    fn pair_indexer_is_lexicographic() {
        let idx = PairIndexer::new(4);
        assert_eq!(idx.index(0, 1), 0);
        assert_eq!(idx.index(0, 4), 3);
        assert_eq!(idx.index(1, 2), 4);
        assert_eq!(idx.index(3, 4), 9);
        assert_eq!(idx.pair(9), (3, 4));
    }

    #[test]
    fn segment_matches_index() {
        let idx = PairIndexer::new(9);
        for p in 0..9 {
            for q_lo in p + 1..=9 {
                for q_hi in q_lo..=9 {
                    let seg = idx.segment(p, q_lo, q_hi);
                    let expect: Vec<usize> = (q_lo..=q_hi).map(|q| idx.index(p, q)).collect();
                    assert_eq!(seg.collect::<Vec<_>>(), expect, "p={p} {q_lo}..={q_hi}");
                }
            }
        }
    }

    #[test]
    fn propagate_nested_closes_the_mask() {
        let n = 8usize;
        let idx = PairIndexer::new(n);
        // Mark one pair dirty; exactly its ancestors (pairs containing it)
        // must light up.
        for (di, dj) in [(2usize, 5usize), (0, 1), (3, 4)] {
            let mut mask = vec![false; idx.len()];
            mask[idx.index(di, dj)] = true;
            idx.propagate_nested(&mut mask);
            for (i, j) in idx.pairs() {
                let contains = i <= di && dj <= j;
                assert_eq!(mask[idx.index(i, j)], contains, "({i},{j}) vs ({di},{dj})");
            }
        }
        // Empty mask stays empty; full mask stays full.
        let mut empty = vec![false; idx.len()];
        idx.propagate_nested(&mut empty);
        assert!(empty.iter().all(|&b| !b));
        let mut full = vec![true; idx.len()];
        idx.propagate_nested(&mut full);
        assert!(full.iter().all(|&b| b));
    }

    #[test]
    fn wtable_get_set_root() {
        let mut w = WTable::<u64>::new(5);
        assert_eq!(w.get(0, 5), <u64 as Weight>::INFINITY);
        w.set(0, 5, 42);
        assert_eq!(w.root(), 42);
        assert_eq!(w.finite_count(), 1);
    }

    #[test]
    fn wtable_eq_uses_cost_eq() {
        let mut a = WTable::<f64>::new(2);
        let mut b = WTable::<f64>::new(2);
        a.set(0, 2, 0.1 + 0.2);
        b.set(0, 2, 0.3);
        a.set(0, 1, 1.0);
        b.set(0, 1, 1.0);
        a.set(1, 2, 2.0);
        b.set(1, 2, 2.0);
        assert!(a.table_eq(&b));
        b.set(1, 2, 2.5);
        assert!(!a.table_eq(&b));
    }

    #[test]
    fn dense_pw_initial_state() {
        let pw = DensePw::<u64>::new(4);
        let inf = <u64 as Weight>::INFINITY;
        // Diagonal zero.
        for (i, j) in pw.indexer().pairs().collect::<Vec<_>>() {
            assert_eq!(pw.get(i, j, i, j), 0);
        }
        // Off-diagonal nested cells infinity.
        assert_eq!(pw.get(0, 4, 1, 3), inf);
        assert_eq!(pw.get(0, 2, 0, 1), inf);
    }

    #[test]
    fn dense_pw_set_get() {
        let mut pw = DensePw::<u64>::new(5);
        pw.set(0, 5, 1, 3, 7);
        assert_eq!(pw.get(0, 5, 1, 3), 7);
        let a = pw.indexer().index(0, 5);
        let b = pw.indexer().index(1, 3);
        assert_eq!(pw.get_ab(a, b), 7);
        assert_eq!(pw.row(a)[b], 7);
    }

    #[test]
    fn banded_layout_roundtrip() {
        for n in [3usize, 6, 10, 15] {
            for band in [1usize, 2, 4, 7, 100] {
                let mut pw = BandedPw::<u64>::new(n, band);
                // Write a distinct value into every in-band cell, then read
                // them all back.
                let idx = PairIndexer::new(n);
                let mut v = 1u64;
                for (i, j) in idx.pairs() {
                    let gaps: Vec<_> = pw.gaps_of(i, j).collect();
                    for &(p, q) in &gaps {
                        assert!(pw.in_band(i, j, p, q));
                        pw.set(i, j, p, q, v);
                        v += 1;
                    }
                }
                let mut v2 = 1u64;
                for (i, j) in idx.pairs() {
                    let gaps: Vec<_> = pw.gaps_of(i, j).collect();
                    for &(p, q) in &gaps {
                        assert_eq!(pw.get(i, j, p, q), v2, "({i},{j},{p},{q})");
                        v2 += 1;
                    }
                }
                assert_eq!(v2 as usize - 1, pw.stored_cells());
            }
        }
    }

    #[test]
    fn banded_out_of_band_reads_infinity() {
        let pw = BandedPw::<u64>::new(10, 2);
        // (0,10) with gap (4,5): e = 10 - 1 = 9 > 2.
        assert_eq!(pw.get(0, 10, 4, 5), <u64 as Weight>::INFINITY);
        // In-band diagonal still zero.
        assert_eq!(pw.get(0, 10, 0, 10), 0);
        assert_eq!(pw.get(0, 10, 1, 10), <u64 as Weight>::INFINITY); // e=1, stored, inf
    }

    #[test]
    fn banded_cell_count_is_cubic_not_quartic() {
        // With B = 2 ceil(sqrt(n)), cells should be O(n^3), far below the
        // dense P^2 ~ n^4/4 figure.
        let n = 40usize;
        let b = 2 * ((n as f64).sqrt().ceil() as usize);
        let banded = BandedPw::<u64>::new(n, b);
        let dense_cells = PairIndexer::new(n).len().pow(2);
        assert!(
            banded.stored_cells() * 4 < dense_cells,
            "banded {} vs dense {}",
            banded.stored_cells(),
            dense_cells
        );
    }

    #[test]
    fn banded_row_spans_partition_data() {
        let pw = BandedPw::<u64>::new(8, 3);
        let p = pw.indexer().len();
        let mut end_prev = 0usize;
        for a in 0..p {
            let (s, e) = pw.row_span(a);
            assert_eq!(s, end_prev);
            assert!(e >= s);
            end_prev = e;
        }
        assert_eq!(end_prev, pw.stored_cells());
    }

    #[test]
    fn row_slices_follow_the_block_layout() {
        // row(a)[block_offset(e) + (p - i)] must equal get(i, j, p, q)
        // for every stored gap, and row_mut must write the same cell.
        for (n, band) in [(9usize, 3usize), (12, 5), (6, 100)] {
            let mut pw = BandedPw::<u64>::new(n, band);
            let idx = PairIndexer::new(n);
            let mut v = 10u64;
            for (i, j) in idx.pairs() {
                let a = idx.index(i, j);
                let gaps: Vec<_> = pw.gaps_of(i, j).collect();
                for &(p, q) in &gaps {
                    let e = (j - i) - (q - p);
                    let pos = BandedPw::<u64>::block_offset(e) + (p - i);
                    pw.row_mut(a)[pos] = v;
                    assert_eq!(pw.get(i, j, p, q), v, "({i},{j},{p},{q})");
                    assert_eq!(pw.row(a)[pos], v);
                    v += 1;
                }
                let d = j - i;
                assert_eq!(
                    pw.row(a).len(),
                    BandedPw::<u64>::block_offset(pw.emax(d) + 1),
                    "row ({i},{j}) length"
                );
                let (s, e) = pw.row_span(a);
                assert_eq!(pw.row(a).len(), e - s);
            }
        }
    }

    #[test]
    fn gaps_of_matches_band_predicate() {
        let pw = BandedPw::<u64>::new(12, 4);
        for (i, j) in PairIndexer::new(12).pairs() {
            let from_iter: std::collections::BTreeSet<_> = pw.gaps_of(i, j).collect();
            let mut expected = std::collections::BTreeSet::new();
            for p in i..j {
                for q in p + 1..=j {
                    if (j - i) - (q - p) <= 4 {
                        expected.insert((p, q));
                    }
                }
            }
            assert_eq!(from_iter, expected, "({i},{j})");
        }
    }
}
