//! Iteration traces and termination policies shared by all solvers.
//!
//! # Work and Span
//!
//! The repo reports solver cost in the classic Work/Span model of
//! parallel computation:
//!
//! - **Work** is the total number of composition candidates examined
//!   across every operation of every iteration — exactly
//!   [`SolveTrace::total_candidates`], the figure the bench baselines
//!   pin. It is what a single processor would execute.
//! - **Span** is the length of the critical path: the time on
//!   unboundedly many processors. Each iteration's three operations
//!   (`a-activate`, `a-square`, `a-pebble`) are internally parallel
//!   min-reductions, so an iteration's depth is the sum of its
//!   per-operation reduction depths `⌈log₂(candidates + 1)⌉`, and the
//!   solve's span is the sum over iterations ([`SolveTrace::span_estimate`]).
//!
//! `work / span` bounds the achievable speed-up; comparing the two
//! across algorithms quantifies the paper's trade — the sublinear
//! scheme buys its `O(√n log n)` span with super-linear work, whereas
//! the sequential baseline is work-optimal at span = work. The
//! [`crate::telemetry::WorkSpan`] pair carries both through `Solution`
//! diagnostics and serve stats.

use serde::{Deserialize, Serialize};

use crate::ops::OpStats;

/// When a solver stops iterating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// Run exactly `2 * ceil(sqrt(n))` iterations — the schedule proved
    /// sufficient by Lemma 3.3. Always correct.
    FixedSqrtN,
    /// Stop as soon as one whole iteration changes **neither** `w'` nor
    /// `pw'` (a true fixpoint: the operations are deterministic functions
    /// of the tables, so no further iteration can change anything). This
    /// is the *sufficient* condition discussed in §7. Capped at
    /// `2 * ceil(sqrt(n))` iterations, so it is always correct too.
    Fixpoint,
    /// The §7 heuristic suggested by the authors' simulations: stop when
    /// the `w'` values did not change during two consecutive iterations
    /// (`pw'` may still be evolving). Also capped at `2 * ceil(sqrt(n))`.
    /// Experiment E6 probes whether this heuristic can ever stop early
    /// with a wrong value.
    WStableTwice,
}

/// Per-iteration record of one solver run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: u64,
    /// `a-activate` statistics.
    pub activate: OpRecord,
    /// `a-square` statistics.
    pub square: OpRecord,
    /// `a-pebble` statistics.
    pub pebble: OpRecord,
    /// Whether `w'(0,n)` was finite after this iteration.
    pub root_finite: bool,
}

/// Serializable mirror of [`OpStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Composition candidates examined.
    pub candidates: u64,
    /// Cells whose stored value strictly improved — actual stores, under
    /// one rule for every op (copies and unimproved re-minimisations are
    /// not writes); `changed == (writes > 0)`. See [`OpStats::writes`].
    pub writes: u64,
    /// Whether any cell strictly improved.
    pub changed: bool,
}

impl From<OpStats> for OpRecord {
    fn from(s: OpStats) -> Self {
        OpRecord {
            candidates: s.candidates,
            writes: s.writes,
            changed: s.changed,
        }
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Ran the full `2 * ceil(sqrt(n))` schedule.
    ScheduleExhausted,
    /// Reached a `w'`+`pw'` fixpoint before the schedule ended.
    Fixpoint,
    /// The §7 heuristic fired (`w'` unchanged two iterations in a row).
    WStable,
    /// A non-iterative solver (sequential, Knuth, wavefront) ran to
    /// completion — there is no iteration schedule to speak of. Used by
    /// the empty-but-well-formed traces of [`SolveTrace::direct`].
    Direct,
    /// The solve was cancelled cooperatively because its
    /// [`SolveOptions::deadline`](crate::solver::SolveOptions::deadline)
    /// passed. The table is **partial** — the value must not be used or
    /// cached (see [`Solution::timed_out`](crate::solver::Solution)).
    DeadlineExceeded,
}

/// Aggregate of a full solver run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveTrace {
    /// Problem size `n`.
    pub n: usize,
    /// Iterations actually executed.
    pub iterations: u64,
    /// The schedule bound `2 * ceil(sqrt(n))`.
    pub schedule_bound: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Total composition candidates across all ops and iterations — the
    /// measured work figure of experiments E5/E8.
    pub total_candidates: u64,
    /// Per-iteration details (empty unless trace recording was enabled).
    pub per_iteration: Vec<IterationRecord>,
}

impl SolveTrace {
    /// The empty-but-well-formed trace of a non-iterative solver run
    /// (sequential, Knuth, wavefront): zero iterations, zero schedule,
    /// [`StopReason::Direct`], no per-iteration records. Lets the
    /// uniform [`Solution`](crate::solver::Solution) carry one trace
    /// type for the whole algorithm spectrum.
    pub fn direct(n: usize) -> Self {
        SolveTrace {
            n,
            iterations: 0,
            schedule_bound: 0,
            stop: StopReason::Direct,
            total_candidates: 0,
            per_iteration: Vec::new(),
        }
    }

    /// Work split per operation kind: `(activate, square, pebble)` summed
    /// over iterations. Only available when per-iteration records were
    /// kept.
    pub fn work_by_op(&self) -> (u64, u64, u64) {
        let mut a = 0;
        let mut s = 0;
        let mut p = 0;
        for it in &self.per_iteration {
            a += it.activate.candidates;
            s += it.square.candidates;
            p += it.pebble.candidates;
        }
        (a, s, p)
    }

    /// Estimated span (critical-path depth) of the run: iterations ×
    /// per-iteration critical depth. See the [module docs](self) for
    /// the model.
    ///
    /// - With per-iteration records, each iteration contributes the sum
    ///   of its three operations' parallel reduction depths
    ///   `⌈log₂(candidates + 1)⌉` — a min-reduction over `c` candidates
    ///   takes that many rounds on unboundedly many processors.
    /// - Without records but with iterations counted, the per-iteration
    ///   depth is estimated from the mean candidates per iteration.
    /// - A non-iterative (direct) run has no recorded parallel
    ///   structure, so the serial bound `span == work` is reported.
    pub fn span_estimate(&self) -> u64 {
        fn reduction_depth(candidates: u64) -> u64 {
            if candidates == 0 {
                0
            } else {
                64 - candidates.leading_zeros() as u64
            }
        }
        if !self.per_iteration.is_empty() {
            return self
                .per_iteration
                .iter()
                .map(|it| {
                    reduction_depth(it.activate.candidates)
                        + reduction_depth(it.square.candidates)
                        + reduction_depth(it.pebble.candidates)
                })
                .sum();
        }
        if self.iterations == 0 {
            return self.total_candidates;
        }
        self.iterations * reduction_depth(self.total_candidates.div_ceil(self.iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_record_from_stats() {
        let s = OpStats {
            candidates: 5,
            writes: 3,
            changed: true,
        };
        let r = OpRecord::from(s);
        assert_eq!(r.candidates, 5);
        assert_eq!(r.writes, 3);
        assert!(r.changed);
    }

    #[test]
    fn work_by_op_sums() {
        let rec = |c| IterationRecord {
            iteration: 1,
            activate: OpRecord {
                candidates: c,
                writes: 0,
                changed: false,
            },
            square: OpRecord {
                candidates: 2 * c,
                writes: 0,
                changed: false,
            },
            pebble: OpRecord {
                candidates: 3 * c,
                writes: 0,
                changed: false,
            },
            root_finite: false,
        };
        let trace = SolveTrace {
            n: 4,
            iterations: 2,
            schedule_bound: 4,
            stop: StopReason::ScheduleExhausted,
            total_candidates: 0,
            per_iteration: vec![rec(1), rec(10)],
        };
        assert_eq!(trace.work_by_op(), (11, 22, 33));
    }

    #[test]
    fn span_estimate_shapes() {
        // Direct run: serial bound, span == work.
        let mut direct = SolveTrace::direct(8);
        assert_eq!(direct.span_estimate(), 0);
        direct.total_candidates = 120;
        assert_eq!(direct.span_estimate(), 120);

        // Per-iteration records: sum of per-op reduction depths.
        let rec = |a, s, p| IterationRecord {
            iteration: 1,
            activate: OpRecord {
                candidates: a,
                writes: 0,
                changed: false,
            },
            square: OpRecord {
                candidates: s,
                writes: 0,
                changed: false,
            },
            pebble: OpRecord {
                candidates: p,
                writes: 0,
                changed: false,
            },
            root_finite: false,
        };
        let trace = SolveTrace {
            n: 4,
            iterations: 2,
            schedule_bound: 4,
            stop: StopReason::ScheduleExhausted,
            total_candidates: 15,
            per_iteration: vec![rec(4, 8, 0), rec(1, 1, 1)],
        };
        // depth(4)=3, depth(8)=4, depth(0)=0; depth(1)=1 each → 10.
        assert_eq!(trace.span_estimate(), 10);
        // span never exceeds work when records are kept.
        assert!(trace.span_estimate() <= 4 + 8 + 1 + 1 + 1);

        // No records, iterations counted: iterations × depth(mean).
        let coarse = SolveTrace {
            per_iteration: Vec::new(),
            ..trace
        };
        // mean = ceil(15 / 2) = 8, depth(8) = 4 → 2 * 4.
        assert_eq!(coarse.span_estimate(), 8);
    }
}
