//! Failure hardening: deterministic fault injection, cooperative
//! cancellation, and the shared poisoned-lock recovery helper.
//!
//! The serve daemon's north star is heavy traffic from many users, which
//! makes partial failure the normal case, not the exception: a solve can
//! panic, a job can outlive its usefulness, a store read can hit a bad
//! sector. The Huang–Liu–Viswanathan iterations themselves tolerate
//! stale and partial state by construction (each operation is a monotone
//! re-minimisation of its inputs), so the serving stack can afford to
//! isolate, cancel, and degrade instead of crashing. This module holds
//! the pieces every layer shares:
//!
//! * [`FaultPlan`] / [`FaultSite`] — a deterministic, seeded schedule of
//!   injected faults with named sites, zero-cost when absent (callers
//!   hold an `Option<Arc<FaultPlan>>` and check it before any work).
//! * [`CancelToken`] — deadline-based cooperative cancellation, checked
//!   at iteration boundaries by the iterative solvers and per diagonal
//!   by the wavefront (see [`SolveOptions::deadline`]).
//! * [`unpoison`] — the one poisoned-lock recovery used at every lock
//!   site in `serve`, `store`, `batch`, and the thread pool.
//! * [`FaultyCache`] — a [`SolutionCache`] wrapper that injects
//!   [`FaultSite::StoreRead`] / [`FaultSite::StoreWrite`] errors per
//!   plan, for chaos tests.
//!
//! ## The error taxonomy
//!
//! Every error line the daemon writes carries a machine-readable `kind`
//! field (see [`ErrorKind`](crate::spec::ErrorKind)):
//!
//! | kind | meaning | trigger |
//! |---|---|---|
//! | `overloaded` | the bounded queue is full | backpressure |
//! | `rejected` | refused at admission | caps, shutdown, oversized line |
//! | `invalid` | the request itself is wrong | bad JSON, bad spec, failed Knuth guard |
//! | `timeout` | the job exceeded its deadline | `--job-timeout` |
//! | `internal` | the solve panicked | isolated by `catch_unwind` |
//!
//! ## Degradation rules
//!
//! * **Panics** never kill the daemon: each job runs under
//!   `catch_unwind`, a panicking solve yields an `internal` error line
//!   and a `panics` counter tick, and every lock a panicking worker
//!   poisoned is recovered with [`unpoison`].
//! * **Deadlines** are cooperative: the iterative solvers check their
//!   [`CancelToken`] once per iteration (the direct sequential solvers
//!   do not iterate and are bounded by the admission caps instead). A
//!   timed-out job writes a `timeout` error line, releases the regime
//!   gate, and its partial table is **never** cached.
//! * **Store errors** degrade to cache misses:
//!   [`ResilientCache`](crate::store::ResilientCache) counts each
//!   lookup/insert failure ([`CacheOutcome::Bypass`]), and disables the
//!   cache after a bounded failure budget so a dying disk cannot add
//!   per-job latency forever. Corrupt records are skipped at open — a
//!   bad page anywhere in the file costs only the records on it.
//!
//! ## Writing a chaos test
//!
//! Schedule faults by site and occurrence index, run the daemon, then
//! assert on the exact counters — the plan is deterministic, so with a
//! single worker the k-th solved job hits the k-th
//! [`FaultSite::WorkerPanic`] occurrence:
//!
//! ```
//! use std::sync::Arc;
//! use pardp_core::fault::{FaultPlan, FaultSite};
//! use pardp_core::serve::{serve_pipe, ServeConfig};
//! use pardp_core::exec::ExecBackend;
//!
//! // The second solved job panics; everything else is untouched.
//! let plan = Arc::new(FaultPlan::new().fail(FaultSite::WorkerPanic, &[1]));
//! let config = ServeConfig {
//!     exec: ExecBackend::Threads(1), // one worker: occurrence == job order
//!     fault: Some(Arc::clone(&plan)),
//!     ..ServeConfig::default()
//! };
//! let input = "{\"family\":\"chain\",\"values\":[2,3,4]}\n\
//!              {\"family\":\"chain\",\"values\":[4,5,6]}\n";
//! let mut out = Vec::new();
//! let stats = serve_pipe(input.as_bytes(), &mut out, &config);
//! let text = String::from_utf8(out).unwrap();
//! let lines: Vec<&str> = text.lines().collect();
//! assert!(lines[0].contains("\"value\":24"));
//! assert!(lines[1].contains("\"kind\":\"internal\""));
//! assert_eq!(stats.panics, 1);
//! assert_eq!(plan.injected(FaultSite::WorkerPanic), 1);
//! ```
//!
//! Seeded schedules ([`FaultPlan::seeded`]) draw each occurrence's
//! fate from a pure hash of `(seed, site, occurrence)` — replayable
//! from the seed alone, with no runtime randomness.
//!
//! [`SolveOptions::deadline`]: crate::solver::SolveOptions::deadline
//! [`CacheOutcome::Bypass`]: crate::store::CacheOutcome::Bypass
//! [`SolutionCache`]: crate::store::SolutionCache

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use crate::spec::CanonicalHasher;
use crate::store::{CachedSolution, ProblemKey, SolutionCache, StoreError};

/// Recover a lock even if a thread panicked while holding it.
///
/// Every structure the workspace guards with a `Mutex` / `RwLock` (job
/// queues, cache maps, store file handles, the regime gate) has no
/// invariant a panic can break mid-update: each critical section either
/// completes or leaves the previous consistent state. Poisoning is
/// therefore noise here — this helper is the single place that says so,
/// used at every lock site in `serve`, `store`, and the thread pool.
pub fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Deadline-based cooperative cancellation.
///
/// A token is just an optional deadline: [`CancelToken::is_cancelled`]
/// is a single `Option` check when no deadline is set (the common case),
/// and one `Instant::now()` comparison when one is. Solvers check it at
/// iteration boundaries (sublinear, reduced, Rytter) or per diagonal
/// (wavefront); the sequential direct solvers do not check (they are
/// admission-capped instead). A cancelled solve stops with
/// [`StopReason::DeadlineExceeded`](crate::trace::StopReason) and a
/// partial table — [`Solution::timed_out`](crate::solver::Solution)
/// flags it, and no layer ever caches or serves the partial values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancelToken {
    deadline: Option<Instant>,
}

impl CancelToken {
    /// The never-cancelled token.
    pub const NONE: CancelToken = CancelToken { deadline: None };

    /// A token that cancels at `deadline` (`None` never cancels).
    pub fn new(deadline: Option<Instant>) -> CancelToken {
        CancelToken { deadline }
    }

    /// A token that cancels once `deadline` has passed.
    pub fn at(deadline: Instant) -> CancelToken {
        CancelToken {
            deadline: Some(deadline),
        }
    }

    /// Whether the deadline has passed. Free when no deadline is set.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }
}

/// A named fault-injection site — where in the serving stack a
/// [`FaultPlan`] can inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A solution-store lookup fails with an IO error
    /// (injected by [`FaultyCache::try_get`]).
    StoreRead,
    /// A solution-store insert fails with an IO error
    /// (injected by [`FaultyCache::try_put`]).
    StoreWrite,
    /// A [`FileStore`](crate::store::FileStore) append writes only part
    /// of its record — mid-file corruption the next open must skip
    /// (attach the plan with
    /// [`FileStore::with_fault_plan`](crate::store::FileStore::with_fault_plan)).
    TornWrite,
    /// A serve worker panics inside the regime gate, before solving.
    WorkerPanic,
    /// A serve worker sleeps for [`FaultPlan::injected_delay`] after
    /// stamping the job deadline — the deterministic way to force a
    /// `--job-timeout` expiry.
    JobDelay,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::TornWrite,
        FaultSite::WorkerPanic,
        FaultSite::JobDelay,
    ];

    /// Stable site name (used in seeded schedules and diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::StoreRead => "store-read",
            FaultSite::StoreWrite => "store-write",
            FaultSite::TornWrite => "torn-write",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::JobDelay => "job-delay",
        }
    }

    fn idx(self) -> usize {
        match self {
            FaultSite::StoreRead => 0,
            FaultSite::StoreWrite => 1,
            FaultSite::TornWrite => 2,
            FaultSite::WorkerPanic => 3,
            FaultSite::JobDelay => 4,
        }
    }
}

/// Per-site schedule: which occurrence indices fault.
#[derive(Debug, Clone, Default)]
enum SiteSchedule {
    /// Never faults.
    #[default]
    Off,
    /// Faults exactly at these occurrence indices (0-based).
    Explicit(Vec<u64>),
    /// Occurrence `k` faults iff `hash(seed, site, k) % one_in == 0`.
    Seeded {
        /// The plan seed.
        seed: u64,
        /// Average occurrences per fault (≥ 1; 1 faults everything).
        one_in: u64,
    },
}

/// A deterministic fault-injection schedule.
///
/// Each [`FaultSite`] carries an atomic occurrence counter; every probe
/// ([`FaultPlan::should`]) takes the next index and answers from the
/// schedule — an explicit index list ([`FaultPlan::fail`]) or a seeded
/// pure-hash rule ([`FaultPlan::seeded`]). Both are fully replayable:
/// the same probe sequence always faults at the same occurrences.
/// The plan is zero-cost when absent — production code holds an
/// `Option<Arc<FaultPlan>>` and does nothing on `None`.
#[derive(Debug)]
pub struct FaultPlan {
    schedules: [SiteSchedule; 5],
    seen: [AtomicU64; 5],
    injected: [AtomicU64; 5],
    delay: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// An empty plan: no site ever faults until scheduled.
    pub fn new() -> FaultPlan {
        FaultPlan {
            schedules: Default::default(),
            seen: Default::default(),
            injected: Default::default(),
            delay: Duration::from_millis(50),
        }
    }

    /// A seeded plan: every site's occurrence `k` faults iff
    /// `hash(seed, site, k) % one_in == 0` (FNV-1a 64, the workspace's
    /// canonical hash). `one_in` is floored at 1 (fault everything).
    pub fn seeded(seed: u64, one_in: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for site in FaultSite::ALL {
            plan.schedules[site.idx()] = SiteSchedule::Seeded {
                seed,
                one_in: one_in.max(1),
            };
        }
        plan
    }

    /// Schedule `site` to fault at exactly these occurrence indices
    /// (0-based, builder style). Replaces any previous schedule for the
    /// site.
    pub fn fail(mut self, site: FaultSite, occurrences: &[u64]) -> FaultPlan {
        self.schedules[site.idx()] = SiteSchedule::Explicit(occurrences.to_vec());
        self
    }

    /// Set the sleep injected at [`FaultSite::JobDelay`] (builder
    /// style; default 50 ms).
    pub fn delay(mut self, delay: Duration) -> FaultPlan {
        self.delay = delay;
        self
    }

    /// The sleep injected at [`FaultSite::JobDelay`].
    pub fn injected_delay(&self) -> Duration {
        self.delay
    }

    /// Take the next occurrence of `site` and report whether the
    /// schedule faults it. Thread-safe; each probe consumes exactly one
    /// occurrence index.
    pub fn should(&self, site: FaultSite) -> bool {
        let i = site.idx();
        let k = self.seen[i].fetch_add(1, Ordering::Relaxed);
        let hit = match &self.schedules[i] {
            SiteSchedule::Off => false,
            SiteSchedule::Explicit(idxs) => idxs.contains(&k),
            SiteSchedule::Seeded { seed, one_in } => {
                let mut h = CanonicalHasher::new();
                h.write_u64(*seed);
                h.write_str(site.name());
                h.write_u64(k);
                h.finish().is_multiple_of(*one_in)
            }
        };
        if hit {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// How many occurrences of `site` have been probed so far.
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.seen[site.idx()].load(Ordering::Relaxed)
    }

    /// How many faults were actually injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.idx()].load(Ordering::Relaxed)
    }
}

/// A [`SolutionCache`] wrapper that injects [`FaultSite::StoreRead`] /
/// [`FaultSite::StoreWrite`] errors per plan — the chaos-test stand-in
/// for a failing disk.
///
/// Only the fallible entry points ([`SolutionCache::try_get`] /
/// [`SolutionCache::try_put`]) inject; the infallible `get` / `put`
/// pass straight through, so warm-start probes (which use `get`) do not
/// consume occurrence indices and every cacheable job probes exactly
/// one `StoreRead` occurrence and at most one `StoreWrite` occurrence.
pub struct FaultyCache {
    inner: Arc<dyn SolutionCache>,
    plan: Arc<FaultPlan>,
}

impl FaultyCache {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn SolutionCache>, plan: Arc<FaultPlan>) -> FaultyCache {
        FaultyCache { inner, plan }
    }
}

impl SolutionCache for FaultyCache {
    fn get(&self, key: ProblemKey) -> Option<CachedSolution> {
        self.inner.get(key)
    }

    fn put(&self, key: ProblemKey, solution: CachedSolution) {
        self.inner.put(key, solution);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn try_get(&self, key: ProblemKey) -> Result<Option<CachedSolution>, StoreError> {
        if self.plan.should(FaultSite::StoreRead) {
            return Err(StoreError("injected store read error".into()));
        }
        self.inner.try_get(key)
    }

    fn try_put(&self, key: ProblemKey, solution: CachedSolution) -> Result<(), StoreError> {
        if self.plan.should(FaultSite::StoreWrite) {
            return Err(StoreError("injected store write error".into()));
        }
        self.inner.try_put(key, solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_faults_exactly_the_listed_occurrences() {
        let plan = FaultPlan::new().fail(FaultSite::WorkerPanic, &[0, 2]);
        assert!(plan.should(FaultSite::WorkerPanic));
        assert!(!plan.should(FaultSite::WorkerPanic));
        assert!(plan.should(FaultSite::WorkerPanic));
        assert!(!plan.should(FaultSite::WorkerPanic));
        assert_eq!(plan.occurrences(FaultSite::WorkerPanic), 4);
        assert_eq!(plan.injected(FaultSite::WorkerPanic), 2);
        // Sites are independent: an unscheduled site never faults but
        // still counts its occurrences.
        assert!(!plan.should(FaultSite::StoreRead));
        assert_eq!(plan.occurrences(FaultSite::StoreRead), 1);
        assert_eq!(plan.injected(FaultSite::StoreRead), 0);
    }

    #[test]
    fn seeded_schedule_is_replayable() {
        let a = FaultPlan::seeded(42, 3);
        let b = FaultPlan::seeded(42, 3);
        let run = |plan: &FaultPlan| -> Vec<bool> {
            (0..64).map(|_| plan.should(FaultSite::StoreRead)).collect()
        };
        let fa = run(&a);
        assert_eq!(fa, run(&b), "same seed, same schedule");
        assert!(fa.iter().any(|&x| x), "one-in-3 fires somewhere in 64");
        assert!(!fa.iter().all(|&x| x), "one-in-3 is not everything");
        // A different seed gives a different schedule (with overwhelming
        // probability for 64 draws).
        let c = FaultPlan::seeded(43, 3);
        assert_ne!(fa, run(&c));
    }

    #[test]
    fn cancel_token_none_never_cancels() {
        assert!(!CancelToken::NONE.is_cancelled());
        assert!(!CancelToken::new(None).is_cancelled());
        let past = CancelToken::at(Instant::now());
        assert!(past.is_cancelled());
        let future = CancelToken::at(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn unpoison_recovers_a_poisoned_mutex() {
        let m = Arc::new(std::sync::Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*unpoison(m.lock()), 7);
    }
}
