//! Pluggable parallel execution backends.
//!
//! Every data-parallel pass in this crate (the `a-activate` / `a-square` /
//! `a-pebble` operations of [`crate::ops`] and the anti-diagonal sweeps of
//! [`crate::wavefront`]) runs through an [`ExecBackend`]:
//!
//! * [`ExecBackend::Sequential`] — the single-threaded reference
//!   execution, bit-identical to the textbook loops;
//! * [`ExecBackend::Parallel`] — a shared work-stealing thread pool sized
//!   to the host (`std::thread::available_parallelism`);
//! * [`ExecBackend::Threads`]`(k)` — the same pool, capped at `k`
//!   participating workers (`0` means "host size"), for scaling studies.
//!
//! The pool follows the self-scheduling ("bag of tasks") discipline used
//! by work-stealing runtimes: a parallel region is split into blocks of
//! rows, workers repeatedly claim the next unclaimed block via an atomic
//! counter, and the submitting thread participates until the region
//! drains. This keeps load balanced when per-row work is skewed (banded
//! rows shrink with eccentricity; anti-diagonal cells shrink with the
//! diagonal) without any per-task allocation.
//!
//! All parallel writes are partitioned by construction — each row /
//! output cell is claimed by exactly one block — mirroring the CREW
//! exclusive-write discipline the paper's operations are designed around,
//! so results are deterministic and identical across backends (integer
//! weights exactly; floats too, because each cell's reduction order is
//! fixed regardless of which worker runs it).
//!
//! The `parallel` cargo feature gates the pool. Without it, every backend
//! degrades to sequential execution with the same results.

use std::fmt;

/// Which execution backend a solver uses for its data-parallel passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Single-threaded reference execution.
    Sequential,
    /// The shared work-stealing thread pool, sized to the host.
    #[default]
    Parallel,
    /// The shared pool capped at this many workers (`0` = host size).
    Threads(usize),
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecBackend::Sequential => write!(f, "sequential"),
            // `Threads(0)` means host size, so always show the resolved count.
            ExecBackend::Parallel | ExecBackend::Threads(_) => {
                write!(f, "threads({})", self.effective_threads())
            }
        }
    }
}

/// Parse a backend name: `seq`/`sequential`, `parallel`/`auto`/`threads`,
/// `threads:<k>`, or a bare thread count (`8` is shorthand for
/// `threads:8`). Worker counts must be at least 1 — `parallel` is the
/// spelling for "use every host core". (The programmatic
/// `ExecBackend::Threads(0)` still means host size; only the textual
/// forms reject `0`, because a user writing `--backend 0` almost
/// certainly did not mean "all cores".)
impl std::str::FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let positive_count = |spec: &str, whole: &str| {
            let k = spec.parse::<usize>().map_err(|_| {
                format!(
                    "bad worker count '{spec}' in backend '{whole}' \
                     (expected a positive integer, e.g. threads:4)"
                )
            })?;
            if k == 0 {
                return Err(format!(
                    "backend '{whole}' requests zero workers; a worker count \
                     must be at least 1 — write 'parallel' to use every host core"
                ));
            }
            Ok(ExecBackend::Threads(k))
        };
        match s {
            "seq" | "sequential" => Ok(ExecBackend::Sequential),
            "parallel" | "auto" | "threads" | "rayon" => Ok(ExecBackend::Parallel),
            other => {
                if let Some(spec) = other.strip_prefix("threads:") {
                    if spec.is_empty() {
                        return Err("backend 'threads:' is missing a worker count \
                             (write threads:<k>, e.g. threads:4, or a bare \
                             count like 4)"
                            .to_string());
                    }
                    positive_count(spec, other)
                } else if other.chars().all(|c| c.is_ascii_digit()) {
                    positive_count(other, other)
                } else {
                    Err(format!(
                        "unknown backend '{other}' \
                         (expected seq | parallel | threads:<k> | <k>)"
                    ))
                }
            }
        }
    }
}

impl ExecBackend {
    /// How many workers this backend will actually use on this host.
    pub fn effective_threads(&self) -> usize {
        match self {
            ExecBackend::Sequential => 1,
            #[cfg(feature = "parallel")]
            ExecBackend::Parallel => host_threads(),
            #[cfg(feature = "parallel")]
            ExecBackend::Threads(0) => host_threads(),
            #[cfg(feature = "parallel")]
            ExecBackend::Threads(k) => *k,
            #[cfg(not(feature = "parallel"))]
            _ => 1,
        }
    }

    /// Whether this backend executes with more than one worker.
    pub fn is_parallel(&self) -> bool {
        self.effective_threads() > 1
    }

    /// This backend with its worker count capped at `k` (at least 1):
    /// `Sequential` for an effective width of 1, otherwise `Threads` at
    /// the capped width. The batch scheduler uses this to keep
    /// inter-problem × intra-problem parallelism from multiplying past
    /// the pool size.
    pub fn capped(&self, k: usize) -> ExecBackend {
        let eff = self.effective_threads().min(k.max(1));
        if eff <= 1 {
            ExecBackend::Sequential
        } else {
            ExecBackend::Threads(eff)
        }
    }

    /// Map-reduce over disjoint rows of a mutable buffer.
    ///
    /// `spans` lists each row's `(start, end)` range in `data`; spans must
    /// be **ascending, non-overlapping and within bounds** (they usually
    /// partition the buffer) — validated up front, since the parallel path
    /// hands each row to a worker as an exclusive `&mut [T]`.
    /// `process(row_index, row_slice)` runs exactly once per row; partial
    /// results are combined with `merge` starting from `identity`.
    ///
    /// # Panics
    /// If the spans are out of order, overlapping, or out of bounds.
    pub fn map_reduce_rows_mut<T, R>(
        &self,
        data: &mut [T],
        spans: &[(usize, usize)],
        process: impl Fn(usize, &mut [T]) -> R + Sync,
        identity: impl Fn() -> R + Sync,
        merge: impl Fn(R, R) -> R + Sync,
    ) -> R
    where
        T: Send,
        R: Send,
    {
        // Disjointness is validated (always on) at construction — the
        // soundness of the parallel path's aliasing argument rests on
        // it, which is why it is not a debug_assert.
        let parts = disjoint::DisjointPartsMut::new(data, spans);
        let workers = self.effective_threads();
        if workers <= 1 || parts.parts() <= 1 {
            let mut total = identity();
            for row in 0..parts.parts() {
                // SAFETY: this sequential loop claims each part index
                // exactly once, and the previous iteration's borrow
                // ended with its loop pass.
                let slice = unsafe { parts.part(row) };
                total = merge(total, process(row, slice));
            }
            return total;
        }
        #[cfg(feature = "parallel")]
        {
            let parts = &parts;
            let (process, identity, merge) = (&process, &identity, &merge);
            pool::run_blocks(
                workers,
                parts.parts(),
                1,
                &move |range, acc: &mut Option<R>| {
                    let mut local = acc.take().unwrap_or_else(&identity);
                    for row in range {
                        // SAFETY: each part index is claimed by exactly
                        // one block (the pool hands block indices out via
                        // an atomic fetch_add), so this is the only live
                        // borrow of part `row`.
                        let slice = unsafe { parts.part(row) };
                        local = merge(local, process(row, slice));
                    }
                    *acc = Some(local);
                },
            )
            .into_iter()
            .flatten()
            .fold(identity(), merge)
        }
        #[cfg(not(feature = "parallel"))]
        unreachable!("workers > 1 requires the `parallel` feature")
    }

    /// Map-reduce over the uniform-width rows of a mutable buffer: row `r`
    /// is `data[r * row_len .. (r + 1) * row_len]`. Semantically identical
    /// to [`Self::map_reduce_rows_mut`] with evenly spaced spans, but
    /// without materialising a span table — the hot dense-table ops call
    /// this once per iteration with `O(n^2)` rows.
    ///
    /// # Panics
    /// If `data.len()` is not a multiple of `row_len` (for non-empty data).
    pub fn map_reduce_chunks_mut<T, R>(
        &self,
        data: &mut [T],
        row_len: usize,
        process: impl Fn(usize, &mut [T]) -> R + Sync,
        identity: impl Fn() -> R + Sync,
        merge: impl Fn(R, R) -> R + Sync,
    ) -> R
    where
        T: Send,
        R: Send,
    {
        if data.is_empty() {
            return identity();
        }
        // Uniform consecutive chunks are disjoint by construction; the
        // builder still validates the division (always on).
        let parts = disjoint::DisjointPartsMut::uniform(data, row_len);
        let rows = parts.parts();
        let workers = self.effective_threads();
        if workers <= 1 || rows <= 1 {
            let mut total = identity();
            for row in 0..rows {
                // SAFETY: this sequential loop claims each part index
                // exactly once.
                let slice = unsafe { parts.part(row) };
                total = merge(total, process(row, slice));
            }
            return total;
        }
        #[cfg(feature = "parallel")]
        {
            let parts = &parts;
            let (process, identity, merge) = (&process, &identity, &merge);
            pool::run_blocks(workers, rows, 1, &move |range, acc: &mut Option<R>| {
                let mut local = acc.take().unwrap_or_else(&identity);
                for row in range {
                    // SAFETY: each part index is claimed by exactly one
                    // block, so this is the only live borrow of part
                    // `row`.
                    let slice = unsafe { parts.part(row) };
                    local = merge(local, process(row, slice));
                }
                *acc = Some(local);
            })
            .into_iter()
            .flatten()
            .fold(identity(), merge)
        }
        #[cfg(not(feature = "parallel"))]
        unreachable!("workers > 1 requires the `parallel` feature")
    }

    /// Map-reduce over disjoint rows of **two** mutable buffers: row `r`
    /// receives `data[spans[r]]` and `side[side_spans[r]]`, both
    /// exclusively. The side buffer carries per-row metadata whose
    /// granularity differs from the data rows — e.g. the banded pebble
    /// writes one `w'` table row per task but one changed-flag per *pair*,
    /// and pairs sharing a left endpoint form a contiguous flag range.
    /// `grain` is a floor on rows per scheduling block (see
    /// [`Self::map_reduce_chunks_flagged_mut`]).
    ///
    /// Both span lists must be ascending, non-overlapping and within
    /// bounds (empty spans are fine); they are validated up front because
    /// the parallel path hands each row its two slices as exclusive
    /// `&mut` references.
    ///
    /// # Panics
    /// If the span lists differ in length or either is out of order,
    /// overlapping, or out of bounds.
    // The argument list is the full shape of the operation (two buffers,
    // two span tables, a grain, and the three map-reduce closures);
    // bundling them into a struct would only move the names around.
    #[allow(clippy::too_many_arguments)]
    pub fn map_reduce_rows_sided_mut<T, U, R>(
        &self,
        data: &mut [T],
        spans: &[(usize, usize)],
        side: &mut [U],
        side_spans: &[(usize, usize)],
        grain: usize,
        process: impl Fn(usize, &mut [T], &mut [U]) -> R + Sync,
        identity: impl Fn() -> R + Sync,
        merge: impl Fn(R, R) -> R + Sync,
    ) -> R
    where
        T: Send,
        U: Send,
        R: Send,
    {
        assert_eq!(
            spans.len(),
            side_spans.len(),
            "need exactly one side span per row"
        );
        // Both partitionings are validated disjoint at construction.
        let parts = disjoint::DisjointPartsMut::new(data, spans);
        let side_parts = disjoint::DisjointPartsMut::new(side, side_spans);
        let workers = self.effective_threads();
        if workers <= 1 || parts.parts() <= 1 {
            let mut total = identity();
            for row in 0..parts.parts() {
                // SAFETY: this sequential loop claims each part index of
                // both partitionings exactly once.
                let (slice, side_slice) = unsafe { (parts.part(row), side_parts.part(row)) };
                total = merge(total, process(row, slice, side_slice));
            }
            return total;
        }
        #[cfg(feature = "parallel")]
        {
            let (parts, side_parts) = (&parts, &side_parts);
            let (process, identity, merge) = (&process, &identity, &merge);
            pool::run_blocks(workers, parts.parts(), grain, &move |range,
                                                                   acc: &mut Option<
                R,
            >| {
                let mut local = acc.take().unwrap_or_else(&identity);
                for row in range {
                    // SAFETY: each row index is claimed by exactly
                    // one block, and that single claim covers the
                    // row's part in *both* partitionings — these are
                    // the only live borrows of either.
                    let (slice, side_slice) = unsafe { (parts.part(row), side_parts.part(row)) };
                    local = merge(local, process(row, slice, side_slice));
                }
                *acc = Some(local);
            })
            .into_iter()
            .flatten()
            .fold(identity(), merge)
        }
        #[cfg(not(feature = "parallel"))]
        unreachable!("workers > 1 requires the `parallel` feature")
    }

    /// [`Self::map_reduce_rows_mut`] with per-row flag plumbing and a
    /// scheduling grain — the ragged-row counterpart of
    /// [`Self::map_reduce_chunks_flagged_mut`], used by the banded ops
    /// (whose rows shrink with eccentricity) for convergence-aware
    /// scheduling. Implemented on top of
    /// [`Self::map_reduce_rows_sided_mut`] with one flag slot per row.
    pub fn map_reduce_rows_flagged_mut<T, R>(
        &self,
        data: &mut [T],
        spans: &[(usize, usize)],
        grain: usize,
        process: impl Fn(usize, &mut [T]) -> (R, bool) + Sync,
        identity: impl Fn() -> R + Sync,
        merge: impl Fn(R, R) -> R + Sync,
    ) -> (R, Vec<bool>)
    where
        T: Send,
        R: Send,
    {
        let mut flags = vec![false; spans.len()];
        let flag_spans: Vec<(usize, usize)> = (0..spans.len()).map(|r| (r, r + 1)).collect();
        let total = self.map_reduce_rows_sided_mut(
            data,
            spans,
            &mut flags,
            &flag_spans,
            grain,
            |row, slice, flag: &mut [bool]| {
                let (partial, changed) = process(row, slice);
                flag[0] = changed;
                partial
            },
            identity,
            merge,
        );
        (total, flags)
    }

    /// [`Self::map_reduce_chunks_mut`] with per-row flag plumbing and
    /// scheduling-grain control, for convergence-aware row scheduling:
    ///
    /// * `process` additionally returns one `bool` per row (e.g. "did any
    ///   cell of this row change?"); the flags come back as a `Vec<bool>`
    ///   indexed by row, written race-free because each row is claimed by
    ///   exactly one worker;
    /// * `grain` is a floor on the number of rows per scheduling block
    ///   (`1` = the default four-blocks-per-worker split). Passes whose
    ///   rows are mostly trivial — e.g. a square sweep where the dirty-row
    ///   scheduler turned most rows into copies — raise it to amortise
    ///   block-claim overhead.
    ///
    /// # Panics
    /// If `data.len()` is not a multiple of `row_len` (for non-empty data).
    pub fn map_reduce_chunks_flagged_mut<T, R>(
        &self,
        data: &mut [T],
        row_len: usize,
        grain: usize,
        process: impl Fn(usize, &mut [T]) -> (R, bool) + Sync,
        identity: impl Fn() -> R + Sync,
        merge: impl Fn(R, R) -> R + Sync,
    ) -> (R, Vec<bool>)
    where
        T: Send,
        R: Send,
    {
        if data.is_empty() {
            return (identity(), Vec::new());
        }
        let parts = disjoint::DisjointPartsMut::uniform(data, row_len);
        let rows = parts.parts();
        let mut flags = vec![false; rows];
        let workers = self.effective_threads();
        if workers <= 1 || rows <= 1 {
            let mut total = identity();
            for (row, flag_slot) in flags.iter_mut().enumerate() {
                // SAFETY: this sequential loop claims each part index
                // exactly once.
                let slice = unsafe { parts.part(row) };
                let (partial, flag) = process(row, slice);
                *flag_slot = flag;
                total = merge(total, partial);
            }
            return (total, flags);
        }
        #[cfg(feature = "parallel")]
        {
            // The flag vector is partitioned too (one slot per row), so
            // the per-row flag write goes through the same checked
            // boundary as the row data.
            let flag_parts = disjoint::DisjointPartsMut::uniform(&mut flags, 1);
            let (parts, flag_parts) = (&parts, &flag_parts);
            let (process, identity, merge) = (&process, &identity, &merge);
            let total =
                pool::run_blocks(workers, rows, grain, &move |range, acc: &mut Option<R>| {
                    let mut local = acc.take().unwrap_or_else(&identity);
                    for row in range {
                        // SAFETY: each row index is claimed by exactly
                        // one block; the single claim covers both the
                        // data part and the row's flag slot.
                        let (slice, flag_slot) = unsafe { (parts.part(row), flag_parts.part(row)) };
                        let (partial, flag) = process(row, slice);
                        flag_slot[0] = flag;
                        local = merge(local, partial);
                    }
                    *acc = Some(local);
                })
                .into_iter()
                .flatten()
                .fold(identity(), merge);
            (total, flags)
        }
        #[cfg(not(feature = "parallel"))]
        unreachable!("workers > 1 requires the `parallel` feature")
    }

    /// Produce `len` values by evaluating `f(i)` for every index, in
    /// parallel, preserving index order in the output.
    pub fn map_collect<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = Vec::new();
        self.map_collect_into(&mut out, len, f);
        out
    }

    /// Like [`Self::map_collect`], but reuses `out`'s allocation: the
    /// vector is cleared and refilled with `f(0), …, f(len - 1)`. Hot
    /// loops that collect once per iteration (e.g. wavefront diagonals)
    /// avoid a fresh allocation per call.
    pub fn map_collect_into<T, F>(&self, out: &mut Vec<T>, len: usize, f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        out.clear();
        let workers = self.effective_threads();
        if workers <= 1 || len <= 1 {
            out.extend((0..len).map(f));
            return;
        }
        #[cfg(feature = "parallel")]
        {
            out.reserve(len);
            let base = SendPtr(out.as_mut_ptr());
            pool::run_blocks(workers, len, 1, &|range, _acc: &mut Option<()>| {
                for i in range {
                    // SAFETY: each index is claimed by exactly one block,
                    // and `reserve` guarantees capacity for 0..len. The
                    // vector's length is still 0, so these slots are spare
                    // capacity no one else reads.
                    unsafe {
                        base.get().add(i).write(f(i));
                    }
                }
            });
            // SAFETY: run_blocks returns only after every index in 0..len
            // was processed, so the first `len` slots are initialised. (On
            // a worker panic run_blocks re-raises before this point and
            // the written elements leak, which is safe.)
            unsafe {
                out.set_len(len);
            }
        }
        #[cfg(not(feature = "parallel"))]
        unreachable!("workers > 1 requires the `parallel` feature")
    }
}

pub mod disjoint {
    //! Checked disjoint-slice partitioning — the **single unsafe
    //! boundary** behind every parallel map-reduce in [`super`].
    //!
    //! Historically each map-reduce variant carried its own
    //! `from_raw_parts_mut` call and its own copy of the aliasing
    //! argument. [`DisjointPartsMut`] centralises that: it takes
    //! ownership of a `&mut [T]` plus a description of how the buffer is
    //! tiled into parts, **verifies pairwise non-overlap at
    //! construction** (an always-on `O(parts)` check, cross-checked
    //! exhaustively in debug builds), and hands out `Send`able exclusive
    //! part slices from one unsafe core with one SAFETY argument
    //! ([`DisjointPartsMut::part`] — the only `from_raw_parts_mut` call
    //! site in this module tree, enforced by `pardp-xtask lint` and the
    //! unsafe-inventory CI report).
    //!
    //! What remains unsafe is only the *claim discipline*: `part` hands
    //! out `&mut` access through `&self`, so callers must guarantee each
    //! part index has at most one live borrow at a time. Both users in
    //! [`super`] get that for free — the sequential fallback loops over
    //! each index once, and the pool's block scheduler hands every index
    //! to exactly one worker via an atomic claim counter.

    use std::marker::PhantomData;

    /// How the parts tile the underlying buffer.
    #[derive(Clone, Copy)]
    enum Layout<'s> {
        /// Explicit `(start, end)` ranges, ascending and non-overlapping.
        Spans(&'s [(usize, usize)]),
        /// `rows` uniform parts of exactly `row_len` elements each —
        /// the dense-table tiling, kept implicit so hot callers with
        /// `O(n^2)` rows never materialise a span table.
        Uniform {
            /// Elements per part.
            row_len: usize,
            /// Number of parts.
            rows: usize,
        },
    }

    /// An exclusive partitioning of a mutable buffer into pairwise
    /// disjoint parts, validated at construction.
    ///
    /// The buffer is borrowed for the lifetime of the value; parts are
    /// handed out by [`DisjointPartsMut::part`]. The type is `Sync` for
    /// `T: Send` (see the SAFETY argument on the impl), which is what
    /// lets the work-stealing pool's workers pull their claimed parts
    /// straight out of one shared reference.
    pub struct DisjointPartsMut<'a, T> {
        base: *mut T,
        len: usize,
        layout: Layout<'a>,
        /// The partitioning logically owns the `&mut [T]` it was built
        /// from: nothing else may touch the buffer while it lives.
        _owner: PhantomData<&'a mut [T]>,
    }

    // SAFETY: sharing a `DisjointPartsMut` across threads only shares
    // the base address and the (immutable) layout; actual element access
    // goes through `part`, whose contract limits every part index to one
    // live borrow. Disjointness of the parts was validated at
    // construction, so borrows handed to different threads never alias —
    // the same exclusive-write discipline the paper's CREW operations
    // are designed around. `T: Send` because parts (and the `T`s in
    // them) move to worker threads.
    unsafe impl<T: Send> Sync for DisjointPartsMut<'_, T> {}
    // SAFETY: as above — the value is nothing but an address plus
    // layout, and element access is governed by `part`'s contract.
    unsafe impl<T: Send> Send for DisjointPartsMut<'_, T> {}

    impl<'a, T> DisjointPartsMut<'a, T> {
        /// Partition `data` into the explicit `spans` (each a `(start,
        /// end)` half-open range). Spans must be **ascending,
        /// non-overlapping and within bounds**; empty spans are fine.
        /// The check is always on — the soundness of every parallel
        /// caller rests on it, so it is not a `debug_assert` — and an
        /// exhaustive pairwise cross-check runs in debug builds.
        ///
        /// # Panics
        /// If the spans are out of order, overlapping, or out of bounds.
        pub fn new(data: &'a mut [T], spans: &'a [(usize, usize)]) -> Self {
            let mut cursor = 0usize;
            for &(s, e) in spans {
                assert!(
                    cursor <= s && s <= e && e <= data.len(),
                    "spans must be ascending, disjoint and within bounds \
                     (violated at ({s},{e}), previous end {cursor}, len {})",
                    data.len()
                );
                cursor = e;
            }
            debug_assert!(
                Self::pairwise_disjoint(spans),
                "ascending cursor check passed but exhaustive pairwise \
                 overlap check failed — validation bug"
            );
            DisjointPartsMut {
                base: data.as_mut_ptr(),
                len: data.len(),
                layout: Layout::Spans(spans),
                _owner: PhantomData,
            }
        }

        /// Partition `data` into uniform consecutive parts of `row_len`
        /// elements — semantically `new` with evenly spaced spans, but
        /// without materialising a span table (hot dense-table callers
        /// partition `O(n^2)` rows once per iteration). Uniform
        /// consecutive chunks are disjoint by construction; the division
        /// check below is what makes that argument airtight.
        ///
        /// # Panics
        /// If `row_len` is zero or does not divide `data.len()`.
        pub fn uniform(data: &'a mut [T], row_len: usize) -> Self {
            assert!(
                row_len > 0 && data.len().is_multiple_of(row_len),
                "buffer length {} is not a multiple of row length {row_len}",
                data.len()
            );
            DisjointPartsMut {
                base: data.as_mut_ptr(),
                len: data.len(),
                layout: Layout::Uniform {
                    row_len,
                    rows: data.len() / row_len,
                },
                _owner: PhantomData,
            }
        }

        /// Exhaustive `O(parts^2)` overlap check backing the linear
        /// cursor walk in [`DisjointPartsMut::new`] (debug builds only;
        /// capped so pathological part counts keep debug runs usable).
        fn pairwise_disjoint(spans: &[(usize, usize)]) -> bool {
            const EXHAUSTIVE_CAP: usize = 2048;
            let n = spans.len().min(EXHAUSTIVE_CAP);
            for i in 0..n {
                for j in 0..i {
                    let (si, ei) = spans[i];
                    let (sj, ej) = spans[j];
                    // Empty spans overlap nothing.
                    if si < ej && sj < ei {
                        return false;
                    }
                }
            }
            true
        }

        /// Number of parts in the partitioning.
        pub fn parts(&self) -> usize {
            match self.layout {
                Layout::Spans(s) => s.len(),
                Layout::Uniform { rows, .. } => rows,
            }
        }

        /// Whether the partitioning has no parts.
        pub fn is_empty(&self) -> bool {
            self.parts() == 0
        }

        /// The `(start, end)` range of part `index`.
        fn span(&self, index: usize) -> (usize, usize) {
            match self.layout {
                Layout::Spans(s) => s[index],
                Layout::Uniform { row_len, rows } => {
                    assert!(index < rows, "part index {index} out of {rows}");
                    (index * row_len, (index + 1) * row_len)
                }
            }
        }

        /// Hand out part `index` as an exclusive slice — the single
        /// unsafe core of the module (and the only `from_raw_parts_mut`
        /// call site in `exec`).
        ///
        /// # Safety
        ///
        /// The caller must guarantee that at most one live borrow of any
        /// given part index exists at a time (across all threads). The
        /// two callers in [`super`] discharge this structurally: the
        /// sequential fallbacks visit each index once in a loop, and the
        /// parallel paths hand each index to exactly one worker through
        /// the pool's atomic block-claim counter.
        // `&mut` out of `&self` is the whole point of the type (see the
        // `Sync` SAFETY argument); the claim contract is the caller's.
        #[allow(clippy::mut_from_ref)]
        #[inline]
        pub unsafe fn part(&self, index: usize) -> &mut [T] {
            let (s, e) = self.span(index);
            debug_assert!(s <= e && e <= self.len);
            // SAFETY: construction validated that all spans are in
            // bounds of the original buffer and pairwise disjoint, and
            // the buffer itself is exclusively borrowed for `'a` (no
            // outside aliases). Distinct indices therefore yield
            // non-overlapping slices, and the caller's contract ensures
            // the same index is never borrowed twice concurrently — so
            // this reference is unique for its lifetime.
            unsafe { std::slice::from_raw_parts_mut(self.base.add(s), e - s) }
        }
    }
}

/// Raw-pointer wrapper that may cross thread boundaries; soundness is the
/// caller's obligation (disjoint index claims). Slice partitioning goes
/// through [`disjoint::DisjointPartsMut`] instead — this wrapper remains
/// only for [`ExecBackend::map_collect_into`]'s writes into the spare
/// capacity of a vector, which no `&mut [T]` covers yet.
#[cfg(feature = "parallel")]
struct SendPtr<T>(*mut T);

#[cfg(feature = "parallel")]
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

#[cfg(feature = "parallel")]
impl<T> Copy for SendPtr<T> {}

#[cfg(feature = "parallel")]
impl<T> SendPtr<T> {
    /// The wrapped pointer. Going through a method (rather than field
    /// access) makes closures capture the whole `Sync` wrapper instead of
    /// disjointly capturing the raw pointer field.
    #[inline]
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: access discipline (one claimant per index) is enforced by the
// block scheduler; the wrapper itself only moves the address.
#[cfg(feature = "parallel")]
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as for `Send` — sharing the wrapper shares only the address;
// every dereference site carries its own exclusivity argument.
#[cfg(feature = "parallel")]
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(feature = "parallel")]
fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

#[cfg(feature = "parallel")]
mod pool {
    //! The shared work-stealing pool.
    //!
    //! One process-wide set of workers is spawned lazily and reused by
    //! every parallel region (jobs from concurrent tests interleave
    //! safely: each job has its own claim counters). A region is `tasks`
    //! consecutive blocks; workers and the submitting thread repeatedly
    //! claim the next block index and run the region body on it.

    use std::ops::Range;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// A closure invoked as `body(block_range, &mut accumulator)`.
    type RegionBody = *const (dyn Fn(Range<usize>, &mut Option<()>) + Sync);

    struct Job {
        /// Type-erased region body. A raw pointer (not a laundered
        /// reference) so that a drained `Job` lingering in the queue or in
        /// a worker's hand after the submitter returns holds no dangling
        /// reference — the pointer is only dereferenced after a successful
        /// block claim, which the submitter's completion wait covers.
        body: RegionBody,
        /// Next unclaimed block.
        next: AtomicUsize,
        /// Total blocks.
        blocks: usize,
        /// Block size (all but the last block have exactly this many items).
        block_len: usize,
        /// Total items.
        items: usize,
        /// Finished blocks.
        finished: AtomicUsize,
        /// Whether any block body panicked.
        poisoned: AtomicBool,
        /// Completion signal.
        done: Mutex<bool>,
        done_cv: Condvar,
        /// Cap on simultaneous participants (including the submitter).
        max_participants: usize,
        /// Current participants; workers increment it under the queue lock
        /// (see [`worker_loop`]) so the cap cannot be overshot.
        participants: AtomicUsize,
    }

    // SAFETY: `body` points at a `Sync` closure; every other field is
    // already thread-safe. The pointer's validity discipline is documented
    // on the field.
    unsafe impl Send for Job {}
    // SAFETY: as for `Send` — shared access only reaches `body` through
    // `help`, which dereferences it under the documented validity
    // discipline; all other fields are atomics and sync primitives.
    unsafe impl Sync for Job {}

    impl Job {
        /// Claim and run blocks until none remain. Returns whether this
        /// participant ran at least one block.
        fn help(&self) {
            loop {
                let b = self.next.fetch_add(1, Ordering::Relaxed);
                if b >= self.blocks {
                    return;
                }
                let start = b * self.block_len;
                let end = (start + self.block_len).min(self.items);
                let mut acc = None;
                // SAFETY: a block was successfully claimed, so the
                // submitter is still inside `run_blocks` (it waits for
                // `finished == blocks`), keeping the pointee alive.
                let body = unsafe { &*self.body };
                if catch_unwind(AssertUnwindSafe(|| body(start..end, &mut acc))).is_err() {
                    self.poisoned.store(true, Ordering::Release);
                }
                let done = self.finished.fetch_add(1, Ordering::AcqRel) + 1;
                if done == self.blocks {
                    *crate::fault::unpoison(self.done.lock()) = true;
                    self.done_cv.notify_all();
                }
            }
        }

        fn wait(&self) {
            let mut guard = crate::fault::unpoison(self.done.lock());
            while !*guard {
                guard = crate::fault::unpoison(self.done_cv.wait(guard));
            }
        }
    }

    struct PoolShared {
        queue: Mutex<Vec<Arc<Job>>>,
        available: Condvar,
    }

    fn shared() -> &'static PoolShared {
        static POOL: OnceLock<&'static PoolShared> = OnceLock::new();
        POOL.get_or_init(|| {
            let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
                queue: Mutex::new(Vec::new()),
                available: Condvar::new(),
            }));
            let workers = super::host_threads().saturating_sub(1).max(1);
            for w in 0..workers {
                std::thread::Builder::new()
                    .name(format!("pardp-worker-{w}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pool worker");
            }
            shared
        })
    }

    fn worker_loop(shared: &'static PoolShared) {
        loop {
            let job = {
                let mut queue = crate::fault::unpoison(shared.queue.lock());
                loop {
                    // Drop jobs that are fully claimed; join one that isn't.
                    if let Some(pos) = queue.iter().position(|j| {
                        j.next.load(Ordering::Relaxed) < j.blocks
                            && j.participants.load(Ordering::Relaxed) < j.max_participants
                    }) {
                        let job = Arc::clone(&queue[pos]);
                        // Join under the lock: concurrent workers see the
                        // raised count, so `max_participants` holds.
                        job.participants.fetch_add(1, Ordering::Relaxed);
                        queue.retain(|j| j.next.load(Ordering::Relaxed) < j.blocks);
                        break job;
                    }
                    queue.retain(|j| j.next.load(Ordering::Relaxed) < j.blocks);
                    queue = crate::fault::unpoison(shared.available.wait(queue));
                }
            };
            job.help();
            job.participants.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Run `items` units split into blocks across up to `workers`
    /// participants. `body(range, acc)` is called once per claimed block
    /// with a per-call accumulator slot; per-block results are returned to
    /// the caller for merging. Blocks are sized so there are roughly four
    /// per worker, which balances skewed per-item work against scheduling
    /// overhead; `min_block` raises the floor on items per block for
    /// callers whose items are individually too cheap to schedule.
    ///
    /// # Panics
    /// Re-raises (as a panic) any panic that occurred inside `body`.
    pub(super) fn run_blocks<R: Send>(
        workers: usize,
        items: usize,
        min_block: usize,
        body: &(dyn Fn(Range<usize>, &mut Option<R>) + Sync),
    ) -> Vec<Option<R>> {
        if items == 0 {
            return Vec::new();
        }
        let blocks = (workers * 4).min(items).max(1);
        let block_len = items.div_ceil(blocks).max(min_block.max(1));
        let blocks = items.div_ceil(block_len);

        // Collect per-block accumulators: the erased body writes into a
        // slot vector indexed by block.
        let slots: Vec<Mutex<Option<R>>> = (0..blocks).map(|_| Mutex::new(None)).collect();
        let slots_ref = &slots;
        let wrapped = move |range: Range<usize>, _unused: &mut Option<()>| {
            let block = range.start / block_len;
            let mut acc = None;
            body(range, &mut acc);
            *crate::fault::unpoison(slots_ref[block].lock()) = acc;
        };

        let short: *const (dyn Fn(Range<usize>, &mut Option<()>) + Sync + '_) = &wrapped;
        // SAFETY: the transmute only erases the (non-'static) capture
        // lifetime from the pointer's *type* — legitimate for a raw
        // pointer, whose validity is asserted at the dereference, not
        // here. The pointee (`wrapped`) lives until this function
        // returns; `help` only dereferences the pointer after claiming a
        // block, which the completion wait below covers.
        let body = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(Range<usize>, &mut Option<()>) + Sync + '_),
                RegionBody,
            >(short)
        };
        let job = Arc::new(Job {
            body,
            next: AtomicUsize::new(0),
            blocks,
            block_len,
            items,
            finished: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            max_participants: workers,
            participants: AtomicUsize::new(1),
        });

        let enqueued = blocks > 1;
        if enqueued {
            let shared = shared();
            {
                let mut queue = crate::fault::unpoison(shared.queue.lock());
                queue.push(Arc::clone(&job));
            }
            shared.available.notify_all();
        }
        job.help();
        job.wait();
        if enqueued {
            // Purge the drained job so the queue does not retain it (and
            // its stale body pointer) until the next worker scan.
            let mut queue = crate::fault::unpoison(shared().queue.lock());
            queue.retain(|j| !Arc::ptr_eq(j, &job));
        }
        if job.poisoned.load(Ordering::Acquire) {
            panic!("a parallel region panicked in a pool worker");
        }
        slots
            .into_iter()
            .map(|m| crate::fault::unpoison(m.into_inner()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parsing() {
        assert_eq!(
            "seq".parse::<ExecBackend>().unwrap(),
            ExecBackend::Sequential
        );
        assert_eq!(
            "sequential".parse::<ExecBackend>().unwrap(),
            ExecBackend::Sequential
        );
        assert_eq!(
            "parallel".parse::<ExecBackend>().unwrap(),
            ExecBackend::Parallel
        );
        assert_eq!(
            "threads:3".parse::<ExecBackend>().unwrap(),
            ExecBackend::Threads(3)
        );
        assert_eq!("8".parse::<ExecBackend>().unwrap(), ExecBackend::Threads(8));
        assert!("bogus".parse::<ExecBackend>().is_err());
    }

    #[test]
    fn backend_parse_errors_are_specific() {
        let missing = "threads:".parse::<ExecBackend>().unwrap_err();
        assert!(missing.contains("missing a worker count"), "{missing}");
        assert!(missing.contains("threads:4"), "{missing}");
        let bad = "threads:four".parse::<ExecBackend>().unwrap_err();
        assert!(bad.contains("bad worker count 'four'"), "{bad}");
        let unknown = "bogus".parse::<ExecBackend>().unwrap_err();
        assert!(unknown.contains("unknown backend"), "{unknown}");
    }

    #[test]
    fn backend_parse_rejects_zero_workers() {
        // `Threads(0)` programmatically means host size, but the textual
        // forms must not let `--backend 0` silently grab every core —
        // the error points at the `parallel` spelling instead.
        for spec in ["0", "threads:0"] {
            let err = spec.parse::<ExecBackend>().unwrap_err();
            assert!(err.contains("zero workers"), "{spec}: {err}");
            assert!(err.contains("parallel"), "{spec}: {err}");
        }
        // The programmatic meaning is unchanged.
        assert_eq!(
            ExecBackend::Threads(0).effective_threads(),
            ExecBackend::Parallel.effective_threads()
        );
    }

    #[test]
    fn capped_never_exceeds_the_cap_and_floors_at_sequential() {
        assert_eq!(ExecBackend::Sequential.capped(8), ExecBackend::Sequential);
        assert_eq!(ExecBackend::Threads(4).capped(2), ExecBackend::Threads(2));
        assert_eq!(ExecBackend::Threads(4).capped(1), ExecBackend::Sequential);
        assert_eq!(ExecBackend::Threads(4).capped(0), ExecBackend::Sequential);
        let host = ExecBackend::Parallel.effective_threads();
        assert!(ExecBackend::Parallel.capped(host).effective_threads() <= host);
        for backend in [ExecBackend::Parallel, ExecBackend::Threads(6)] {
            for cap in [1usize, 2, 3, 100] {
                assert!(backend.capped(cap).effective_threads() <= cap.max(1));
            }
        }
    }

    #[test]
    fn flagged_chunks_return_per_row_flags_on_all_backends() {
        for backend in [
            ExecBackend::Sequential,
            ExecBackend::Parallel,
            ExecBackend::Threads(3),
        ] {
            for grain in [1usize, 4, 1000] {
                let rows = 37usize;
                let width = 5usize;
                let mut data = vec![0u32; rows * width];
                let (total, flags) = backend.map_reduce_chunks_flagged_mut(
                    &mut data,
                    width,
                    grain,
                    |row, slice| {
                        slice.fill(row as u32);
                        (1u64, row % 3 == 0)
                    },
                    || 0u64,
                    |a, b| a + b,
                );
                assert_eq!(total, rows as u64, "{backend} grain={grain}");
                assert_eq!(flags.len(), rows);
                for (row, &flag) in flags.iter().enumerate() {
                    assert_eq!(flag, row % 3 == 0, "{backend} grain={grain} row={row}");
                }
                assert!(data
                    .chunks(width)
                    .enumerate()
                    .all(|(r, chunk)| chunk.iter().all(|&v| v == r as u32)));
            }
        }
    }

    #[test]
    fn sided_rows_partition_both_buffers_on_all_backends() {
        // Rows over a ragged data buffer; side slots of a different
        // granularity (two per row here), both written exclusively.
        let spans = [(0usize, 3usize), (3, 3), (3, 8), (8, 17)];
        let side_spans = [(0usize, 2usize), (2, 4), (4, 6), (6, 8)];
        for backend in [
            ExecBackend::Sequential,
            ExecBackend::Parallel,
            ExecBackend::Threads(3),
        ] {
            for grain in [1usize, 2, 100] {
                let mut data = vec![0u64; 17];
                let mut side = vec![0u32; 8];
                let total = backend.map_reduce_rows_sided_mut(
                    &mut data,
                    &spans,
                    &mut side,
                    &side_spans,
                    grain,
                    |row, slice, side| {
                        slice.fill(row as u64 + 1);
                        for s in side.iter_mut() {
                            *s = row as u32 + 10;
                        }
                        slice.len() as u64
                    },
                    || 0u64,
                    |a, b| a + b,
                );
                assert_eq!(total, 17, "{backend} grain={grain}");
                for (row, &(s, e)) in spans.iter().enumerate() {
                    assert!(data[s..e].iter().all(|&v| v == row as u64 + 1));
                }
                for (row, &(ss, se)) in side_spans.iter().enumerate() {
                    assert!(side[ss..se].iter().all(|&v| v == row as u32 + 10));
                }
            }
        }
    }

    #[test]
    fn ragged_flagged_rows_return_per_row_flags() {
        let spans: Vec<(usize, usize)> = (0..40).map(|r| (r * 3, r * 3 + 3)).collect();
        for backend in [ExecBackend::Sequential, ExecBackend::Threads(4)] {
            let mut data = vec![0u8; 120];
            let (total, flags) = backend.map_reduce_rows_flagged_mut(
                &mut data,
                &spans,
                1,
                |row, slice| {
                    slice.fill(row as u8);
                    (1u64, row % 5 == 0)
                },
                || 0u64,
                |a, b| a + b,
            );
            assert_eq!(total, 40, "{backend}");
            assert_eq!(flags.len(), 40);
            for (row, &flag) in flags.iter().enumerate() {
                assert_eq!(flag, row % 5 == 0, "{backend} row={row}");
            }
        }
    }

    #[test]
    fn sequential_is_single_threaded() {
        assert_eq!(ExecBackend::Sequential.effective_threads(), 1);
        assert!(!ExecBackend::Sequential.is_parallel());
        assert!(ExecBackend::Parallel.effective_threads() >= 1);
    }

    #[test]
    fn map_collect_preserves_order_on_all_backends() {
        for backend in [
            ExecBackend::Sequential,
            ExecBackend::Parallel,
            ExecBackend::Threads(3),
            ExecBackend::Threads(0),
        ] {
            for len in [0usize, 1, 2, 7, 100, 1000] {
                let out = backend.map_collect(len, |i| i * i);
                assert_eq!(
                    out,
                    (0..len).map(|i| i * i).collect::<Vec<_>>(),
                    "{backend} len={len}"
                );
            }
        }
    }

    #[test]
    fn map_reduce_rows_touches_every_row_exactly_once() {
        for backend in [ExecBackend::Sequential, ExecBackend::Threads(4)] {
            let rows = 53usize;
            let width = 17usize;
            let mut data = vec![0u64; rows * width];
            let spans: Vec<(usize, usize)> =
                (0..rows).map(|r| (r * width, (r + 1) * width)).collect();
            let total = backend.map_reduce_rows_mut(
                &mut data,
                &spans,
                |row, slice| {
                    for (c, cell) in slice.iter_mut().enumerate() {
                        *cell = (row * width + c) as u64 + 1;
                    }
                    slice.len() as u64
                },
                || 0u64,
                |a, b| a + b,
            );
            assert_eq!(total, (rows * width) as u64, "{backend}");
            assert!(
                data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1),
                "{backend}"
            );
        }
    }

    #[test]
    fn ragged_spans_work() {
        // Banded tables have rows of varying width.
        let spans = [(0usize, 3usize), (3, 4), (4, 10), (10, 10), (10, 17)];
        let mut data = vec![1u64; 17];
        for backend in [ExecBackend::Sequential, ExecBackend::Threads(4)] {
            let sum = backend.map_reduce_rows_mut(
                &mut data,
                &spans,
                |_row, slice| slice.iter().sum::<u64>(),
                || 0u64,
                |a, b| a + b,
            );
            assert_eq!(sum, 17, "{backend}");
        }
    }

    #[test]
    fn concurrent_jobs_from_many_threads_complete() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    let backend = ExecBackend::Threads(3);
                    let out = backend.map_collect(500, |i| i as u64 + t);
                    out.iter().sum::<u64>()
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let expect: u64 = (0..500u64).map(|i| i + t as u64).sum();
            assert_eq!(h.join().unwrap(), expect);
        }
    }

    #[test]
    fn disjoint_parts_validate_at_construction() {
        use super::disjoint::DisjointPartsMut;
        let overlap = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 10];
            DisjointPartsMut::new(&mut data, &[(0, 4), (3, 6)]);
        });
        assert!(overlap.is_err(), "overlapping spans must be rejected");
        let descending = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 10];
            DisjointPartsMut::new(&mut data, &[(4, 6), (0, 2)]);
        });
        assert!(descending.is_err(), "descending spans must be rejected");
        let oob = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 10];
            DisjointPartsMut::new(&mut data, &[(0, 12)]);
        });
        assert!(oob.is_err(), "out-of-bounds spans must be rejected");
        let ragged = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 10];
            DisjointPartsMut::uniform(&mut data, 3);
        });
        assert!(ragged.is_err(), "non-dividing row length must be rejected");
        let zero = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 10];
            DisjointPartsMut::uniform(&mut data, 0);
        });
        assert!(zero.is_err(), "zero row length must be rejected");
    }

    #[test]
    fn disjoint_parts_hand_out_every_element_exactly_once() {
        use super::disjoint::DisjointPartsMut;
        // Ragged spans with gaps and empty parts.
        let spans = [(0usize, 3usize), (3, 3), (4, 8), (9, 17)];
        let mut data = vec![0u32; 17];
        {
            let parts = DisjointPartsMut::new(&mut data, &spans);
            assert_eq!(parts.parts(), 4);
            assert!(!parts.is_empty());
            for (row, &(s, e)) in spans.iter().enumerate() {
                // SAFETY: each index is claimed exactly once by this loop.
                let slice = unsafe { parts.part(row) };
                assert_eq!(slice.len(), e - s);
                slice.fill(row as u32 + 1);
            }
        }
        for (i, &v) in data.iter().enumerate() {
            let expect = spans
                .iter()
                .position(|&(s, e)| s <= i && i < e)
                .map_or(0, |r| r as u32 + 1);
            assert_eq!(v, expect, "element {i}");
        }
        // Uniform tiling covers the buffer.
        let mut data = vec![0u64; 12];
        {
            let parts = DisjointPartsMut::uniform(&mut data, 4);
            assert_eq!(parts.parts(), 3);
            for row in 0..parts.parts() {
                // SAFETY: each index is claimed exactly once by this loop.
                unsafe { parts.part(row) }.fill(row as u64 + 10);
            }
        }
        assert_eq!(data, vec![10, 10, 10, 10, 11, 11, 11, 11, 12, 12, 12, 12]);
    }

    #[test]
    fn exactly_one_raw_partitioning_site_in_exec() {
        // The acceptance contract of the disjoint boundary: this module
        // tree contains exactly one `from_raw_parts_mut` call site,
        // inside `exec::disjoint` (also enforced by `pardp-xtask lint`
        // over the whole workspace, but cheap to pin here).
        let src = include_str!("exec.rs");
        // Built by concatenation so this test's own source doesn't match.
        let needle = ["from_raw_", "parts_mut("].concat();
        let hits = src.match_indices(&needle).count();
        assert_eq!(
            hits, 1,
            "unexpected raw-slice partitioning added to exec.rs"
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn pool_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            ExecBackend::Threads(2).map_collect(100, |i| {
                if i == 63 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
