//! The baseline of Rytter \[8\]: `O(log^2 n)` time, `O(n^6 / log n)`
//! processors.
//!
//! Same tables, same `a-activate` and `a-pebble`; the difference is the
//! square, which composes partial trees through **every** intermediate gap
//! (a full masked min-plus matrix square) instead of only endpoint-sharing
//! gaps. Pointer doubling over full compositions pebbles any optimal tree
//! in `O(log n)` moves, so the iteration count drops from `2*ceil(sqrt n)`
//! to logarithmic — at the price of `Theta(n^6)` work per iteration, the
//! gap the paper's restricted square closes to `O(n^5)` (§2) and §5
//! further to `O(n^3.5)`.

use crate::exec::ExecBackend;
use crate::fault::CancelToken;
use crate::ops::{a_activate_dense, a_pebble_dense, a_square_rytter_with, OpStats, SquareStrategy};
use crate::problem::DpProblem;
use crate::solver::{Algorithm, Solution};
use crate::tables::{DensePw, WTable};
use crate::trace::{IterationRecord, SolveTrace, StopReason};
use crate::weight::Weight;

/// Configuration of [`solve_rytter`].
#[derive(Debug, Clone, Copy)]
pub struct RytterConfig {
    /// Execution backend for the data-parallel passes.
    pub exec: ExecBackend,
    /// Keep per-iteration records.
    pub record_trace: bool,
    /// Stop early at a fixpoint (on by default; the schedule cap is the
    /// logarithmic bound below).
    pub fixpoint_stop: bool,
    /// Kernel of the full-composition square (same tables either way;
    /// see [`SquareStrategy`]).
    pub square: SquareStrategy,
}

impl Default for RytterConfig {
    fn default() -> Self {
        RytterConfig {
            exec: ExecBackend::Parallel,
            record_trace: false,
            fixpoint_stop: true,
            square: SquareStrategy::Auto,
        }
    }
}

/// The iteration bound for the doubling argument: `2*ceil(log2 n) + 4`
/// moves always reach the fixpoint (tests verify convergence well below
/// this; the constant is generous because activations feed in level by
/// level).
pub fn rytter_schedule(n: usize) -> u64 {
    2 * (usize::BITS - n.next_power_of_two().leading_zeros()) as u64 + 4
}

/// Solve recurrence (*) with Rytter's full-composition algorithm \[8\].
pub fn solve_rytter<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &RytterConfig,
) -> Solution<W> {
    solve_rytter_cancel(problem, config, CancelToken::NONE)
}

/// Cancellable Rytter solve for the façade: `cancel` is checked once
/// per iteration, and an expired deadline stops the run with
/// [`StopReason::DeadlineExceeded`] and a partial table.
pub(crate) fn solve_rytter_cancel<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    config: &RytterConfig,
    cancel: CancelToken,
) -> Solution<W> {
    let t0 = std::time::Instant::now();
    let n = problem.n();
    let exec = &config.exec;
    let schedule = rytter_schedule(n);

    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    let mut pw = DensePw::new(n);
    let mut pw_next = DensePw::new(n);
    let mut w_next = w.clone();

    let mut trace = SolveTrace {
        n,
        iterations: 0,
        schedule_bound: schedule,
        stop: StopReason::ScheduleExhausted,
        total_candidates: 0,
        per_iteration: Vec::new(),
    };
    let mut stats = OpStats::default();

    for iter in 1..=schedule {
        if cancel.is_cancelled() {
            trace.stop = StopReason::DeadlineExceeded;
            break;
        }
        let act = a_activate_dense(problem, &w, &mut pw, exec);
        let sq = a_square_rytter_with(&pw, &mut pw_next, config.square, exec);
        std::mem::swap(&mut pw, &mut pw_next);
        let pb = a_pebble_dense(&pw, &w, &mut w_next, exec);
        std::mem::swap(&mut w, &mut w_next);

        trace.iterations = iter;
        trace.total_candidates += act.candidates + sq.candidates + pb.candidates;
        stats = stats.merge(act).merge(sq).merge(pb);
        if config.record_trace {
            trace.per_iteration.push(IterationRecord {
                iteration: iter,
                activate: act.into(),
                square: sq.into(),
                pebble: pb.into(),
                root_finite: w.root().is_finite_cost(),
            });
        }
        if config.fixpoint_stop && !act.changed && !sq.changed && !pb.changed {
            trace.stop = StopReason::Fixpoint;
            break;
        }
    }

    Solution {
        algorithm: Algorithm::Rytter,
        w,
        trace,
        stats,
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::seq::solve_sequential;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    fn cfg() -> RytterConfig {
        RytterConfig {
            exec: ExecBackend::Sequential,
            record_trace: true,
            fixpoint_stop: true,
            square: SquareStrategy::Auto,
        }
    }

    #[test]
    fn naive_square_strategy_matches_streamed() {
        let mut rng = SmallRng::seed_from_u64(99);
        let dims: Vec<u64> = (0..=13).map(|_| rng.gen_range(1..40)).collect();
        let p = chain(dims);
        let streamed = solve_rytter(&p, &cfg());
        let naive = solve_rytter(
            &p,
            &RytterConfig {
                square: SquareStrategy::Naive,
                ..cfg()
            },
        );
        assert!(streamed.w.table_eq(&naive.w));
        assert_eq!(streamed.trace.iterations, naive.trace.iterations);
        assert_eq!(
            streamed.trace.total_candidates,
            naive.trace.total_candidates
        );
    }

    #[test]
    fn rytter_solves_clrs_chain() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let sol = solve_rytter(&p, &cfg());
        assert_eq!(sol.value(), 15125);
        assert!(sol.w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn rytter_matches_oracle_and_converges_logarithmically() {
        let mut rng = SmallRng::seed_from_u64(2025);
        for n in [2usize, 4, 8, 12, 17, 24] {
            let dims: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..50)).collect();
            let p = chain(dims);
            let oracle = solve_sequential(&p);
            let sol = solve_rytter(&p, &cfg());
            assert!(sol.w.table_eq(&oracle), "n={n}");
            let log = (n as f64).log2().ceil() as u64;
            assert!(
                sol.trace.iterations <= 2 * log + 4,
                "n={n}: {} iterations > 2 log + 4",
                sol.trace.iterations
            );
        }
    }

    #[test]
    fn rytter_work_dwarfs_everything() {
        use crate::sublinear::{solve_sublinear, SolverConfig};
        use crate::trace::Termination;
        let mut rng = SmallRng::seed_from_u64(3);
        let dims: Vec<u64> = (0..=20).map(|_| rng.gen_range(1..30)).collect();
        let p = chain(dims);
        let ryt = solve_rytter(&p, &cfg());
        let sub = solve_sublinear(
            &p,
            &SolverConfig {
                exec: ExecBackend::Sequential,
                termination: Termination::FixedSqrtN,
                record_trace: true,
                ..Default::default()
            },
        );
        // Even though Rytter runs fewer iterations, its per-iteration work
        // is far larger — the processor gap the paper closes.
        assert!(ryt.trace.iterations < sub.trace.iterations);
        let ryt_per_iter = ryt.trace.total_candidates / ryt.trace.iterations;
        let sub_per_iter = sub.trace.total_candidates / sub.trace.iterations;
        assert!(
            ryt_per_iter > 2 * sub_per_iter,
            "rytter {ryt_per_iter}/iter vs sublinear {sub_per_iter}/iter"
        );
    }

    #[test]
    fn parallel_equals_sequential_rytter() {
        let mut rng = SmallRng::seed_from_u64(6);
        let dims: Vec<u64> = (0..=14).map(|_| rng.gen_range(1..30)).collect();
        let p = chain(dims);
        let seq = solve_rytter(&p, &cfg());
        let par = solve_rytter(
            &p,
            &RytterConfig {
                exec: ExecBackend::Parallel,
                ..cfg()
            },
        );
        assert!(seq.w.table_eq(&par.w));
    }
}
