//! Structured observability for the serving and batch stacks: a typed
//! JSONL event stream, lock-free latency histograms, and Work/Span
//! metrics (ROADMAP item 5, "Observability beyond counters").
//!
//! The subsystem has three parts:
//!
//! 1. **Event stream** — [`Telemetry`] assigns every emitted [`Event`] a
//!    monotonically increasing sequence number and hands it to an
//!    [`EventSink`]. Three sinks ship with the crate: [`NullSink`]
//!    (drops everything — with no `Telemetry` configured the serving
//!    path does not even construct events, so telemetry off is truly
//!    zero-cost and output is bit-identical), [`WriterSink`] (buffered
//!    JSONL writer for `--log <path|->`), and [`RingSink`] (bounded
//!    in-memory ring for tests).
//! 2. **Latency histogram** — [`LatencyHistogram`], a lock-free
//!    log₂-bucketed histogram of microsecond samples backing the
//!    `latency_p50_us`/`latency_p90_us`/`latency_p99_us` fields of
//!    `{"cmd":"stats"}`.
//! 3. **Work/Span** — [`WorkSpan`], the classic parallel cost model
//!    pair derived from a solve's [`SolveTrace`]: *work* is the total
//!    number of candidate relaxations, *span* the critical-path depth
//!    estimate (iterations × per-iteration reduction depth). See
//!    [`SolveTrace::span_estimate`] for the exact definition and the
//!    discussion next to [`crate::ops::OpStats`].
//!
//! # Event schema
//!
//! Every event is one JSON object per line. All events carry `"event"`
//! (the type tag) and `"seq"` (the per-`Telemetry` sequence number,
//! gap-free within an emitting level). Remaining fields by type:
//!
//! | `event`      | level | fields                                                    |
//! |--------------|-------|-----------------------------------------------------------|
//! | `conn_open`  | debug | —                                                         |
//! | `conn_close` | debug | —                                                         |
//! | `admitted`   | info  | `job`                                                     |
//! | `rejected`   | error | `job`, `kind` (`invalid`\|`rejected`\|`overloaded`\|…)    |
//! | `regime`     | info  | `job`, `regime` (`small`\|`large`)                        |
//! | `cache`      | info  | `job`, `outcome` (`hit`\|`warm`\|`miss`\|`bypass`\|`dedup`) |
//! | `fault`      | error | `job`, `site` (a [`crate::fault::FaultSite`] name)        |
//! | `panic`      | error | `job`                                                     |
//! | `timeout`    | error | `job`                                                     |
//! | `completed`  | info  | `job`, `wall_us`, `value`                                 |
//! | `summary`    | info  | drained counters (see [`EventKind::Summary`])             |
//!
//! A drained serve job always yields the chain `admitted` → `regime` →
//! `cache` → (`completed` \| `panic` \| `timeout` \| `rejected`), in
//! that order, with strictly increasing `seq`.
//!
//! # Worked example
//!
//! ```text
//! $ printf '{"family":"chain","values":[30,35,15,5,10,20,25]}\n' \
//!     | pardp serve --pipe --log events.jsonl
//! $ cat events.jsonl
//! {"event":"conn_open","seq":0}
//! {"event":"admitted","seq":1,"job":0}
//! {"event":"regime","seq":2,"job":0,"regime":"small"}
//! {"event":"cache","seq":3,"job":0,"outcome":"bypass"}
//! {"event":"completed","seq":4,"job":0,"wall_us":123,"value":15125}
//! {"event":"conn_close","seq":5}
//! {"event":"summary","seq":6,"accepted":1,"rejected":0,...}
//! ```
//!
//! (`--log -` streams the same lines to stderr so stdout stays a clean
//! protocol channel; `--log-level error` keeps only the failure
//! events.)
//!
//! # In-process use
//!
//! ```
//! use pardp_core::telemetry::{EventKind, RingSink, Telemetry};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingSink::new(16));
//! let tel = Telemetry::new(ring.clone());
//! tel.emit(EventKind::Admitted { job: 0 });
//! tel.emit(EventKind::Completed { job: 0, wall_us: 42, value: 7 });
//! let events = ring.events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].seq, 0);
//! assert_eq!(events[1].seq, 1);
//! ```

use crate::trace::SolveTrace;
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Severity attached to each event type; the [`Telemetry`] level filter
/// drops events below the configured threshold *before* a sequence
/// number is assigned, so the emitted stream stays gap-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Everything, including connection open/close events.
    Debug,
    /// Per-job lifecycle events and the final summary (the default).
    Info,
    /// Only failures: rejections, faults, panics, timeouts.
    Error,
}

impl LogLevel {
    /// Parse a level name as accepted by the CLI `--log-level` flag.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "debug" => Ok(LogLevel::Debug),
            "info" => Ok(LogLevel::Info),
            "error" => Ok(LogLevel::Error),
            other => Err(format!(
                "unknown log level '{other}' (expected debug, info, or error)"
            )),
        }
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Error => "error",
        }
    }
}

/// Typed event payloads. See the [module docs](self) for the schema
/// table; `job` indices count request lines per connection (serve) or
/// submission order (batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A connection (or pipe session) opened.
    ConnOpen,
    /// A connection (or pipe session) closed.
    ConnClose,
    /// A job passed admission control and entered the queue.
    Admitted {
        /// Per-connection request index.
        job: u64,
    },
    /// A request was refused; `kind` is a [`crate::spec::ErrorKind`] name.
    Rejected {
        /// Per-connection request index.
        job: u64,
        /// Machine-readable error kind (`invalid`, `rejected`,
        /// `overloaded`, `timeout`, `internal`).
        kind: &'static str,
    },
    /// The scheduling regime chosen for a job at pickup.
    Regime {
        /// Per-connection request index.
        job: u64,
        /// `true` for the exclusive large-job regime.
        large: bool,
    },
    /// The solution-store outcome for a job.
    Cache {
        /// Per-connection request index.
        job: u64,
        /// `hit`, `warm`, `miss`, `bypass`, or (batch only) `dedup`.
        outcome: &'static str,
    },
    /// A scheduled fault from a [`crate::fault::FaultPlan`] fired.
    Fault {
        /// Per-connection request index.
        job: u64,
        /// The [`crate::fault::FaultSite`] name.
        site: &'static str,
    },
    /// A worker panicked solving this job (the job was isolated).
    Panic {
        /// Per-connection request index.
        job: u64,
    },
    /// A job exceeded its deadline and answered `{"kind":"timeout"}`.
    Timeout {
        /// Per-connection request index.
        job: u64,
    },
    /// A job completed and its record was written.
    Completed {
        /// Per-connection request index.
        job: u64,
        /// Wall-clock solve time in microseconds.
        wall_us: u64,
        /// The optimal value of the solved instance.
        value: u64,
    },
    /// Final drained counters, emitted once per serve/batch session —
    /// the machine-readable twin of the human stderr drain line.
    Summary {
        /// Jobs that passed admission.
        accepted: u64,
        /// Requests refused before queueing (admission, overload, oversize).
        rejected: u64,
        /// Malformed or unresolvable request lines.
        invalid: u64,
        /// Jobs answered with a record.
        completed: u64,
        /// Completed jobs solved in the small regime.
        completed_small: u64,
        /// Completed jobs solved in the large regime.
        completed_large: u64,
        /// Solves that panicked and were isolated.
        panics: u64,
        /// Solves that exceeded their deadline.
        timeouts: u64,
        /// Solution-store hits.
        cache_hits: u64,
        /// Solution-store misses (warm starts included).
        cache_misses: u64,
        /// Misses seeded from a smaller cached instance.
        warm_starts: u64,
        /// Store errors degraded to cold solves.
        cache_errors: u64,
    },
}

impl EventKind {
    /// The `"event"` tag this kind serializes under.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ConnOpen => "conn_open",
            EventKind::ConnClose => "conn_close",
            EventKind::Admitted { .. } => "admitted",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Regime { .. } => "regime",
            EventKind::Cache { .. } => "cache",
            EventKind::Fault { .. } => "fault",
            EventKind::Panic { .. } => "panic",
            EventKind::Timeout { .. } => "timeout",
            EventKind::Completed { .. } => "completed",
            EventKind::Summary { .. } => "summary",
        }
    }

    /// The severity this kind emits at.
    pub fn level(&self) -> LogLevel {
        match self {
            EventKind::ConnOpen | EventKind::ConnClose => LogLevel::Debug,
            EventKind::Admitted { .. }
            | EventKind::Regime { .. }
            | EventKind::Cache { .. }
            | EventKind::Completed { .. }
            | EventKind::Summary { .. } => LogLevel::Info,
            EventKind::Rejected { .. }
            | EventKind::Fault { .. }
            | EventKind::Panic { .. }
            | EventKind::Timeout { .. } => LogLevel::Error,
        }
    }
}

/// A sequenced event: what happened (`kind`) and when in the stream
/// (`seq`). Serializes to a flat JSON object (see the module schema
/// table) — the variant fields are inlined next to `event` and `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonically increasing per-[`Telemetry`] sequence number.
    pub seq: u64,
    /// The typed payload.
    pub kind: EventKind,
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            (
                "event".to_string(),
                Value::Str(self.kind.name().to_string()),
            ),
            ("seq".to_string(), Value::UInt(self.seq)),
        ];
        let mut push = |k: &str, v: Value| pairs.push((k.to_string(), v));
        match &self.kind {
            EventKind::ConnOpen | EventKind::ConnClose => {}
            EventKind::Admitted { job } | EventKind::Panic { job } | EventKind::Timeout { job } => {
                push("job", Value::UInt(*job));
            }
            EventKind::Rejected { job, kind } => {
                push("job", Value::UInt(*job));
                push("kind", Value::Str((*kind).to_string()));
            }
            EventKind::Regime { job, large } => {
                push("job", Value::UInt(*job));
                let regime = if *large { "large" } else { "small" };
                push("regime", Value::Str(regime.to_string()));
            }
            EventKind::Cache { job, outcome } => {
                push("job", Value::UInt(*job));
                push("outcome", Value::Str((*outcome).to_string()));
            }
            EventKind::Fault { job, site } => {
                push("job", Value::UInt(*job));
                push("site", Value::Str((*site).to_string()));
            }
            EventKind::Completed {
                job,
                wall_us,
                value,
            } => {
                push("job", Value::UInt(*job));
                push("wall_us", Value::UInt(*wall_us));
                push("value", Value::UInt(*value));
            }
            EventKind::Summary {
                accepted,
                rejected,
                invalid,
                completed,
                completed_small,
                completed_large,
                panics,
                timeouts,
                cache_hits,
                cache_misses,
                warm_starts,
                cache_errors,
            } => {
                push("accepted", Value::UInt(*accepted));
                push("rejected", Value::UInt(*rejected));
                push("invalid", Value::UInt(*invalid));
                push("completed", Value::UInt(*completed));
                push("completed_small", Value::UInt(*completed_small));
                push("completed_large", Value::UInt(*completed_large));
                push("panics", Value::UInt(*panics));
                push("timeouts", Value::UInt(*timeouts));
                push("cache_hits", Value::UInt(*cache_hits));
                push("cache_misses", Value::UInt(*cache_misses));
                push("warm_starts", Value::UInt(*warm_starts));
                push("cache_errors", Value::UInt(*cache_errors));
            }
        }
        Value::Object(pairs)
    }
}

/// Destination for emitted events. Implementations must be cheap and
/// infallible from the caller's perspective: observability failures
/// must never fail serving, so sinks swallow their own IO errors.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Deliver one event.
    fn emit(&self, event: &Event);
    /// Flush any buffering; the default is a no-op.
    fn flush(&self) {}
}

/// A sink that drops every event. [`Telemetry`] over a `NullSink`
/// still sequences events; for true zero cost leave the `telemetry`
/// config option unset instead — the serving path then skips event
/// construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// A buffered JSONL writer sink: one event per line, in emission
/// order. Backs the CLI `--log <path|->` flag. Write errors are
/// deliberately ignored — a full disk must not take the daemon down.
pub struct WriterSink {
    writer: Mutex<std::io::BufWriter<Box<dyn Write + Send>>>,
}

impl WriterSink {
    /// Wrap a writer (a file, stderr, a pipe, …).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        WriterSink {
            writer: Mutex::new(std::io::BufWriter::new(writer)),
        }
    }
}

impl std::fmt::Debug for WriterSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterSink").finish_non_exhaustive()
    }
}

impl EventSink for WriterSink {
    fn emit(&self, event: &Event) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut w = crate::fault::unpoison(self.writer.lock());
            let _ = writeln!(w, "{line}");
        }
    }

    fn flush(&self) {
        let mut w = crate::fault::unpoison(self.writer.lock());
        let _ = w.flush();
    }
}

/// A bounded in-memory ring sink for tests: keeps the most recent
/// `capacity` events, oldest evicted first.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot the retained events in emission order.
    pub fn events(&self) -> Vec<Event> {
        crate::fault::unpoison(self.buf.lock())
            .iter()
            .cloned()
            .collect()
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        let mut buf = crate::fault::unpoison(self.buf.lock());
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// The event-stream front end: a level filter, a gap-free sequence
/// counter, and a sink. Clone-free sharing via `Arc<Telemetry>`; see
/// the [module docs](self) for the emitted schema.
///
/// Sequencing and delivery happen under one short mutex, so the sink
/// receives events in exactly `seq` order even when many workers emit
/// concurrently — the stream is monotonic as written, not just as
/// numbered.
#[derive(Debug)]
pub struct Telemetry {
    seq: Mutex<u64>,
    level: LogLevel,
    sink: Arc<dyn EventSink>,
}

impl Telemetry {
    /// Telemetry at the default [`LogLevel::Info`].
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        Telemetry::with_level(sink, LogLevel::Info)
    }

    /// Telemetry filtering below `level`.
    pub fn with_level(sink: Arc<dyn EventSink>, level: LogLevel) -> Self {
        Telemetry {
            seq: Mutex::new(0),
            level,
            sink,
        }
    }

    /// The configured level threshold.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Emit one event: filtered events are dropped *before* sequencing
    /// so surviving events have consecutive `seq` values starting at 0.
    pub fn emit(&self, kind: EventKind) {
        if kind.level() < self.level {
            return;
        }
        let mut seq = crate::fault::unpoison(self.seq.lock());
        let s = *seq;
        *seq += 1;
        self.sink.emit(&Event { seq: s, kind });
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }
}

/// Number of log₂ buckets in a [`LatencyHistogram`]; covers the full
/// `u64` microsecond range.
const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of microsecond latencies.
///
/// Bucket `i > 0` counts samples in `[2^(i-1), 2^i)`; bucket 0 counts
/// zeros. Recording is a single relaxed atomic increment, so workers
/// record on the hot path without coordination; percentile queries
/// take a snapshot of the counts and walk the buckets, reporting the
/// (inclusive) upper bound `2^i − 1` of the bucket containing the
/// requested rank — exact to within the 2× bucket resolution.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one sample in microseconds.
    pub fn record(&self, micros: u64) {
        let idx = if micros == 0 {
            0
        } else {
            (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The value at quantile `p` in `[0, 1]` (e.g. `0.5` for p50),
    /// reported as the upper bound of the owning bucket; `0` when the
    /// histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        (1u64 << (HISTOGRAM_BUCKETS - 1)) - 1
    }
}

/// Work/Span summary of one solve under the classic parallel cost
/// model: `work` is the total operation count (candidate relaxations
/// summed over all iterations), `span` the critical-path length
/// estimate from [`SolveTrace::span_estimate`]. `work / span` bounds
/// the achievable parallel speed-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkSpan {
    /// Total candidate relaxations across the whole solve.
    pub work: u64,
    /// Estimated critical-path depth (see [`SolveTrace::span_estimate`]).
    pub span: u64,
}

impl WorkSpan {
    /// Derive Work/Span from a solve trace.
    pub fn of_trace(trace: &SolveTrace) -> Self {
        WorkSpan {
            work: trace.total_candidates,
            span: trace.span_estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Error);
        for level in [LogLevel::Debug, LogLevel::Info, LogLevel::Error] {
            assert_eq!(LogLevel::parse(level.name()), Ok(level));
        }
        assert!(LogLevel::parse("verbose").is_err());
    }

    #[test]
    fn sequencing_is_gap_free_and_monotonic() {
        let ring = Arc::new(RingSink::new(64));
        let tel = Telemetry::new(ring.clone());
        for job in 0..5 {
            tel.emit(EventKind::Admitted { job });
            tel.emit(EventKind::Completed {
                job,
                wall_us: 1,
                value: 0,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn level_filter_drops_before_sequencing() {
        let ring = Arc::new(RingSink::new(64));
        let tel = Telemetry::with_level(ring.clone(), LogLevel::Error);
        tel.emit(EventKind::ConnOpen);
        tel.emit(EventKind::Admitted { job: 0 });
        tel.emit(EventKind::Panic { job: 0 });
        tel.emit(EventKind::Timeout { job: 1 });
        let events = ring.events();
        assert_eq!(events.len(), 2);
        // Filtered events must not consume sequence numbers.
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].kind, EventKind::Panic { job: 0 });
    }

    #[test]
    fn ring_sink_is_bounded() {
        let ring = RingSink::new(3);
        for seq in 0..10u64 {
            ring.emit(&Event {
                seq,
                kind: EventKind::ConnOpen,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 7);
        assert_eq!(events[2].seq, 9);
    }

    #[test]
    fn events_serialize_flat() {
        let e = Event {
            seq: 3,
            kind: EventKind::Regime {
                job: 2,
                large: true,
            },
        };
        let line = serde_json::to_string(&e).unwrap();
        assert_eq!(
            line,
            r#"{"event":"regime","seq":3,"job":2,"regime":"large"}"#
        );

        let e = Event {
            seq: 4,
            kind: EventKind::Rejected {
                job: 2,
                kind: "overloaded",
            },
        };
        let line = serde_json::to_string(&e).unwrap();
        assert_eq!(
            line,
            r#"{"event":"rejected","seq":4,"job":2,"kind":"overloaded"}"#
        );

        let e = Event {
            seq: 5,
            kind: EventKind::Completed {
                job: 0,
                wall_us: 12,
                value: 15125,
            },
        };
        let line = serde_json::to_string(&e).unwrap();
        assert_eq!(
            line,
            r#"{"event":"completed","seq":5,"job":0,"wall_us":12,"value":15125}"#
        );
    }

    #[test]
    fn writer_sink_emits_jsonl() {
        use std::sync::atomic::AtomicBool;

        // A Write impl backed by a shared Vec so the test can read back.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>, Arc<AtomicBool>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.1.store(true, Ordering::Relaxed);
                Ok(())
            }
        }
        let bytes = Arc::new(Mutex::new(Vec::new()));
        let flushed = Arc::new(AtomicBool::new(false));
        let sink = WriterSink::new(Box::new(Shared(bytes.clone(), flushed.clone())));
        sink.emit(&Event {
            seq: 0,
            kind: EventKind::Admitted { job: 1 },
        });
        sink.flush();
        assert!(flushed.load(Ordering::Relaxed));
        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"event\":\"admitted\",\"seq\":0,\"job\":1}\n");
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(3); // bucket [2, 4) → upper bound 3
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512, 1024) → upper bound 1023
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(0.9), 3);
        assert_eq!(h.percentile(0.99), 1023);
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert!(h.percentile(0.9) <= h.percentile(0.99));
    }

    #[test]
    fn histogram_edge_samples() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.percentile(1.0), 0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), (1u64 << 63) - 1);
    }

    #[test]
    fn work_span_of_direct_trace() {
        let trace = SolveTrace::direct(8);
        let ws = WorkSpan::of_trace(&trace);
        assert_eq!(ws.work, trace.total_candidates);
        // A direct solve has no recorded parallel structure: span == work.
        assert_eq!(ws.span, trace.total_candidates);
    }
}
