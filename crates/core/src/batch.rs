//! Batch solving: many recurrence-(*) instances over one shared pool.
//!
//! PR 4 unified the whole algorithm spectrum behind the [`Solver`]
//! façade; this module adds the throughput layer on top of it. A
//! [`BatchSolver`] takes a set of jobs — heterogeneous problem sizes,
//! one [`Algorithm`] + [`SolveOptions`] per job or a shared default —
//! and solves them concurrently over the existing work-stealing pool,
//! returning one [`BatchResult`] per job (in submission order) plus
//! aggregate statistics and throughput in a [`BatchReport`].
//!
//! ## The two scheduling regimes
//!
//! Batch (inter-problem) and solver (intra-problem) parallelism compose
//! multiplicatively if applied naively: `k` workers each running a
//! solver that itself fans out over `k` workers wants `k²` threads. The
//! batch scheduler instead classifies every job by its `w`-table cell
//! count `n(n+1)/2` against [`BatchSolver::large_job_cells`]:
//!
//! * **Small jobs** (cells ≤ threshold) run *whole-problem-per-worker*:
//!   the job list is fanned out over the pool and each job is solved
//!   with its intra-problem backend forced to
//!   [`ExecBackend::Sequential`]. All parallelism is across problems —
//!   the pipelined-instance regime, where per-problem latency is traded
//!   for batch throughput.
//! * **Large jobs** (cells > threshold) fall back to the *parallel
//!   per-problem* path: they run one at a time on the submitting
//!   thread, each keeping its configured intra-problem backend (capped
//!   at the batch pool width), so the whole pool accelerates one big
//!   table at a time.
//!
//! **Oversubscription rule:** the two regimes never overlap in time,
//! and neither multiplies inner × outer parallelism — the large-job
//! phase runs one full-pool solve at a time, the small-job phase runs
//! at most one sequential solve per worker — so the batch never has
//! more than `exec.effective_threads()` runnable solver threads.
//!
//! Every solver is deterministic across backends (property-tested in
//! `tests/backend_parity.rs`), so forcing a small job's backend to
//! `Sequential` cannot change its result: batch output is bit-identical
//! to a sequential loop of [`Solver::solve`] with the same per-job
//! options (property-tested in `crates/core/tests/proptest_batch.rs`).
//!
//! ```
//! use pardp_core::prelude::*;
//!
//! let chains: Vec<Vec<u64>> = vec![
//!     vec![30, 35, 15, 5, 10, 20, 25],
//!     vec![5, 10, 3, 12, 5],
//! ];
//! let problems: Vec<_> = chains
//!     .into_iter()
//!     .map(|dims| {
//!         let n = dims.len() - 1;
//!         FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
//!     })
//!     .collect();
//! let jobs: Vec<BatchJob<'_, u64>> = problems
//!     .iter()
//!     .map(|p| BatchJob::new(p).algorithm(Algorithm::Sublinear))
//!     .collect();
//! let report = BatchSolver::new().solve_batch(&jobs);
//! assert_eq!(report.results.len(), 2);
//! assert_eq!(report.results[0].solution.value(), 15125);
//! assert!(report.throughput > 0.0);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::exec::ExecBackend;
use crate::ops::OpStats;
use crate::problem::DpProblem;
use crate::solver::{Algorithm, Solution, SolveOptions, Solver};
use crate::telemetry::Telemetry;
use crate::weight::Weight;

/// One problem in a batch: the instance plus the algorithm and options
/// to solve it with. Jobs borrow their problems, so one problem can
/// back several jobs (e.g. an algorithm sweep) without copies.
#[derive(Clone, Copy)]
pub struct BatchJob<'p, W> {
    /// The instance to solve.
    pub problem: &'p dyn DpProblem<W>,
    /// The algorithm for this job.
    pub algorithm: Algorithm,
    /// The solve options for this job. `options.exec` is the job's
    /// *intra-problem* backend preference; the batch scheduler may
    /// override it per the regime rules (see the module docs).
    pub options: SolveOptions,
}

impl<'p, W: Weight> BatchJob<'p, W> {
    /// A job for `problem` with the default algorithm
    /// ([`Algorithm::Sublinear`]) and [`SolveOptions::default`].
    pub fn new(problem: &'p dyn DpProblem<W>) -> Self {
        BatchJob {
            problem,
            algorithm: Algorithm::Sublinear,
            options: SolveOptions::default(),
        }
    }

    /// Set the algorithm (builder style).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set the options (builder style).
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// The job's `w`-table cell count `n(n+1)/2` — the size measure the
    /// scheduler classifies jobs by.
    pub fn cells(&self) -> usize {
        let n = self.problem.n();
        n * (n + 1) / 2
    }
}

impl<W> std::fmt::Debug for BatchJob<'_, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchJob")
            .field("algorithm", &self.algorithm)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

/// The outcome of one job of a batch.
#[derive(Debug, Clone)]
pub struct BatchResult<W> {
    /// Index of the job in the submitted batch (results are returned in
    /// submission order, so this equals the result's position; it is
    /// carried explicitly so results stay self-describing when filtered
    /// or re-sorted downstream).
    pub job: usize,
    /// The full uniform solution, exactly as [`Solver::solve`] returns.
    pub solution: Solution<W>,
    /// Whether the job ran under the parallel per-problem regime
    /// (`true`) or whole-problem-per-worker (`false`).
    pub large: bool,
}

impl<W> BatchResult<W> {
    /// Wall-clock time of this job alone — the façade-measured
    /// [`Solution::wall`], stamped on whichever worker ran the job.
    /// Under the small-job regime jobs run concurrently, so these do
    /// **not** sum to the batch wall time.
    pub fn wall(&self) -> Duration {
        self.solution.wall
    }
}

/// One isolated job failure of
/// [`BatchSolver::solve_batch_isolated`]: the job's index in the
/// submitted batch and the panic message of its solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Index of the failed job in the submitted batch.
    pub job: usize,
    /// The panic message (best-effort: `&str` and `String` payloads are
    /// rendered, anything else reads "the solve panicked").
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "the solve panicked".to_string()
    }
}

/// The outcome of a whole batch: per-job results in submission order
/// plus aggregate diagnostics.
#[derive(Debug, Clone)]
pub struct BatchReport<W> {
    /// One result per job, in submission order.
    pub results: Vec<BatchResult<W>>,
    /// Wall-clock time of the whole batch (both phases).
    pub wall: Duration,
    /// Aggregate operation statistics over every job (zero contribution
    /// from the direct algorithms, which do not instrument their loops).
    pub stats: OpStats,
    /// Jobs solved per second of batch wall time (`0.0` for an empty
    /// batch).
    pub throughput: f64,
    /// How many jobs ran whole-problem-per-worker.
    pub small_jobs: usize,
    /// How many jobs ran on the parallel per-problem path.
    pub large_jobs: usize,
}

/// Solve many problems concurrently over the shared work-stealing pool.
///
/// See the module docs for the scheduling regimes. The builder knobs:
///
/// * [`exec`](Self::exec) — the pool the batch fans out over
///   ([`ExecBackend::Parallel`] by default). `Sequential` degrades to a
///   plain loop (still respecting the per-job regime classification).
/// * [`large_job_cells`](Self::large_job_cells) — the cell-count
///   threshold separating the regimes. `usize::MAX` forces everything
///   through the pipelined small-job path; `0` forces everything
///   through the parallel per-problem path.
/// * [`telemetry`](Self::telemetry) — an optional structured event
///   stream ([`crate::telemetry`]); [`solve_resolved`](Self::solve_resolved)
///   emits one `admitted` → `regime` → `cache` → `completed`
///   (or `panic`) chain per job in submission order. `None` (the
///   default) emits nothing and changes no output byte.
#[derive(Debug, Clone)]
pub struct BatchSolver {
    exec: ExecBackend,
    large_job_cells: usize,
    telemetry: Option<Arc<Telemetry>>,
}

/// Default regime threshold: jobs with more `w`-table cells than this
/// (n ≳ 128) get the whole pool to themselves. Below it, a problem's
/// parallel passes are too short to amortise fan-out overhead, and
/// running whole problems per worker wins.
pub const DEFAULT_LARGE_JOB_CELLS: usize = 128 * 129 / 2;

impl Default for BatchSolver {
    fn default() -> Self {
        BatchSolver {
            exec: ExecBackend::Parallel,
            large_job_cells: DEFAULT_LARGE_JOB_CELLS,
            telemetry: None,
        }
    }
}

impl BatchSolver {
    /// A batch solver over the host-sized pool with the default regime
    /// threshold ([`DEFAULT_LARGE_JOB_CELLS`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the backend the batch fans out over.
    pub fn exec(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// Set the cell-count threshold above which a job runs on the
    /// parallel per-problem path.
    pub fn large_job_cells(mut self, cells: usize) -> Self {
        self.large_job_cells = cells;
        self
    }

    /// Attach a structured event stream: per-job lifecycle events from
    /// [`solve_resolved`](Self::solve_resolved). `None` is the default.
    pub fn telemetry(mut self, telemetry: Option<Arc<Telemetry>>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The backend the batch fans out over (for reporting — front ends
    /// should not restate the default).
    pub fn backend(&self) -> ExecBackend {
        self.exec
    }

    /// The configured regime threshold in `w`-table cells.
    pub fn threshold(&self) -> usize {
        self.large_job_cells
    }

    /// The attached event stream, if any (used by the cached batch
    /// entry point in `store.rs`).
    pub(crate) fn telemetry_handle(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Solve every job, returning per-job results in submission order
    /// plus aggregate statistics. Output is bit-identical to a
    /// sequential loop of [`Solver::solve`] over the same jobs.
    ///
    /// If any job's solve panics, the whole batch still runs to the end
    /// and the panic is then re-raised with the first failed job's
    /// message. Callers that want to keep the surviving results use
    /// [`solve_batch_isolated`](Self::solve_batch_isolated) instead.
    pub fn solve_batch<W: Weight>(&self, jobs: &[BatchJob<'_, W>]) -> BatchReport<W> {
        let (report, errors) = self.solve_batch_isolated(jobs);
        if let Some(e) = errors.into_iter().next() {
            panic!("batch job {} panicked: {}", e.job, e.message);
        }
        report
    }

    /// Like [`solve_batch`](Self::solve_batch), but a panicking job is
    /// **isolated** instead of taking the batch down: its panic is
    /// caught at the job boundary, the job is dropped from
    /// `report.results`, and a [`BatchError`] (submission index + panic
    /// message) is returned alongside, sorted by job index. Jobs that
    /// did not panic produce results bit-identical to a fault-free run.
    ///
    /// `small_jobs` / `large_jobs` still count *classified* jobs (the
    /// regime split of the submitted batch), so they may exceed
    /// `results.len()` when jobs failed.
    pub fn solve_batch_isolated<W: Weight>(
        &self,
        jobs: &[BatchJob<'_, W>],
    ) -> (BatchReport<W>, Vec<BatchError>) {
        let t0 = Instant::now();
        let workers = self.exec.effective_threads();
        let large: Vec<usize> = (0..jobs.len())
            .filter(|&i| jobs[i].cells() > self.large_job_cells)
            .collect();
        let small: Vec<usize> = (0..jobs.len())
            .filter(|&i| jobs[i].cells() <= self.large_job_cells)
            .collect();

        let mut slots: Vec<Option<BatchResult<W>>> = (0..jobs.len()).map(|_| None).collect();
        let mut errors: Vec<BatchError> = Vec::new();

        // Phase 1 — parallel per-problem: each large job gets the whole
        // pool, one at a time, with its own backend capped at the
        // batch's width.
        for &i in &large {
            let job = &jobs[i];
            let opts = job.options.exec(job.options.exec.capped(workers));
            match catch_unwind(AssertUnwindSafe(|| {
                Solver::new(job.algorithm).options(opts).solve(job.problem)
            })) {
                Ok(solution) => {
                    slots[i] = Some(BatchResult {
                        job: i,
                        solution,
                        large: true,
                    });
                }
                Err(payload) => errors.push(BatchError {
                    job: i,
                    message: panic_message(payload),
                }),
            }
        }

        // Phase 2 — whole-problem-per-worker: fan the small jobs over
        // the pool, each solved single-threaded so inner × outer
        // parallelism never multiplies. Panics are caught *inside* the
        // pool closure, so a failing job can never poison the shared
        // pool or abort its siblings.
        let small_results = self.exec.map_collect(small.len(), |s| {
            let i = small[s];
            let job = &jobs[i];
            let opts = job.options.exec(ExecBackend::Sequential);
            catch_unwind(AssertUnwindSafe(|| {
                Solver::new(job.algorithm).options(opts).solve(job.problem)
            }))
            .map(|solution| BatchResult {
                job: i,
                solution,
                large: false,
            })
            .map_err(|payload| BatchError {
                job: i,
                message: panic_message(payload),
            })
        });
        for r in small_results {
            match r {
                Ok(r) => {
                    let job = r.job;
                    slots[job] = Some(r);
                }
                Err(e) => errors.push(e),
            }
        }
        errors.sort_by_key(|e| e.job);

        let results: Vec<BatchResult<W>> = slots.into_iter().flatten().collect();
        let stats = results
            .iter()
            .fold(OpStats::default(), |acc, r| acc.merge(r.solution.stats));
        let wall = t0.elapsed();
        let throughput = if results.is_empty() {
            0.0
        } else {
            results.len() as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE)
        };
        (
            BatchReport {
                results,
                wall,
                stats,
                throughput,
                small_jobs: small.len(),
                large_jobs: large.len(),
            },
            errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    fn chains() -> Vec<Box<dyn DpProblem<u64>>> {
        vec![
            Box::new(chain(vec![30, 35, 15, 5, 10, 20, 25])),
            Box::new(chain(vec![5, 10, 3])),
            Box::new(chain(vec![2, 7, 3, 9, 4, 8, 5, 6])),
        ]
    }

    #[test]
    fn batch_matches_sequential_loop() {
        let problems = chains();
        let jobs: Vec<BatchJob<'_, u64>> = problems
            .iter()
            .zip([
                Algorithm::Sublinear,
                Algorithm::Sequential,
                Algorithm::Reduced,
            ])
            .map(|(p, a)| BatchJob::new(p.as_ref()).algorithm(a))
            .collect();
        for exec in [
            ExecBackend::Sequential,
            ExecBackend::Parallel,
            ExecBackend::Threads(2),
        ] {
            let report = BatchSolver::new().exec(exec).solve_batch(&jobs);
            assert_eq!(report.results.len(), jobs.len());
            assert_eq!(report.small_jobs, 3);
            assert_eq!(report.large_jobs, 0);
            for (i, (r, job)) in report.results.iter().zip(&jobs).enumerate() {
                assert_eq!(r.job, i);
                assert!(!r.large);
                let loop_sol = Solver::new(job.algorithm)
                    .options(job.options)
                    .solve(job.problem);
                assert_eq!(r.solution.value(), loop_sol.value(), "{exec} job {i}");
                assert!(r.solution.w.table_eq(&loop_sol.w), "{exec} job {i}");
                assert_eq!(
                    r.solution.trace.iterations, loop_sol.trace.iterations,
                    "{exec} job {i}"
                );
                assert_eq!(r.solution.stats, loop_sol.stats, "{exec} job {i}");
            }
        }
    }

    #[test]
    fn threshold_routes_jobs_between_regimes() {
        let problems = chains(); // n = 6, 2, 7 → cells = 21, 3, 28
        let jobs: Vec<BatchJob<'_, u64>> =
            problems.iter().map(|p| BatchJob::new(p.as_ref())).collect();
        let report = BatchSolver::new().large_job_cells(21).solve_batch(&jobs);
        assert_eq!(report.small_jobs, 2);
        assert_eq!(report.large_jobs, 1);
        assert!(report.results[2].large);
        assert!(!report.results[0].large && !report.results[1].large);
        // Regime routing cannot change any value.
        let all_large = BatchSolver::new().large_job_cells(0).solve_batch(&jobs);
        let all_small = BatchSolver::new()
            .large_job_cells(usize::MAX)
            .solve_batch(&jobs);
        assert_eq!(all_large.small_jobs, 0);
        assert_eq!(all_small.large_jobs, 0);
        for i in 0..jobs.len() {
            assert_eq!(
                report.results[i].solution.value(),
                all_large.results[i].solution.value()
            );
            assert!(report.results[i]
                .solution
                .w
                .table_eq(&all_small.results[i].solution.w));
        }
    }

    #[test]
    fn aggregate_stats_sum_per_job_stats() {
        let problems = chains();
        let jobs: Vec<BatchJob<'_, u64>> =
            problems.iter().map(|p| BatchJob::new(p.as_ref())).collect();
        let report = BatchSolver::new().solve_batch(&jobs);
        let summed = report
            .results
            .iter()
            .fold(OpStats::default(), |acc, r| acc.merge(r.solution.stats));
        assert_eq!(report.stats, summed);
        assert!(report.stats.candidates > 0);
        assert!(report.throughput > 0.0);
        assert!(report.wall > Duration::ZERO);
        for r in &report.results {
            assert!(r.wall() > Duration::ZERO);
        }
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let jobs: Vec<BatchJob<'_, u64>> = Vec::new();
        let report = BatchSolver::new().solve_batch(&jobs);
        assert!(report.results.is_empty());
        assert_eq!(report.throughput, 0.0);
        assert_eq!(report.stats, OpStats::default());
        assert_eq!((report.small_jobs, report.large_jobs), (0, 0));
    }

    fn poison_chain(n: usize) -> impl DpProblem<u64> {
        // f() panics on every candidate evaluation, so any solve of this
        // problem with n >= 2 panics.
        FnProblem::new(
            n,
            |_| 0u64,
            |_, _, _| -> u64 { panic!("injected solve panic") },
        )
    }

    #[test]
    fn isolated_batch_survives_a_panicking_job() {
        let good = chains();
        let bad = poison_chain(5);
        for threshold in [usize::MAX, 0] {
            // Both regimes must isolate: whole-problem-per-worker
            // (threshold = MAX) and parallel per-problem (threshold = 0).
            let jobs: Vec<BatchJob<'_, u64>> = vec![
                BatchJob::new(good[0].as_ref()),
                BatchJob::new(&bad),
                BatchJob::new(good[2].as_ref()),
            ];
            let (report, errors) = BatchSolver::new()
                .large_job_cells(threshold)
                .solve_batch_isolated(&jobs);
            assert_eq!(report.results.len(), 2, "threshold={threshold}");
            assert_eq!(errors.len(), 1);
            assert_eq!(errors[0].job, 1);
            assert_eq!(errors[0].message, "injected solve panic");
            // Survivors keep their submission indices and values.
            assert_eq!(report.results[0].job, 0);
            assert_eq!(report.results[0].solution.value(), 15125);
            assert_eq!(report.results[1].job, 2);
            // The classification counts still describe the whole batch.
            assert_eq!(report.small_jobs + report.large_jobs, 3);
        }
    }

    #[test]
    fn isolated_batch_pool_is_reusable_after_a_panic() {
        let bad = poison_chain(4);
        let jobs: Vec<BatchJob<'_, u64>> = vec![BatchJob::new(&bad)];
        let solver = BatchSolver::new();
        let (report, errors) = solver.solve_batch_isolated(&jobs);
        assert!(report.results.is_empty());
        assert_eq!(errors.len(), 1);
        // The shared pool must still be usable for a clean batch.
        let good = chains();
        let jobs: Vec<BatchJob<'_, u64>> = good.iter().map(|p| BatchJob::new(p.as_ref())).collect();
        let report = solver.solve_batch(&jobs);
        assert_eq!(report.results.len(), 3);
        assert_eq!(report.results[0].solution.value(), 15125);
    }

    #[test]
    #[should_panic(expected = "batch job 0 panicked: injected solve panic")]
    fn solve_batch_still_propagates_panics() {
        let bad = poison_chain(4);
        let jobs: Vec<BatchJob<'_, u64>> = vec![BatchJob::new(&bad)];
        BatchSolver::new().solve_batch(&jobs);
    }

    #[test]
    fn mixed_algorithms_per_job_are_honoured() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let jobs: Vec<BatchJob<'_, u64>> = Algorithm::ALL
            .iter()
            .filter(|&&a| a != Algorithm::Knuth) // chains lack the QI
            .map(|&a| BatchJob::new(&p).algorithm(a))
            .collect();
        let report = BatchSolver::new().solve_batch(&jobs);
        for (r, job) in report.results.iter().zip(&jobs) {
            assert_eq!(r.solution.algorithm, job.algorithm);
            assert_eq!(r.solution.value(), 15125, "{}", job.algorithm);
        }
    }
}
