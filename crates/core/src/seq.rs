//! Sequential baselines for recurrence (*).
//!
//! * [`solve_sequential`] — the classic `O(n^3)` dynamic program \[1\],
//!   the work-optimal baseline every parallel algorithm is compared to;
//! * [`solve_knuth`] — the `O(n^2)` Knuth–Yao speedup, valid when the
//!   instance satisfies the quadrangle inequality / monotonicity (e.g.
//!   optimal binary search trees, Knuth 1971);
//! * [`brute_force_value`] — exponential enumeration of *all*
//!   parenthesizations, a DP-free oracle for small `n` used by tests.

use crate::problem::DpProblem;
use crate::tables::WTable;
use crate::weight::Weight;

/// The classic sequential `O(n^3)` dynamic program: fill `w(i,j)` by
/// increasing interval length.
pub fn solve_sequential<W: Weight, P: DpProblem<W> + ?Sized>(problem: &P) -> WTable<W> {
    let n = problem.n();
    let mut w = WTable::new(n);
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    for d in 2..=n {
        for i in 0..=n - d {
            let j = i + d;
            let mut best = W::INFINITY;
            for k in i + 1..j {
                let cand = w.get(i, k).add(w.get(k, j)).add(problem.f(i, k, j));
                best = best.min2(cand);
            }
            w.set(i, j, best);
        }
    }
    w
}

/// The optimal split points alongside the table: `root(i,j)` is the
/// smallest `k` achieving `w(i,j)`.
pub fn solve_sequential_with_roots<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
) -> (WTable<W>, Vec<usize>) {
    let n = problem.n();
    let m = n + 1;
    let mut w = WTable::new(n);
    let mut roots = vec![0usize; m * m];
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
    }
    for d in 2..=n {
        for i in 0..=n - d {
            let j = i + d;
            let mut best = W::INFINITY;
            let mut best_k = i + 1;
            for k in i + 1..j {
                let cand = w.get(i, k).add(w.get(k, j)).add(problem.f(i, k, j));
                if cand < best {
                    best = cand;
                    best_k = k;
                }
            }
            w.set(i, j, best);
            roots[i * m + j] = best_k;
        }
    }
    (w, roots)
}

/// The Knuth–Yao `O(n^2)` speedup: restrict the split search for `(i,j)`
/// to `[root(i,j-1), root(i+1,j)]`.
///
/// **Validity**: requires the instance to satisfy the quadrangle
/// inequality and interval monotonicity (true for optimal binary search
/// trees; *not* true for arbitrary (*) instances — matrix chains can
/// violate it). Callers are responsible for using it only on eligible
/// problems; tests cross-check it against [`solve_sequential`] on OBST
/// instances.
pub fn solve_knuth<W: Weight, P: DpProblem<W> + ?Sized>(problem: &P) -> WTable<W> {
    let n = problem.n();
    let m = n + 1;
    let mut w = WTable::new(n);
    let mut roots = vec![0usize; m * m];
    for i in 0..n {
        w.set(i, i + 1, problem.init(i));
        roots[i * m + i + 1] = i; // sentinel: leaf "root"
    }
    for d in 2..=n {
        for i in 0..=n - d {
            let j = i + d;
            let lo = if d == 2 {
                i + 1
            } else {
                roots[i * m + (j - 1)].max(i + 1)
            };
            let hi = if d == 2 {
                i + 1
            } else {
                roots[(i + 1) * m + j].min(j - 1)
            };
            let mut best = W::INFINITY;
            let mut best_k = lo;
            for k in lo..=hi {
                let cand = w.get(i, k).add(w.get(k, j)).add(problem.f(i, k, j));
                if cand < best {
                    best = cand;
                    best_k = k;
                }
            }
            w.set(i, j, best);
            roots[i * m + j] = best_k;
        }
    }
    w
}

/// Exponential-time oracle: the minimum over **all** full binary trees on
/// the interval `(i, j)`, evaluated by direct enumeration with no
/// memoisation. `Catalan(j - i - 1)` tree evaluations — keep `j - i <= 12`.
pub fn brute_force_value<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    i: usize,
    j: usize,
) -> W {
    assert!(i < j && j <= problem.n());
    if j == i + 1 {
        return problem.init(i);
    }
    let mut best = W::INFINITY;
    for k in i + 1..j {
        let cand = brute_force_value(problem, i, k)
            .add(brute_force_value(problem, k, j))
            .add(problem.f(i, k, j));
        best = best.min2(cand);
    }
    best
}

/// Sequential oracle for the **true partial weights** `pw(i,j,p,q)` (§2,
/// Definition 2.1): the minimum weight over all partial trees rooted at
/// `(i,j)` with gap `(p,q)`.
///
/// Evaluated by the one-step decomposition at the root: a partial tree
/// with a proper gap splits at some `k`, the gap lying in one of the two
/// sons, the other son being a complete (optimal) subtree:
///
/// ```text
/// pw(i,j,p,q) = min over i < k < j of
///     f(i,k,j) + w(k,j) + pw(i,k,p,q)     if q <= k
///     f(i,k,j) + w(i,k) + pw(k,j,p,q)     if p >= k
/// pw(i,j,i,j) = 0
/// ```
///
/// `O(n^5)` time, `O(n^4)` memory — a test oracle (keep `n <= 14`). Used
/// to machine-check the §4 claim (b): `pw'` never under-shoots `pw`, and
/// reaches it at the fixpoint.
pub fn solve_pw_oracle<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &crate::tables::WTable<W>,
) -> crate::tables::DensePw<W> {
    let n = problem.n();
    let mut pw = crate::tables::DensePw::new(n);
    // Increasing interval width d so sub-partials are ready.
    for d in 2..=n {
        for i in 0..=n - d {
            let j = i + d;
            let a = pw.indexer().index(i, j);
            for p in i..j {
                for q in p + 1..=j {
                    if p == i && q == j {
                        continue;
                    }
                    let b = pw.indexer().index(p, q);
                    let mut best = W::INFINITY;
                    for k in i + 1..j {
                        if q <= k {
                            // Gap inside the left son (i,k).
                            let inner = if (p, q) == (i, k) {
                                W::ZERO
                            } else {
                                pw.get(i, k, p, q)
                            };
                            best = best.min2(problem.f(i, k, j).add(w.get(k, j)).add(inner));
                        }
                        if p >= k {
                            // Gap inside the right son (k,j).
                            let inner = if (p, q) == (k, j) {
                                W::ZERO
                            } else {
                                pw.get(k, j, p, q)
                            };
                            best = best.min2(problem.f(i, k, j).add(w.get(i, k)).add(inner));
                        }
                    }
                    pw.set_ab(a, b, best);
                }
            }
        }
    }
    pw
}

/// Total sequential work (candidate evaluations) of the `O(n^3)` DP for
/// size `n` — the baseline row of the E5 work-accounting table.
pub fn sequential_work(n: usize) -> u64 {
    // sum over d=2..n of (n - d + 1)(d - 1)
    let n = n as u64;
    (2..=n).map(|d| (n - d + 1) * (d - 1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnProblem, TabulatedProblem};

    /// CLRS 15.2 matrix-chain example: dims 30,35,15,5,10,20,25 -> 15125.
    fn clrs_chain() -> impl DpProblem<u64> {
        let dims = [30u64, 35, 15, 5, 10, 20, 25];
        FnProblem::new(6, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    #[test]
    fn clrs_matrix_chain_value() {
        let w = solve_sequential(&clrs_chain());
        assert_eq!(w.root(), 15125);
    }

    #[test]
    fn sequential_matches_brute_force_on_random_instances() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for n in 2..=8usize {
            for _ in 0..10 {
                let init: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
                let f_vals: Vec<u64> = (0..(n + 1).pow(3)).map(|_| rng.gen_range(0..50)).collect();
                let m = n + 1;
                let p = TabulatedProblem::new(init, |i, k, j| f_vals[(i * m + k) * m + j]);
                let w = solve_sequential(&p);
                for i in 0..n {
                    for j in i + 1..=n {
                        assert_eq!(w.get(i, j), brute_force_value(&p, i, j), "n={n} ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn roots_achieve_the_optimum() {
        let p = clrs_chain();
        let (w, roots) = solve_sequential_with_roots(&p);
        let n = p.n();
        let m = n + 1;
        for i in 0..n {
            for j in i + 2..=n {
                let k = roots[i * m + j];
                assert!(i < k && k < j);
                let via = w.get(i, k).add(w.get(k, j)).add(p.f(i, k, j));
                assert_eq!(via, w.get(i, j), "({i},{j}) via k={k}");
            }
        }
    }

    #[test]
    fn knuth_matches_full_dp_on_obst_like_instances() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        // OBST-like: f(i,k,j) = W(i,j) independent of k, W superadditive
        // (interval weight = sum of element weights) — satisfies QI.
        for n in 2..=20usize {
            let weights: Vec<u64> = (0..=n).map(|_| rng.gen_range(1..20)).collect();
            let prefix: Vec<u64> = std::iter::once(0)
                .chain(weights.iter().scan(0, |acc, &x| {
                    *acc += x;
                    Some(*acc)
                }))
                .collect();
            let w_ij = move |i: usize, j: usize| prefix[j] - prefix[i];
            let p = FnProblem::new(n, move |_i| 1u64, move |i, _k, j| w_ij(i, j));
            let full = solve_sequential(&p);
            let fast = solve_knuth(&p);
            assert!(full.table_eq(&fast), "n={n}");
        }
    }

    #[test]
    fn sequential_work_closed_form() {
        // n=2: d=2: 1*1 = 1. n=3: d=2: 2*1, d=3: 1*2 -> 4.
        assert_eq!(sequential_work(2), 1);
        assert_eq!(sequential_work(3), 4);
        // Cubic growth: ratio between n and 2n should approach 8.
        let r = sequential_work(400) as f64 / sequential_work(200) as f64;
        assert!((r - 8.0).abs() < 0.3, "r={r}");
    }

    #[test]
    fn single_object_instance() {
        let p = FnProblem::new(1, |_| 9u64, |_, _, _| 0u64);
        let w = solve_sequential(&p);
        assert_eq!(w.root(), 9);
    }

    #[test]
    fn float_weights_work() {
        let dims = [2.0f64, 3.0, 4.0, 5.0];
        let p = FnProblem::new(3, |_| 0.0f64, move |i, k, j| dims[i] * dims[k] * dims[j]);
        let w = solve_sequential(&p);
        // (A1 A2) A3: 2*3*4 + 2*4*5 = 64; A1 (A2 A3): 3*4*5 + 2*3*5 = 90.
        assert!(w.root().cost_eq(&64.0));
    }
}
