//! The three parallel operations of the algorithm (§2), in three storage
//! regimes:
//!
//! * **dense** — the `O(n^5)`-work algorithm of §2/§4 over [`DensePw`];
//! * **rytter** — the full-composition square of Rytter [8] (`O(n^6)`
//!   work) over the same dense storage, used as the baseline;
//! * **banded** — the §5 reduced-processor variant over [`BandedPw`]
//!   (`O(n^3.5)` work per square), with the windowed pebble step.
//!
//! Every operation has PRAM semantics: all reads observe the *previous*
//! state. `a-square` and `a-pebble` therefore read from one buffer and
//! write another (the caller swaps); `a-activate` only writes cells no
//! other task reads in the same step, so it updates in place.
//!
//! Each function returns [`OpStats`]: the number of composition candidates
//! examined (the unit-work measure used by the E5/E8 accounting) and
//! whether any table cell strictly improved (the §7 convergence signal).
//! All functions take an [`ExecBackend`]; the parallel backends partition
//! work by table row, which keeps writes disjoint without locks (the CREW
//! exclusive-write discipline), so every backend computes identical
//! tables.

use crate::exec::ExecBackend;
use crate::problem::DpProblem;
use crate::tables::{BandedPw, DensePw, WTable};
use crate::weight::Weight;

/// Work and change accounting for one operation application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Composition candidates examined (pairs combined with `+` and fed to
    /// `min`). This is the unit-work measure of the paper's analysis.
    pub candidates: u64,
    /// Table cells written.
    pub writes: u64,
    /// Whether any cell strictly improved.
    pub changed: bool,
}

impl OpStats {
    /// Merge statistics from two disjoint portions of the index space.
    pub fn merge(self, other: OpStats) -> OpStats {
        OpStats {
            candidates: self.candidates + other.candidates,
            writes: self.writes + other.writes,
            changed: self.changed || other.changed,
        }
    }
}

// ---------------------------------------------------------------------------
// a-activate (eq. 1a/1b)
// ---------------------------------------------------------------------------

/// `a-activate` over dense storage:
/// for all `0 <= i < k < j <= n` in parallel,
///
/// ```text
/// pw'(i,j,i,k) := min { pw'(i,j,i,k), f(i,k,j) + w'(k,j) }
/// pw'(i,j,k,j) := min { pw'(i,j,k,j), f(i,k,j) + w'(i,k) }
/// ```
///
/// Each `pw'` cell is written by exactly one triple, so the update is
/// CREW-safe in place.
pub fn a_activate_dense<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
    pw: &mut DensePw<W>,
    exec: &ExecBackend,
) -> OpStats {
    let dim = pw.dim();
    let idx = pw.indexer().clone();
    let process_row = |a: usize, row: &mut [W]| -> OpStats {
        let (i, j) = idx.pair(a);
        let mut stats = OpStats::default();
        if j - i < 2 {
            return stats;
        }
        for k in i + 1..j {
            let fikj = problem.f(i, k, j);
            // Gap (i,k): remaining subtree is (k,j).
            let b1 = idx.index(i, k);
            let cand1 = fikj.add(w.get(k, j));
            if cand1 < row[b1] {
                row[b1] = cand1;
                stats.changed = true;
            }
            // Gap (k,j): remaining subtree is (i,k).
            let b2 = idx.index(k, j);
            let cand2 = fikj.add(w.get(i, k));
            if cand2 < row[b2] {
                row[b2] = cand2;
                stats.changed = true;
            }
            stats.candidates += 2;
            stats.writes += 2;
        }
        stats
    };
    exec.map_reduce_chunks_mut(
        pw.as_mut_slice(),
        dim,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

// ---------------------------------------------------------------------------
// a-square (eq. 2c) — the paper's restricted composition
// ---------------------------------------------------------------------------

/// `a-square` over dense storage:
/// for all `0 <= i <= p < q <= j <= n` in parallel,
///
/// ```text
/// pw'(i,j,p,q) := min { pw'(i,j,p,q),
///                       min_{i <= r < p} pw'(i,j,r,q) + pw'(r,q,p,q),
///                       min_{q < s <= j} pw'(i,j,p,s) + pw'(p,s,p,q) }
/// ```
///
/// The composition is *restricted* to intermediate gaps sharing an
/// endpoint with `(p,q)` — the source of the `O(n^5)` (vs Rytter's
/// `O(n^6)`) work bound. Reads come from `prev`; writes go to `next`.
pub fn a_square_dense<W: Weight>(
    prev: &DensePw<W>,
    next: &mut DensePw<W>,
    exec: &ExecBackend,
) -> OpStats {
    let dim = prev.dim();
    let idx = prev.indexer().clone();
    let prev_data = prev.as_slice();
    let process_row = |a: usize, next_row: &mut [W]| -> OpStats {
        let (i, j) = idx.pair(a);
        let prev_row = &prev_data[a * dim..(a + 1) * dim];
        let mut stats = OpStats::default();
        for p in i..j {
            for q in p + 1..=j {
                let b = idx.index(p, q);
                let old = prev_row[b];
                let mut best = old;
                // Intermediate gaps (r, q), i <= r < p.
                for r in i..p {
                    let c = idx.index(r, q);
                    let cand = prev_row[c].add(prev_data[c * dim + b]);
                    best = best.min2(cand);
                }
                // Intermediate gaps (p, s), q < s <= j.
                for s in q + 1..=j {
                    let c = idx.index(p, s);
                    let cand = prev_row[c].add(prev_data[c * dim + b]);
                    best = best.min2(cand);
                }
                stats.candidates += (p - i) as u64 + (j - q) as u64;
                stats.writes += 1;
                if best < old {
                    stats.changed = true;
                }
                next_row[b] = best;
            }
        }
        stats
    };
    exec.map_reduce_chunks_mut(
        next.as_mut_slice(),
        dim,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

/// Rytter's square [8] over the same dense storage: composition through
/// **every** intermediate gap,
///
/// ```text
/// pw'(i,j,p,q) := min { pw'(i,j,p,q),
///                       min_{(r,s): i<=r<=p, q<=s<=j, r<s}
///                           pw'(i,j,r,s) + pw'(r,s,p,q) }
/// ```
///
/// i.e. a masked min-plus matrix square — `Theta(n^6)` candidates, the
/// work figure the paper improves on.
pub fn a_square_rytter<W: Weight>(
    prev: &DensePw<W>,
    next: &mut DensePw<W>,
    exec: &ExecBackend,
) -> OpStats {
    let dim = prev.dim();
    let idx = prev.indexer().clone();
    let prev_data = prev.as_slice();
    let process_row = |a: usize, next_row: &mut [W]| -> OpStats {
        let (i, j) = idx.pair(a);
        let prev_row = &prev_data[a * dim..(a + 1) * dim];
        let mut stats = OpStats::default();
        for p in i..j {
            for q in p + 1..=j {
                let b = idx.index(p, q);
                let old = prev_row[b];
                let mut best = old;
                for r in i..=p {
                    for s in q.max(r + 1)..=j {
                        let c = idx.index(r, s);
                        let cand = prev_row[c].add(prev_data[c * dim + b]);
                        best = best.min2(cand);
                        stats.candidates += 1;
                    }
                }
                stats.writes += 1;
                if best < old {
                    stats.changed = true;
                }
                next_row[b] = best;
            }
        }
        stats
    };
    exec.map_reduce_chunks_mut(
        next.as_mut_slice(),
        dim,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

// ---------------------------------------------------------------------------
// a-pebble (eq. 3)
// ---------------------------------------------------------------------------

/// `a-pebble` over dense storage:
/// for all `0 <= i < j <= n` in parallel,
///
/// ```text
/// w'(i,j) := min_{i <= p < q <= j} { pw'(i,j,p,q) + w'(p,q) }
/// ```
///
/// The `(p,q) = (i,j)` candidate contributes `0 + w'(i,j)`, so the update
/// is monotone non-increasing. Reads `w_prev`, writes `w_next`
/// (partitioned by `w_next` row, one parallel task per left endpoint `i`).
pub fn a_pebble_dense<W: Weight>(
    pw: &DensePw<W>,
    w_prev: &WTable<W>,
    w_next: &mut WTable<W>,
    exec: &ExecBackend,
) -> OpStats {
    let n = w_prev.n();
    let idx = pw.indexer().clone();
    let dim = pw.dim();
    let pw_data = pw.as_slice();
    let process_w_row = |i: usize, out_row: &mut [W]| -> OpStats {
        let mut stats = OpStats::default();
        for (j, out_cell) in out_row.iter_mut().enumerate().skip(i + 1) {
            let a = idx.index(i, j);
            let row = &pw_data[a * dim..(a + 1) * dim];
            let old = w_prev.get(i, j);
            let mut best = old; // the (p,q) = (i,j) candidate: pw = 0
            stats.writes += 1;
            for p in i..j {
                for q in p + 1..=j {
                    if p == i && q == j {
                        continue;
                    }
                    let b = idx.index(p, q);
                    let cand = row[b].add(w_prev.get(p, q));
                    best = best.min2(cand);
                    stats.candidates += 1;
                }
            }
            if best < old {
                stats.changed = true;
            }
            *out_cell = best;
        }
        stats
    };
    exec.map_reduce_chunks_mut(
        w_next.as_mut_slice(),
        n + 1,
        process_w_row,
        OpStats::default,
        OpStats::merge,
    )
}

// ---------------------------------------------------------------------------
// Banded (§5) variants
// ---------------------------------------------------------------------------

/// `a-activate` over banded storage: identical to the dense rule but only
/// in-band cells are kept — gap `(i,k)` needs `j - k <= B`, gap `(k,j)`
/// needs `k - i <= B`, so each row does `O(B)` work.
pub fn a_activate_banded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
    pw: &mut BandedPw<W>,
    exec: &ExecBackend,
) -> OpStats {
    let band = pw.band();
    let idx = pw.indexer().clone();
    let spans: Vec<(usize, usize)> = (0..idx.len()).map(|a| pw.row_span(a)).collect();
    let process_row = |a: usize, row: &mut [W]| -> OpStats {
        let (i, j) = idx.pair(a);
        let d = j - i;
        let mut stats = OpStats::default();
        if d < 2 {
            return stats;
        }
        // Gap (i,k): eccentricity e = j - k <= band  =>  k >= j - band.
        let k_lo_1 = i + 1;
        let k_lo = if j > band {
            k_lo_1.max(j - band)
        } else {
            k_lo_1
        };
        for k in k_lo..j {
            let e = j - k;
            let pos = e * (e + 1) / 2; // p - i = 0
            let cand = problem.f(i, k, j).add(w.get(k, j));
            if cand < row[pos] {
                row[pos] = cand;
                stats.changed = true;
            }
            stats.candidates += 1;
            stats.writes += 1;
        }
        // Gap (k,j): eccentricity e = k - i <= band.
        let k_hi = (j - 1).min(i + band);
        for k in i + 1..=k_hi {
            let e = k - i;
            let pos = e * (e + 1) / 2 + (k - i);
            let cand = problem.f(i, k, j).add(w.get(i, k));
            if cand < row[pos] {
                row[pos] = cand;
                stats.changed = true;
            }
            stats.candidates += 1;
            stats.writes += 1;
        }
        stats
    };
    exec.map_reduce_rows_mut(
        pw.as_mut_slice(),
        &spans,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

/// `a-square` over banded storage with the §5 `O(sqrt n)` composition
/// windows: intermediate gaps `(r,q)` need `r >= p - B` **and**
/// `r <= q - d + B` to keep both factors in band (symmetrically for
/// `(p,s)`), so every cell examines `O(B)` candidates.
pub fn a_square_banded<W: Weight>(
    prev: &BandedPw<W>,
    next: &mut BandedPw<W>,
    exec: &ExecBackend,
) -> OpStats {
    let band = prev.band();
    let idx = prev.indexer().clone();
    let spans: Vec<(usize, usize)> = (0..idx.len()).map(|a| next.row_span(a)).collect();
    let process_row = |a: usize, next_row: &mut [W]| -> OpStats {
        let (i, j) = idx.pair(a);
        let d = j - i;
        let mut stats = OpStats::default();
        let emax = (d - 1).min(band);
        for e in 0..=emax {
            let g = d - e; // gap width q - p
            for p in i..=i + e {
                let q = p + g;
                let old = prev.get(i, j, p, q);
                let mut best = old;
                // (r, q) intermediates: i <= r < p, with both factors in
                // band: r >= p - B (for pw(r,q,p,q)) and r <= q + B - d
                // (for pw(i,j,r,q)). In-band (p,q) guarantees
                // q + B >= i + d, so the upper bound never underflows.
                let r_lo = i.max(p.saturating_sub(band));
                if p > r_lo {
                    let r_hi = (p - 1).min(q + band - d);
                    for r in r_lo..=r_hi {
                        let cand = prev.get(i, j, r, q).add(prev.get(r, q, p, q));
                        best = best.min2(cand);
                        stats.candidates += 1;
                    }
                }
                // (p, s) intermediates: q < s <= j, s >= p + d - B, s <= q + B.
                let s_lo = (q + 1).max((p + d).saturating_sub(band));
                let s_hi = j.min(q + band);
                for s in s_lo..=s_hi {
                    let cand = prev.get(i, j, p, s).add(prev.get(p, s, p, q));
                    best = best.min2(cand);
                    stats.candidates += 1;
                }
                let pos = e * (e + 1) / 2 + (p - i);
                if best < old {
                    stats.changed = true;
                }
                stats.writes += 1;
                next_row[pos] = best;
            }
        }
        stats
    };
    exec.map_reduce_rows_mut(
        next.as_mut_slice(),
        &spans,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

/// `a-pebble` over banded storage, optionally restricted to the §5 size
/// window: only pairs with `window.0 < j - i <= window.1` are re-minimised
/// (others copy their previous value).
///
/// Two candidate families per pair, matching the §5 processor count of
/// `O(n^1.5)` windowed pairs × `O(n^2)` candidates:
///
/// * the **in-band** stored gaps `pw'(i,j,p,q) + w'(p,q)` (the chain
///   descents of the Lemma 3.3 decomposition);
/// * the **direct** decompositions `f(i,k,j) + w'(i,k) + w'(k,j)` —
///   equation (1) fused with (3). A single-edge partial tree's gap lags
///   its root by the size of the *other* child, which can far exceed the
///   band, so these partial weights are never stored; they are
///   recomputed here on the fly. The decomposition lemma needs them for
///   the terminal chain node `y`, both of whose children are small and
///   already final.
pub fn a_pebble_banded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    pw: &BandedPw<W>,
    w_prev: &WTable<W>,
    w_next: &mut WTable<W>,
    window: Option<(usize, usize)>,
    exec: &ExecBackend,
) -> OpStats {
    let n = w_prev.n();
    let process_w_row = |i: usize, out_row: &mut [W]| -> OpStats {
        let mut stats = OpStats::default();
        for (j, out_cell) in out_row.iter_mut().enumerate().skip(i + 1) {
            let d = j - i;
            let old = w_prev.get(i, j);
            if let Some((lo, hi)) = window {
                if d <= lo || d > hi {
                    *out_cell = old;
                    continue;
                }
            }
            let mut best = old;
            stats.writes += 1;
            for (p, q) in pw.gaps_of(i, j) {
                if p == i && q == j {
                    continue;
                }
                let cand = pw.get(i, j, p, q).add(w_prev.get(p, q));
                best = best.min2(cand);
                stats.candidates += 1;
            }
            for k in i + 1..j {
                let cand = problem
                    .f(i, k, j)
                    .add(w_prev.get(i, k))
                    .add(w_prev.get(k, j));
                best = best.min2(cand);
                stats.candidates += 1;
            }
            if best < old {
                stats.changed = true;
            }
            *out_cell = best;
        }
        stats
    };
    exec.map_reduce_chunks_mut(
        w_next.as_mut_slice(),
        n + 1,
        process_w_row,
        OpStats::default,
        OpStats::merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::seq::solve_sequential;

    const SEQ: ExecBackend = ExecBackend::Sequential;

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    /// Drive (activate, square, pebble) for 2*ceil(sqrt(n)) iterations and
    /// return the w table — a miniature of the full solver, used to test
    /// the ops in isolation.
    fn run_dense(p: &impl DpProblem<u64>, exec: &ExecBackend) -> WTable<u64> {
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        let iters = 2 * pardp_pebble::ceil_sqrt(n as u64);
        for _ in 0..iters {
            a_activate_dense(p, &w, &mut pw, exec);
            a_square_dense(&pw, &mut pw_next, exec);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, exec);
            std::mem::swap(&mut w, &mut w_next);
        }
        w
    }

    #[test]
    fn dense_ops_compute_clrs_chain() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let w = run_dense(&p, &SEQ);
        assert_eq!(w.root(), 15125);
        assert!(w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn parallel_and_sequential_ops_agree() {
        let p = chain(vec![7, 3, 9, 4, 12, 5, 8, 6, 10, 2, 11]);
        let seq = run_dense(&p, &SEQ);
        for backend in [ExecBackend::Parallel, ExecBackend::Threads(4)] {
            let par = run_dense(&p, &backend);
            assert!(seq.table_eq(&par), "{backend}");
        }
        assert!(seq.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn activate_seeds_single_edge_partials() {
        // After one activate on fresh tables, pw'(i,j,i,k) must equal
        // f(i,k,j) + w'(k,j) when (k,j) is a leaf, else infinity.
        let p = chain(vec![2, 3, 4, 5]);
        let n = 3;
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let stats = a_activate_dense(&p, &w, &mut pw, &SEQ);
        assert!(stats.changed);
        // (0,3) with k=1: gap (0,1) gets f(0,1,3) + w(1,3) = inf (w(1,3) unknown).
        assert!(!pw.get(0, 3, 0, 1).is_finite_cost());
        // (0,2) with k=1: gap (0,1) gets f(0,1,2) + w(1,2) = 2*3*4 + 0.
        assert_eq!(pw.get(0, 2, 0, 1), 24);
        assert_eq!(pw.get(0, 2, 1, 2), 24); // symmetric gap
                                            // Diagonal untouched.
        assert_eq!(pw.get(0, 3, 0, 3), 0);
    }

    #[test]
    fn square_is_monotone_and_idempotent_at_fixpoint() {
        let p = chain(vec![4, 2, 7, 3, 5, 6]);
        let n = p.n();
        let mut w = solve_sequential(&p); // final w values
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        // Iterate to fixpoint.
        for _ in 0..20 {
            a_activate_dense(&p, &w, &mut pw, &SEQ);
            let s = a_square_dense(&pw, &mut pw_next, &SEQ);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
            std::mem::swap(&mut w, &mut w_next);
            if !s.changed {
                break;
            }
        }
        // One more round must change nothing.
        let a = a_activate_dense(&p, &w, &mut pw, &SEQ);
        let s = a_square_dense(&pw, &mut pw_next, &SEQ);
        std::mem::swap(&mut pw, &mut pw_next);
        let pb = a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
        assert!(!a.changed && !s.changed && !pb.changed);
    }

    #[test]
    fn rytter_square_reaches_the_same_values() {
        let p = chain(vec![5, 9, 2, 6, 7, 3, 8]);
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        for _ in 0..(2 * (n as f64).log2().ceil() as usize + 4) {
            a_activate_dense(&p, &w, &mut pw, &SEQ);
            a_square_rytter(&pw, &mut pw_next, &SEQ);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
            std::mem::swap(&mut w, &mut w_next);
        }
        assert!(w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn rytter_examines_more_candidates_than_restricted() {
        // The full composition is Theta(n^6) vs the restricted Theta(n^5):
        // the ratio must exceed 1 and grow roughly linearly with n.
        let ratio = |n: usize| {
            let pw = DensePw::<u64>::new(n);
            let mut next1 = DensePw::new(n);
            let mut next2 = DensePw::new(n);
            let restricted = a_square_dense(&pw, &mut next1, &SEQ);
            let full = a_square_rytter(&pw, &mut next2, &SEQ);
            assert!(full.candidates > restricted.candidates, "n={n}");
            full.candidates as f64 / restricted.candidates as f64
        };
        let r10 = ratio(10);
        let r30 = ratio(30);
        assert!(r10 > 1.5, "r10={r10}");
        assert!(r30 > 1.5 * r10, "ratio must grow with n: {r10} -> {r30}");
    }

    #[test]
    fn banded_ops_match_dense_with_full_band() {
        // With band >= n the banded algorithm stores everything, so it
        // must agree with the dense one step by step.
        let p = chain(vec![3, 8, 2, 5, 7, 4, 6, 9]);
        let n = p.n();
        let mut w_d = WTable::new(n);
        let mut w_b = WTable::new(n);
        for i in 0..n {
            w_d.set(i, i + 1, p.init(i));
            w_b.set(i, i + 1, p.init(i));
        }
        let mut pwd = DensePw::new(n);
        let mut pwd_next = DensePw::new(n);
        let mut pwb = BandedPw::new(n, n);
        let mut pwb_next = BandedPw::new(n, n);
        let mut wd_next = w_d.clone();
        let mut wb_next = w_b.clone();
        for _ in 0..6 {
            a_activate_dense(&p, &w_d, &mut pwd, &SEQ);
            a_activate_banded(&p, &w_b, &mut pwb, &SEQ);
            a_square_dense(&pwd, &mut pwd_next, &SEQ);
            a_square_banded(&pwb, &mut pwb_next, &SEQ);
            std::mem::swap(&mut pwd, &mut pwd_next);
            std::mem::swap(&mut pwb, &mut pwb_next);
            a_pebble_dense(&pwd, &w_d, &mut wd_next, &SEQ);
            a_pebble_banded(&p, &pwb, &w_b, &mut wb_next, None, &SEQ);
            std::mem::swap(&mut w_d, &mut wd_next);
            std::mem::swap(&mut w_b, &mut wb_next);
            // Tables agree cell-for-cell at every step.
            for i in 0..n {
                for j in i + 1..=n {
                    assert_eq!(w_d.get(i, j), w_b.get(i, j), "w ({i},{j})");
                    for pp in i..j {
                        for qq in pp + 1..=j {
                            assert_eq!(
                                pwd.get(i, j, pp, qq),
                                pwb.get(i, j, pp, qq),
                                "pw ({i},{j},{pp},{qq})"
                            );
                        }
                    }
                }
            }
        }
        assert!(w_d.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn banded_square_work_is_much_smaller() {
        let n = 24usize;
        let band = 2 * pardp_pebble::ceil_sqrt(n as u64) as usize;
        let dense = DensePw::<u64>::new(n);
        let mut dense_next = DensePw::new(n);
        let banded = BandedPw::<u64>::new(n, band);
        let mut banded_next = BandedPw::new(n, band);
        let sd = a_square_dense(&dense, &mut dense_next, &SEQ);
        let sb = a_square_banded(&banded, &mut banded_next, &SEQ);
        assert!(
            sb.candidates * 2 < sd.candidates,
            "banded {} vs dense {}",
            sb.candidates,
            sd.candidates
        );
    }

    #[test]
    fn windowed_pebble_skips_out_of_window_pairs() {
        let p = chain(vec![3, 8, 2, 5, 7, 4]);
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let pw = BandedPw::new(n, n);
        let mut w_next = w.clone();
        // Window (0,1]: only leaf-sized pairs — nothing to improve, and
        // longer pairs must not be touched (they stay infinity).
        let stats = a_pebble_banded(&p, &pw, &w, &mut w_next, Some((0, 1)), &SEQ);
        assert!(!stats.changed);
        assert!(!w_next.get(0, n).is_finite_cost());
    }

    #[test]
    fn banded_ops_agree_across_backends() {
        let p = chain(vec![9, 4, 7, 2, 8, 3, 6, 5, 10, 1, 12, 11]);
        let n = p.n();
        let band = 2 * pardp_pebble::ceil_sqrt(n as u64) as usize;
        let run = |exec: &ExecBackend| {
            let mut w = WTable::new(n);
            for i in 0..n {
                w.set(i, i + 1, p.init(i));
            }
            let mut pw = BandedPw::new(n, band);
            let mut pw_next = BandedPw::new(n, band);
            let mut w_next = w.clone();
            for _ in 0..2 * pardp_pebble::ceil_sqrt(n as u64) {
                a_activate_banded(&p, &w, &mut pw, exec);
                a_square_banded(&pw, &mut pw_next, exec);
                std::mem::swap(&mut pw, &mut pw_next);
                a_pebble_banded(&p, &pw, &w, &mut w_next, None, exec);
                std::mem::swap(&mut w, &mut w_next);
            }
            w
        };
        let seq = run(&SEQ);
        let par = run(&ExecBackend::Threads(4));
        assert!(seq.table_eq(&par));
        assert!(seq.table_eq(&solve_sequential(&p)));
    }
}
