//! The three parallel operations of the algorithm (§2), in three storage
//! regimes:
//!
//! * **dense** — the `O(n^5)`-work algorithm of §2/§4 over [`DensePw`];
//! * **rytter** — the full-composition square of Rytter \[8\] (`O(n^6)`
//!   work) over the same dense storage, used as the baseline;
//! * **banded** — the §5 reduced-processor variant over [`BandedPw`]
//!   (`O(n^3.5)` work per square), with the windowed pebble step.
//!
//! Every operation has PRAM semantics: all reads observe the *previous*
//! state. `a-square` and `a-pebble` therefore read from one buffer and
//! write another (the caller swaps); `a-activate` only writes cells no
//! other task reads in the same step, so it updates in place.
//!
//! Each function returns [`OpStats`]: the number of composition candidates
//! examined (the unit-work measure used by the E5/E8 accounting) and
//! whether any table cell strictly improved (the §7 convergence signal).
//! All functions take an [`ExecBackend`]; the parallel backends partition
//! work by table row, which keeps writes disjoint without locks (the CREW
//! exclusive-write discipline), so every backend computes identical
//! tables.
//!
//! The dense squares ([`a_square_dense`], [`a_square_rytter`]) come in two
//! interchangeable kernels selected by [`SquareStrategy`]: the naive
//! row-major reference and a cache-blocked kernel that walks cells and
//! intermediate ranges in tiles over the flattened `pw` matrix. The
//! banded square ([`a_square_banded`]) mirrors this with a per-cell
//! naive reference and a flat-slice streamed kernel over the
//! eccentricity-block layout of [`BandedPw`]. Either way, both kernels
//! enumerate exactly the same candidate set, so tables and [`OpStats`] are
//! identical; only the memory access order differs.
//!
//! The `*_scheduled` variants ([`a_square_dense_scheduled`],
//! [`a_square_banded_scheduled`], [`a_pebble_dense_scheduled`],
//! [`a_pebble_banded_scheduled`]) additionally support convergence-aware
//! scheduling: rows/pairs whose inputs did not change since the previous
//! pass are copied forward instead of recomputed, and per-row/per-pair
//! changed bits are returned for the caller's next scheduling decision.

use std::fmt;
use std::str::FromStr;

use crate::exec::ExecBackend;
use crate::problem::DpProblem;
use crate::tables::{BandedPw, DensePw, PairIndexer, WTable};
use crate::weight::Weight;

/// Work and change accounting for one operation application.
///
/// `candidates` is the *work* of the operation in the Work/Span sense;
/// see the model discussion on [`crate::trace`] and the critical-path
/// estimate [`crate::trace::SolveTrace::span_estimate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Composition candidates examined (pairs combined with `+` and fed to
    /// `min`). This is the unit-work measure of the paper's analysis.
    pub candidates: u64,
    /// Table cells whose stored value strictly improved — the cells that
    /// received an *actual* new value. Values merely carried forward (the
    /// copy into the `next` buffer of a double-buffered pass, the
    /// untouched cell of an in-place pass, or the copied-out pair of a
    /// windowed pebble) are not writes, so the figure is comparable
    /// across all operations, and `changed == (writes > 0)` always holds.
    pub writes: u64,
    /// Whether any cell strictly improved.
    pub changed: bool,
}

impl OpStats {
    /// Merge statistics from two disjoint portions of the index space.
    pub fn merge(self, other: OpStats) -> OpStats {
        OpStats {
            candidates: self.candidates + other.candidates,
            writes: self.writes + other.writes,
            changed: self.changed || other.changed,
        }
    }
}

// ---------------------------------------------------------------------------
// Square kernel selection
// ---------------------------------------------------------------------------

/// How the dense square kernels enumerate their composition candidates.
///
/// Every strategy examines exactly the same candidate set and produces
/// bit-identical tables and identical [`OpStats`]; they differ only in
/// memory access order, and therefore speed. The naive order gathers one
/// cell's intermediates from `O(n)` different rows of the `P x P` matrix,
/// so nearly every read misses cache once the matrix outgrows it; the
/// blocked kernels keep a tile of intermediate rows hot and stream the
/// contiguous cell segments that share a left endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SquareStrategy {
    /// The reference row-major triple loop over `(p, q)` cells.
    Naive,
    /// Cache-blocked kernel with an explicit tile edge, in pairs.
    /// `Tiled(0)` behaves like [`SquareStrategy::Auto`].
    Tiled(usize),
    /// Cache-blocked kernel with the tile edge picked from the row
    /// length (the default).
    #[default]
    Auto,
}

impl SquareStrategy {
    /// The auto-picked tile edge: 64 pairs keeps a 64x64 `u64` tile of
    /// intermediate rows (32 KiB) inside a typical L1 data cache.
    pub const AUTO_TILE: usize = 64;

    /// The tile edge to use for rows of `dim` pairs, or `None` for the
    /// naive kernel.
    pub fn tile_for(self, dim: usize) -> Option<usize> {
        match self {
            SquareStrategy::Naive => None,
            SquareStrategy::Auto | SquareStrategy::Tiled(0) => {
                Some(Self::AUTO_TILE.min(dim.max(1)))
            }
            SquareStrategy::Tiled(t) => Some(t.min(dim.max(1))),
        }
    }
}

impl fmt::Display for SquareStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SquareStrategy::Naive => write!(f, "naive"),
            SquareStrategy::Auto | SquareStrategy::Tiled(0) => write!(f, "auto"),
            SquareStrategy::Tiled(t) => write!(f, "tiled:{t}"),
        }
    }
}

/// Parse `naive`, `auto`, or an explicit tile edge (a positive integer).
///
/// A tile edge of `0` is rejected rather than silently degenerating: the
/// internal `Tiled(0)` alias for [`SquareStrategy::Auto`] exists for
/// programmatic construction, but a user writing `--tile 0` almost
/// certainly meant something else, so the error spells out the accepted
/// forms.
impl FromStr for SquareStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "naive" => Ok(SquareStrategy::Naive),
            "auto" => Ok(SquareStrategy::Auto),
            other => match other.parse::<usize>() {
                Ok(0) => Err(
                    "tile edge 0 is degenerate; write 'auto' for the auto-picked edge, \
                     'naive' for the reference kernel, or a positive edge like 64"
                        .to_string(),
                ),
                Ok(t) => Ok(SquareStrategy::Tiled(t)),
                Err(_) => Err(format!(
                    "unknown square strategy '{other}' (expected naive | auto | <tile>, \
                     where <tile> is a positive integer edge like 64)"
                )),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// a-activate (eq. 1a/1b)
// ---------------------------------------------------------------------------

/// `a-activate` over dense storage:
/// for all `0 <= i < k < j <= n` in parallel,
///
/// ```text
/// pw'(i,j,i,k) := min { pw'(i,j,i,k), f(i,k,j) + w'(k,j) }
/// pw'(i,j,k,j) := min { pw'(i,j,k,j), f(i,k,j) + w'(i,k) }
/// ```
///
/// Each `pw'` cell is written by exactly one triple, so the update is
/// CREW-safe in place.
pub fn a_activate_dense<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
    pw: &mut DensePw<W>,
    exec: &ExecBackend,
) -> OpStats {
    a_activate_dense_tracked(problem, w, pw, exec).0
}

/// [`a_activate_dense`], additionally returning the per-row changed bits
/// (indexed by the pair index of the row) that feed the dirty-row
/// scheduler of [`a_square_dense_scheduled`].
pub fn a_activate_dense_tracked<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
    pw: &mut DensePw<W>,
    exec: &ExecBackend,
) -> (OpStats, Vec<bool>) {
    let dim = pw.dim();
    let idx = pw.indexer().clone();
    let process_row = |a: usize, row: &mut [W]| -> (OpStats, bool) {
        let (i, j) = idx.pair(a);
        let mut stats = OpStats::default();
        if j - i < 2 {
            return (stats, false);
        }
        for k in i + 1..j {
            let fikj = problem.f(i, k, j);
            // Gap (i,k): remaining subtree is (k,j).
            let b1 = idx.index(i, k);
            let cand1 = fikj.add(w.get(k, j));
            if cand1 < row[b1] {
                row[b1] = cand1;
                stats.writes += 1;
            }
            // Gap (k,j): remaining subtree is (i,k).
            let b2 = idx.index(k, j);
            let cand2 = fikj.add(w.get(i, k));
            if cand2 < row[b2] {
                row[b2] = cand2;
                stats.writes += 1;
            }
            stats.candidates += 2;
        }
        stats.changed = stats.writes > 0;
        (stats, stats.changed)
    };
    exec.map_reduce_chunks_flagged_mut(
        pw.as_mut_slice(),
        dim,
        1,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

// ---------------------------------------------------------------------------
// a-square (eq. 2c) — the paper's restricted composition
// ---------------------------------------------------------------------------

/// `a-square` over dense storage:
/// for all `0 <= i <= p < q <= j <= n` in parallel,
///
/// ```text
/// pw'(i,j,p,q) := min { pw'(i,j,p,q),
///                       min_{i <= r < p} pw'(i,j,r,q) + pw'(r,q,p,q),
///                       min_{q < s <= j} pw'(i,j,p,s) + pw'(p,s,p,q) }
/// ```
///
/// The composition is *restricted* to intermediate gaps sharing an
/// endpoint with `(p,q)` — the source of the `O(n^5)` (vs Rytter's
/// `O(n^6)`) work bound. Reads come from `prev`; writes go to `next`.
///
/// Uses the default [`SquareStrategy`] (auto-tiled); see
/// [`a_square_dense_scheduled`] for strategy selection and row skipping.
pub fn a_square_dense<W: Weight>(
    prev: &DensePw<W>,
    next: &mut DensePw<W>,
    exec: &ExecBackend,
) -> OpStats {
    a_square_dense_scheduled(prev, next, SquareStrategy::default(), None, exec).0
}

/// Dense `a-square` with full scheduling control.
///
/// * `strategy` selects the candidate enumeration order — all strategies
///   produce bit-identical tables and identical [`OpStats`].
/// * `skip`, if given, marks rows whose **inputs** did not change since
///   the previous square (row `(i,j)` reads only rows nested in `(i,j)`,
///   all of which the caller observed unchanged). Such rows are copied
///   from `prev` instead of recomputed — sound because the square is a
///   deterministic function of its input rows, so recomputing would
///   reproduce the previous output — and report zero candidates and no
///   change.
/// * The returned `Vec<bool>` holds the per-row changed bits for the
///   caller's next scheduling decision.
pub fn a_square_dense_scheduled<W: Weight>(
    prev: &DensePw<W>,
    next: &mut DensePw<W>,
    strategy: SquareStrategy,
    skip: Option<&[bool]>,
    exec: &ExecBackend,
) -> (OpStats, Vec<bool>) {
    let dim = prev.dim();
    let ctx = SquareCtx {
        idx: prev.indexer().clone(),
        prev: prev.as_slice(),
        dim,
    };
    let tile = strategy.tile_for(dim);
    let process_row = |a: usize, next_row: &mut [W]| -> (OpStats, bool) {
        if skip.is_some_and(|mask| mask[a]) {
            next_row.copy_from_slice(ctx.prev_row(a));
            return (OpStats::default(), false);
        }
        let stats = match tile {
            None => square_row_naive(&ctx, a, next_row),
            Some(t) => square_row_tiled(&ctx, a, next_row, t),
        };
        (stats, stats.changed)
    };
    // With a skip mask many rows degrade to memcpys, individually too
    // cheap to schedule — coarsen the block floor so claim overhead is
    // amortised across several rows.
    let grain = if skip.is_some() { 8 } else { 1 };
    exec.map_reduce_chunks_flagged_mut(
        next.as_mut_slice(),
        dim,
        grain,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

/// Shared read-side context of one dense-square row computation.
struct SquareCtx<'a, W> {
    idx: PairIndexer,
    /// The flattened previous `P x P` matrix.
    prev: &'a [W],
    /// Row length `P`.
    dim: usize,
}

impl<W: Weight> SquareCtx<'_, W> {
    #[inline]
    fn prev_row(&self, a: usize) -> &[W] {
        &self.prev[a * self.dim..(a + 1) * self.dim]
    }
}

/// Reference kernel: for every cell, gather every intermediate.
fn square_row_naive<W: Weight>(ctx: &SquareCtx<'_, W>, a: usize, next_row: &mut [W]) -> OpStats {
    let (i, j) = ctx.idx.pair(a);
    let prev_row = ctx.prev_row(a);
    next_row.copy_from_slice(prev_row);
    let mut stats = OpStats::default();
    for p in i..j {
        for q in p + 1..=j {
            let b = ctx.idx.index(p, q);
            let old = prev_row[b];
            let mut best = old;
            // Intermediate gaps (r, q), i <= r < p.
            for r in i..p {
                let c = ctx.idx.index(r, q);
                let cand = prev_row[c].add(ctx.prev[c * ctx.dim + b]);
                best = best.min2(cand);
            }
            // Intermediate gaps (p, s), q < s <= j.
            for s in q + 1..=j {
                let c = ctx.idx.index(p, s);
                let cand = prev_row[c].add(ctx.prev[c * ctx.dim + b]);
                best = best.min2(cand);
            }
            stats.candidates += (p - i) as u64 + (j - q) as u64;
            if best < old {
                next_row[b] = best;
                stats.writes += 1;
            }
        }
    }
    stats.changed = stats.writes > 0;
    stats
}

/// Cache-blocked kernel: identical candidate set, tile-ordered.
///
/// The two candidate families are walked separately, each blocked into
/// `tile`-sized index ranges:
///
/// * **`s`-family** (intermediates `(p, s)` sharing the cell's left
///   endpoint): for a fixed `p`, both the cells `(p, q)` and the
///   intermediates `(p, s)` live in one contiguous segment of pair space,
///   so for each intermediate the updated cells form a contiguous slice —
///   one streaming pass per `(s, q)` block instead of per-cell gathers.
/// * **`r`-family** (intermediates `(r, q)` sharing the cell's right
///   endpoint): blocked over `(p, r)` so that the `tile` intermediate
///   rows claimed by an `r`-block stay cache-hot while the `p`-block
///   sweeps them, accumulating each cell in a register.
///
/// Rows whose stored partial weight is still infinite contribute no
/// finite candidate, so their compositions are counted in bulk and the
/// matrix reads skipped — a large win in the early iterations when most
/// of `pw` is unreached.
fn square_row_tiled<W: Weight>(
    ctx: &SquareCtx<'_, W>,
    a: usize,
    next_row: &mut [W],
    tile: usize,
) -> OpStats {
    let (i, j) = ctx.idx.pair(a);
    let n = ctx.idx.n();
    let prev_row = ctx.prev_row(a);
    next_row.copy_from_slice(prev_row);
    let mut stats = OpStats::default();
    let t = tile.max(1);

    // s-family: cells (p, q) gather intermediates (p, s), q < s <= j.
    for p in i..j {
        let base = ctx.idx.index(p, p + 1);
        let q_lo = p + 1;
        let mut s0 = q_lo + 1;
        while s0 <= j {
            let s1 = (s0 + t - 1).min(j);
            let mut q0 = q_lo;
            while q0 < s1 {
                let q1 = (q0 + t - 1).min(s1 - 1);
                for s in s0..=s1 {
                    let q_hi = q1.min(s - 1);
                    if q0 > q_hi {
                        continue;
                    }
                    stats.candidates += (q_hi - q0 + 1) as u64;
                    let c = base + (s - p - 1);
                    let vs = prev_row[c];
                    if !vs.is_finite_cost() {
                        continue;
                    }
                    let b0 = base + (q0 - p - 1);
                    let b1 = base + (q_hi - p - 1);
                    let crow = &ctx.prev[c * ctx.dim..];
                    for (cell, &step) in next_row[b0..=b1].iter_mut().zip(&crow[b0..=b1]) {
                        let cand = vs.add(step);
                        if cand < *cell {
                            *cell = cand;
                        }
                    }
                }
                q0 = q1 + 1;
            }
            s0 = s1 + 1;
        }
    }

    // r-family: cells (p, q) gather intermediates (r, q), i <= r < p.
    for q in i + 2..=j {
        let mut r0 = i;
        while r0 + 1 < q {
            let r1 = (r0 + t - 1).min(q - 2);
            let c_base = ctx.idx.index(r0, q);
            let mut p0 = r0 + 1;
            while p0 < q {
                let p1 = (p0 + t - 1).min(q - 1);
                let mut b = ctx.idx.index(p0, q);
                for p in p0..=p1 {
                    let r_hi = r1.min(p - 1);
                    stats.candidates += (r_hi - r0 + 1) as u64;
                    let mut acc = next_row[b];
                    let mut c = c_base;
                    for r in r0..=r_hi {
                        let vr = prev_row[c];
                        if vr.is_finite_cost() {
                            acc = acc.min2(vr.add(ctx.prev[c * ctx.dim + b]));
                        }
                        // Pair index of (r + 1, q): one lexicographic
                        // block of n - r - 1 pairs further on.
                        c += n - r - 1;
                    }
                    next_row[b] = acc;
                    // Likewise b advances to the pair index of (p + 1, q).
                    b += n - p - 1;
                }
                p0 = p1 + 1;
            }
            r0 = r1 + 1;
        }
    }

    finish_row_stats(ctx, i, j, prev_row, next_row, &mut stats);
    stats
}

/// Count the actual writes of a min-accumulated row: the nested cells
/// whose value in `next_row` now differs from (i.e. improved on)
/// `prev_row`, and set the row's changed bit accordingly.
fn finish_row_stats<W: Weight>(
    ctx: &SquareCtx<'_, W>,
    i: usize,
    j: usize,
    prev_row: &[W],
    next_row: &[W],
    stats: &mut OpStats,
) {
    for p in i..j {
        let seg = ctx.idx.segment(p, p + 1, j);
        for (new, old) in next_row[seg.clone()].iter().zip(&prev_row[seg]) {
            if new != old {
                stats.writes += 1;
            }
        }
    }
    stats.changed = stats.writes > 0;
}

/// Rytter's square \[8\] over the same dense storage: composition through
/// **every** intermediate gap,
///
/// ```text
/// pw'(i,j,p,q) := min { pw'(i,j,p,q),
///                       min_{(r,s): i<=r<=p, q<=s<=j, r<s}
///                           pw'(i,j,r,s) + pw'(r,s,p,q) }
/// ```
///
/// i.e. a masked min-plus matrix square — `Theta(n^6)` candidates, the
/// work figure the paper improves on.
///
/// Uses the default [`SquareStrategy`]; see [`a_square_rytter_with`].
pub fn a_square_rytter<W: Weight>(
    prev: &DensePw<W>,
    next: &mut DensePw<W>,
    exec: &ExecBackend,
) -> OpStats {
    a_square_rytter_with(prev, next, SquareStrategy::default(), exec)
}

/// Rytter's square with an explicit kernel choice. All strategies produce
/// bit-identical tables and identical [`OpStats`]; the non-naive
/// strategies select the intermediate-major streaming kernel (for the
/// full composition every cell nested in an intermediate is compatible
/// with it, so the per-intermediate update footprint is already a run of
/// contiguous segments and needs no extra tile subdivision).
pub fn a_square_rytter_with<W: Weight>(
    prev: &DensePw<W>,
    next: &mut DensePw<W>,
    strategy: SquareStrategy,
    exec: &ExecBackend,
) -> OpStats {
    let dim = prev.dim();
    let ctx = SquareCtx {
        idx: prev.indexer().clone(),
        prev: prev.as_slice(),
        dim,
    };
    let tiled = strategy.tile_for(dim).is_some();
    let process_row = |a: usize, next_row: &mut [W]| -> OpStats {
        if tiled {
            rytter_row_streamed(&ctx, a, next_row)
        } else {
            rytter_row_naive(&ctx, a, next_row)
        }
    };
    exec.map_reduce_chunks_mut(
        next.as_mut_slice(),
        dim,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

/// Reference kernel: per-cell gather over every intermediate gap.
fn rytter_row_naive<W: Weight>(ctx: &SquareCtx<'_, W>, a: usize, next_row: &mut [W]) -> OpStats {
    let (i, j) = ctx.idx.pair(a);
    let prev_row = ctx.prev_row(a);
    next_row.copy_from_slice(prev_row);
    let mut stats = OpStats::default();
    for p in i..j {
        for q in p + 1..=j {
            let b = ctx.idx.index(p, q);
            let old = prev_row[b];
            let mut best = old;
            for r in i..=p {
                for s in q.max(r + 1)..=j {
                    let c = ctx.idx.index(r, s);
                    let cand = prev_row[c].add(ctx.prev[c * ctx.dim + b]);
                    best = best.min2(cand);
                    stats.candidates += 1;
                }
            }
            if best < old {
                next_row[b] = best;
                stats.writes += 1;
            }
        }
    }
    stats.changed = stats.writes > 0;
    stats
}

/// Streaming kernel: intermediate-major enumeration. For an intermediate
/// gap `(r, s)` the compatible cells are exactly the pairs nested in
/// `(r, s)`, one contiguous segment per left endpoint — so each
/// intermediate row is read once, forward, instead of being gathered
/// from by `O(n^2)` distant cells. Intermediates whose partial weight is
/// still infinite are counted in bulk and skipped.
fn rytter_row_streamed<W: Weight>(ctx: &SquareCtx<'_, W>, a: usize, next_row: &mut [W]) -> OpStats {
    let (i, j) = ctx.idx.pair(a);
    let prev_row = ctx.prev_row(a);
    next_row.copy_from_slice(prev_row);
    let mut stats = OpStats::default();
    for r in i..j {
        let r_base = ctx.idx.index(r, r + 1);
        for s in r + 1..=j {
            let c = r_base + (s - r - 1);
            let vc = prev_row[c];
            let width = (s - r) as u64;
            if !vc.is_finite_cost() {
                stats.candidates += width * (width + 1) / 2;
                continue;
            }
            let crow = &ctx.prev[c * ctx.dim..];
            for p in r..s {
                let seg = ctx.idx.segment(p, p + 1, s);
                stats.candidates += (s - p) as u64;
                for (cell, &step) in next_row[seg.clone()].iter_mut().zip(&crow[seg]) {
                    let cand = vc.add(step);
                    if cand < *cell {
                        *cell = cand;
                    }
                }
            }
        }
    }
    finish_row_stats(ctx, i, j, prev_row, next_row, &mut stats);
    stats
}

// ---------------------------------------------------------------------------
// a-pebble (eq. 3)
// ---------------------------------------------------------------------------

/// `a-pebble` over dense storage:
/// for all `0 <= i < j <= n` in parallel,
///
/// ```text
/// w'(i,j) := min_{i <= p < q <= j} { pw'(i,j,p,q) + w'(p,q) }
/// ```
///
/// The `(p,q) = (i,j)` candidate contributes `0 + w'(i,j)`, so the update
/// is monotone non-increasing. Reads `w_prev`, writes `w_next`
/// (partitioned by `w_next` row, one parallel task per left endpoint `i`).
///
/// See [`a_pebble_dense_scheduled`] for convergence-aware pair skipping.
pub fn a_pebble_dense<W: Weight>(
    pw: &DensePw<W>,
    w_prev: &WTable<W>,
    w_next: &mut WTable<W>,
    exec: &ExecBackend,
) -> OpStats {
    a_pebble_dense_scheduled(pw, w_prev, w_next, None, exec).0
}

/// The per-left-endpoint spans used to hand each `a-pebble` task its
/// private range of the per-pair flag vector: pairs sharing a left
/// endpoint are contiguous in pair-index space, so `w'` row `i` owns the
/// flag slots of pairs `(i, i+1 ..= n)`.
fn pebble_flag_spans(idx: &PairIndexer) -> Vec<(usize, usize)> {
    let n = idx.n();
    (0..=n)
        .map(|i| {
            if i < n {
                let start = idx.index(i, i + 1);
                (start, start + (n - i))
            } else {
                (idx.len(), idx.len())
            }
        })
        .collect()
}

/// Dense `a-pebble` with convergence-aware pair scheduling.
///
/// `skip`, if given, marks pairs whose **inputs** (their `pw'` row and the
/// `w'` values of their nested pairs) did not change since the pair was
/// last re-minimised; such pairs copy their previous value forward and
/// report zero candidates — sound because the pebble is a deterministic
/// monotone function of those inputs. The returned `Vec<bool>` holds the
/// per-pair changed bits (did `w'(i,j)` strictly improve?) that feed the
/// caller's next scheduling decision.
pub fn a_pebble_dense_scheduled<W: Weight>(
    pw: &DensePw<W>,
    w_prev: &WTable<W>,
    w_next: &mut WTable<W>,
    skip: Option<&[bool]>,
    exec: &ExecBackend,
) -> (OpStats, Vec<bool>) {
    let n = w_prev.n();
    let idx = pw.indexer().clone();
    let dim = pw.dim();
    let pw_data = pw.as_slice();
    let stride = n + 1;
    let spans: Vec<(usize, usize)> = (0..=n).map(|i| (i * stride, (i + 1) * stride)).collect();
    let flag_spans = pebble_flag_spans(&idx);
    let mut flags = vec![false; idx.len()];
    let process_w_row = |i: usize, out_row: &mut [W], flags: &mut [bool]| -> OpStats {
        let mut stats = OpStats::default();
        // Pair index of (i, j) is a_base + (j - i - 1); hoisted out of
        // the per-cell path.
        let a_base = if i < n { idx.index(i, i + 1) } else { 0 };
        for (j, out_cell) in out_row.iter_mut().enumerate().skip(i + 1) {
            let a = a_base + (j - i - 1);
            let old = w_prev.get(i, j);
            if skip.is_some_and(|mask| mask[a]) {
                *out_cell = old;
                continue;
            }
            let row = &pw_data[a * dim..(a + 1) * dim];
            let mut best = old; // the (p,q) = (i,j) candidate: pw = 0
            for p in i..j {
                for q in p + 1..=j {
                    if p == i && q == j {
                        continue;
                    }
                    let b = idx.index(p, q);
                    let cand = row[b].add(w_prev.get(p, q));
                    best = best.min2(cand);
                    stats.candidates += 1;
                }
            }
            if best < old {
                stats.changed = true;
                stats.writes += 1;
                flags[j - i - 1] = true;
            }
            *out_cell = best;
        }
        stats
    };
    let total = exec.map_reduce_rows_sided_mut(
        w_next.as_mut_slice(),
        &spans,
        &mut flags,
        &flag_spans,
        1,
        process_w_row,
        OpStats::default,
        OpStats::merge,
    );
    (total, flags)
}

// ---------------------------------------------------------------------------
// Banded (§5) variants
// ---------------------------------------------------------------------------

/// `a-activate` over banded storage: identical to the dense rule but only
/// in-band cells are kept — gap `(i,k)` needs `j - k <= B`, gap `(k,j)`
/// needs `k - i <= B`, so each row does `O(B)` work.
pub fn a_activate_banded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
    pw: &mut BandedPw<W>,
    exec: &ExecBackend,
) -> OpStats {
    a_activate_banded_tracked(problem, w, pw, exec).0
}

/// [`a_activate_banded`], additionally returning the per-row (= per-pair)
/// changed bits that feed the banded dirty-row schedulers of
/// [`a_square_banded_scheduled`] and [`a_pebble_banded_scheduled`].
pub fn a_activate_banded_tracked<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    w: &WTable<W>,
    pw: &mut BandedPw<W>,
    exec: &ExecBackend,
) -> (OpStats, Vec<bool>) {
    let band = pw.band();
    let idx = pw.indexer().clone();
    // Hoisted per-op tables: the inverse pair lookup (a binary search in
    // `PairIndexer::pair`) and the ragged row spans, computed once here
    // instead of once per row / per cell.
    let pairs: Vec<(usize, usize)> = idx.pairs().collect();
    let spans: Vec<(usize, usize)> = (0..idx.len()).map(|a| pw.row_span(a)).collect();
    let process_row = |a: usize, row: &mut [W]| -> (OpStats, bool) {
        let (i, j) = pairs[a];
        let d = j - i;
        let mut stats = OpStats::default();
        if d < 2 {
            return (stats, false);
        }
        // Gap (i,k): eccentricity e = j - k <= band  =>  k >= j - band.
        let k_lo_1 = i + 1;
        let k_lo = if j > band {
            k_lo_1.max(j - band)
        } else {
            k_lo_1
        };
        for k in k_lo..j {
            let e = j - k;
            let pos = BandedPw::<W>::block_offset(e); // p - i = 0
            let cand = problem.f(i, k, j).add(w.get(k, j));
            if cand < row[pos] {
                row[pos] = cand;
                stats.changed = true;
                stats.writes += 1;
            }
            stats.candidates += 1;
        }
        // Gap (k,j): eccentricity e = k - i <= band.
        let k_hi = (j - 1).min(i + band);
        for k in i + 1..=k_hi {
            let e = k - i;
            let pos = BandedPw::<W>::block_offset(e) + (k - i);
            let cand = problem.f(i, k, j).add(w.get(i, k));
            if cand < row[pos] {
                row[pos] = cand;
                stats.changed = true;
                stats.writes += 1;
            }
            stats.candidates += 1;
        }
        (stats, stats.changed)
    };
    exec.map_reduce_rows_flagged_mut(
        pw.as_mut_slice(),
        &spans,
        1,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

/// `a-square` over banded storage with the §5 `O(sqrt n)` composition
/// windows: intermediate gaps `(r,q)` need `r >= p - B` **and**
/// `r <= q - d + B` to keep both factors in band (symmetrically for
/// `(p,s)`), so every cell examines `O(B)` candidates.
///
/// Uses the default [`SquareStrategy`] (streamed); see
/// [`a_square_banded_scheduled`] for strategy selection and row skipping.
pub fn a_square_banded<W: Weight>(
    prev: &BandedPw<W>,
    next: &mut BandedPw<W>,
    exec: &ExecBackend,
) -> OpStats {
    a_square_banded_scheduled(prev, next, SquareStrategy::default(), None, exec).0
}

/// Banded `a-square` with full scheduling control — the §5 mirror of
/// [`a_square_dense_scheduled`].
///
/// * `strategy` selects the kernel: [`SquareStrategy::Naive`] is the
///   definitional per-cell gather through the [`BandedPw::get`] accessor;
///   every other strategy selects the flat-slice streamed kernel
///   (`banded_square_row_streamed`). As with Rytter's square, the tile
///   edge needs no further subdivision here: a banded row holds at most
///   `(B+1)(B+2)/2` cells, so the streamed kernel's whole per-intermediate
///   footprint (the root row, the intermediate's row, and the output row)
///   already fits in cache. All strategies enumerate exactly the same
///   candidate set and produce bit-identical tables and [`OpStats`].
/// * `skip`, if given, marks rows whose **inputs** did not change since
///   the previous square (row `(i,j)` reads only rows nested in `(i,j)`);
///   such rows are copied from `prev` instead of recomputed and report
///   zero candidates.
/// * The returned `Vec<bool>` holds the per-row changed bits for the
///   caller's next scheduling decision.
pub fn a_square_banded_scheduled<W: Weight>(
    prev: &BandedPw<W>,
    next: &mut BandedPw<W>,
    strategy: SquareStrategy,
    skip: Option<&[bool]>,
    exec: &ExecBackend,
) -> (OpStats, Vec<bool>) {
    let idx = prev.indexer().clone();
    // Hoisted per-op tables (see `a_activate_banded_tracked`).
    let pairs: Vec<(usize, usize)> = idx.pairs().collect();
    let spans: Vec<(usize, usize)> = (0..idx.len()).map(|a| next.row_span(a)).collect();
    let streamed = strategy.tile_for(idx.len()).is_some();
    let process_row = |a: usize, next_row: &mut [W]| -> (OpStats, bool) {
        if skip.is_some_and(|mask| mask[a]) {
            next_row.copy_from_slice(prev.row(a));
            return (OpStats::default(), false);
        }
        let (i, j) = pairs[a];
        let stats = if streamed {
            banded_square_row_streamed(prev, a, i, j, next_row)
        } else {
            banded_square_row_naive(prev, a, i, j, next_row)
        };
        (stats, stats.changed)
    };
    // With a skip mask many rows degrade to memcpys; coarsen the block
    // floor so claim overhead is amortised (as in the dense scheduler).
    let grain = if skip.is_some() { 8 } else { 1 };
    exec.map_reduce_rows_flagged_mut(
        next.as_mut_slice(),
        &spans,
        grain,
        process_row,
        OpStats::default,
        OpStats::merge,
    )
}

/// Reference kernel: per-cell gathers through the bounds-checked
/// [`BandedPw::get`] accessor, straight from the §5 composition rule.
fn banded_square_row_naive<W: Weight>(
    prev: &BandedPw<W>,
    _a: usize,
    i: usize,
    j: usize,
    next_row: &mut [W],
) -> OpStats {
    let band = prev.band();
    let d = j - i;
    let mut stats = OpStats::default();
    let emax = prev.emax(d);
    for e in 0..=emax {
        let g = d - e; // gap width q - p
        for p in i..=i + e {
            let q = p + g;
            let old = prev.get(i, j, p, q);
            let mut best = old;
            // (r, q) intermediates: i <= r < p, with both factors in
            // band: r >= p - B (for pw(r,q,p,q)) and r <= q + B - d
            // (for pw(i,j,r,q)). In-band (p,q) guarantees
            // q + B >= i + d, so the upper bound never underflows.
            let r_lo = i.max(p.saturating_sub(band));
            if p > r_lo {
                let r_hi = (p - 1).min(q + band - d);
                for r in r_lo..=r_hi {
                    let cand = prev.get(i, j, r, q).add(prev.get(r, q, p, q));
                    best = best.min2(cand);
                    stats.candidates += 1;
                }
            }
            // (p, s) intermediates: q < s <= j, s >= p + d - B, s <= q + B.
            let s_lo = (q + 1).max((p + d).saturating_sub(band));
            let s_hi = j.min(q + band);
            for s in s_lo..=s_hi {
                let cand = prev.get(i, j, p, s).add(prev.get(p, s, p, q));
                best = best.min2(cand);
                stats.candidates += 1;
            }
            let pos = BandedPw::<W>::block_offset(e) + (p - i);
            if best < old {
                stats.changed = true;
                stats.writes += 1;
            }
            next_row[pos] = best;
        }
    }
    stats
}

/// Flat-slice streamed kernel: intermediate-major enumeration over the
/// eccentricity-block layout, exactly the candidate set of the naive
/// kernel.
///
/// For a root row `(i, j)` every §5 composition factors through an
/// intermediate gap `(x, y)` that shares an endpoint with the updated
/// cell. Instead of gathering, per cell, both factors through the
/// [`BandedPw::get`] offset arithmetic, this kernel walks the in-band
/// gaps `(x, y)` of the root once, `x`-major — so the intermediates'
/// table rows are visited in ascending, mostly contiguous memory order —
/// and plays each gap's two roles against **three resident slices**:
///
/// * the root row `prev.row(a)` (first factors, read at precomputed
///   block offsets);
/// * the intermediate's own row `prev.row(index(x, y))` (second factors:
///   `pw'(x,y,x,q)` is the *first* cell of block `y - q`, `pw'(x,y,p,y)`
///   the *last* cell of block `p - x`);
/// * the output row `next_row` (min-accumulated in place).
///
/// Each slice holds at most `(B+1)(B+2)/2` cells, so the working set per
/// intermediate is three cache-resident rows — no per-cell indexer calls,
/// no bounds/band checks, and intermediates whose partial weight is still
/// infinite are counted in bulk and skipped without touching their row
/// (most of the table, in the early iterations).
// The hand-maintained counters (`c`, `u`, `e_cell`) are the point of the
// kernel: each advances by a data-dependent recurrence, which the
// iterator forms clippy suggests cannot express without reintroducing
// the per-candidate multiplies this kernel removes.
#[allow(clippy::explicit_counter_loop)]
fn banded_square_row_streamed<W: Weight>(
    prev: &BandedPw<W>,
    a: usize,
    i: usize,
    j: usize,
    next_row: &mut [W],
) -> OpStats {
    let band = prev.band();
    let idx = prev.indexer();
    let d = j - i;
    let prev_row = prev.row(a);
    next_row.copy_from_slice(prev_row);
    let mut stats = OpStats::default();
    // In-band gaps (x, y) of the root need y - x >= d - band.
    let x_hi = (j - 1).min(i + band);
    for x in i..=x_hi {
        let y_lo = (x + 1).max((x + d).saturating_sub(band));
        // Pair indices of (x, y) for consecutive y are consecutive, so
        // the intermediate rows stream forward in memory.
        let mut c = idx.index(x, y_lo);
        for y in y_lo..=j {
            // Cells reached through this intermediate (empty ranges
            // clamp to zero):
            // * s-role — cells (x, q) sharing the left endpoint, with
            //   q >= y - B (second factor in band) and the cell itself
            //   in band (q >= x + d - B);
            // * r-role — cells (p, y) sharing the right endpoint, with
            //   p <= x + B and the cell in band (p <= y + B - d; in-band
            //   (x, y) guarantees y + B >= x + d, so no underflow).
            let q_lo = (x + 1)
                .max((x + d).saturating_sub(band))
                .max(y.saturating_sub(band));
            let s_cells = y.saturating_sub(q_lo);
            let p_hi = (y - 1).min(y + band - d).min(x + band);
            let r_cells = p_hi.saturating_sub(x);
            stats.candidates += (s_cells + r_cells) as u64;
            let e_int = d - (y - x);
            let v = prev_row[BandedPw::<W>::block_offset(e_int) + (x - i)];
            if v.is_finite_cost() && s_cells + r_cells > 0 {
                let crow = prev.row(c);
                // Both walks keep their positions incrementally: a block
                // offset moves between adjacent eccentricities by the
                // eccentricity itself (tri(e+1) = tri(e) + e + 1), so no
                // per-candidate multiplies survive.
                //
                // s-role: pw'(i,j,x,y) + pw'(x,y,x,q) -> cell (x, q),
                // q ascending. The step factor sits at block_offset(y-q)
                // of the intermediate's row, the cell at
                // block_offset(d - (q-x)) + (x-i) of the root row.
                if s_cells > 0 {
                    let mut t = y - q_lo;
                    let mut step_pos = BandedPw::<W>::block_offset(t);
                    let mut e_cell = d - (q_lo - x);
                    let mut cell_pos = BandedPw::<W>::block_offset(e_cell) + (x - i);
                    for _ in 0..s_cells {
                        let cand = v.add(crow[step_pos]);
                        let cell = &mut next_row[cell_pos];
                        if cand < *cell {
                            *cell = cand;
                        }
                        step_pos -= t;
                        t -= 1;
                        cell_pos -= e_cell;
                        e_cell -= 1;
                    }
                }
                // r-role: pw'(i,j,x,y) + pw'(x,y,p,y) -> cell (p, y),
                // p ascending. The step factor is the last cell of block
                // (p-x) of the intermediate's row, the cell at
                // block_offset(d - (y-p)) + (p-i) of the root row.
                let mut u = 1usize;
                let mut step_pos = 2usize; // block_offset(1) + 1
                let mut e_cell = d - (y - x - 1);
                let mut cell_pos = BandedPw::<W>::block_offset(e_cell) + (x + 1 - i);
                for _ in 0..r_cells {
                    let cand = v.add(crow[step_pos]);
                    let cell = &mut next_row[cell_pos];
                    if cand < *cell {
                        *cell = cand;
                    }
                    step_pos += u + 2;
                    u += 1;
                    cell_pos += e_cell + 2;
                    e_cell += 1;
                }
            }
            c += 1;
        }
    }
    // Writes = cells that improved; min-accumulation is monotone, so
    // "differs from prev" and "improved" coincide (cf. the naive kernel's
    // best < old test).
    for (new, old) in next_row.iter().zip(prev_row) {
        if new != old {
            stats.writes += 1;
        }
    }
    stats.changed = stats.writes > 0;
    stats
}

/// `a-pebble` over banded storage, optionally restricted to the §5 size
/// window: only pairs with `window.0 < j - i <= window.1` are re-minimised
/// (others copy their previous value).
///
/// Two candidate families per pair, matching the §5 processor count of
/// `O(n^1.5)` windowed pairs × `O(n^2)` candidates:
///
/// * the **in-band** stored gaps `pw'(i,j,p,q) + w'(p,q)` (the chain
///   descents of the Lemma 3.3 decomposition);
/// * the **direct** decompositions `f(i,k,j) + w'(i,k) + w'(k,j)` —
///   equation (1) fused with (3). A single-edge partial tree's gap lags
///   its root by the size of the *other* child, which can far exceed the
///   band, so these partial weights are never stored; they are
///   recomputed here on the fly. The decomposition lemma needs them for
///   the terminal chain node `y`, both of whose children are small and
///   already final.
///
/// Accounting rule: a windowed-out pair copies its previous value into
/// `out_cell` — a carried-forward value, not a write — and a re-minimised
/// pair counts as a write only when it strictly improves, exactly like
/// every other op (see [`OpStats::writes`]).
///
/// See [`a_pebble_banded_scheduled`] for convergence-aware pair skipping.
pub fn a_pebble_banded<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    pw: &BandedPw<W>,
    w_prev: &WTable<W>,
    w_next: &mut WTable<W>,
    window: Option<(usize, usize)>,
    exec: &ExecBackend,
) -> OpStats {
    a_pebble_banded_scheduled(problem, pw, w_prev, w_next, window, None, exec).0
}

/// Banded `a-pebble` with convergence-aware pair scheduling, the §5
/// counterpart of [`a_pebble_dense_scheduled`].
///
/// The in-band candidate family walks the pair's flat `pw'` row slice in
/// storage order (eccentricity-block-major) instead of gathering each gap
/// through the [`BandedPw::get`] offset arithmetic; gaps whose partial
/// weight is still infinite skip their `w'` lookup.
///
/// `skip`, if given, marks pairs whose inputs (`pw'` row, nested `w'`
/// values, which include every `w'` the direct decompositions read) have
/// not changed since the pair was last re-minimised; like a windowed-out
/// pair, a skipped pair copies its previous value — not a write, zero
/// candidates. The returned `Vec<bool>` holds the per-pair changed bits;
/// windowed-out and skipped pairs report `false` (their value is carried,
/// not changed), so the bits are exact inputs for the caller's dirty-pair
/// bookkeeping.
pub fn a_pebble_banded_scheduled<W: Weight, P: DpProblem<W> + ?Sized>(
    problem: &P,
    pw: &BandedPw<W>,
    w_prev: &WTable<W>,
    w_next: &mut WTable<W>,
    window: Option<(usize, usize)>,
    skip: Option<&[bool]>,
    exec: &ExecBackend,
) -> (OpStats, Vec<bool>) {
    let n = w_prev.n();
    let idx = pw.indexer().clone();
    let stride = n + 1;
    let spans: Vec<(usize, usize)> = (0..=n).map(|i| (i * stride, (i + 1) * stride)).collect();
    let flag_spans = pebble_flag_spans(&idx);
    let mut flags = vec![false; idx.len()];
    let process_w_row = |i: usize, out_row: &mut [W], flags: &mut [bool]| -> OpStats {
        let mut stats = OpStats::default();
        let a_base = if i < n { idx.index(i, i + 1) } else { 0 };
        for (j, out_cell) in out_row.iter_mut().enumerate().skip(i + 1) {
            let d = j - i;
            let a = a_base + (j - i - 1);
            let old = w_prev.get(i, j);
            if let Some((lo, hi)) = window {
                if d <= lo || d > hi {
                    *out_cell = old;
                    continue;
                }
            }
            if skip.is_some_and(|mask| mask[a]) {
                *out_cell = old;
                continue;
            }
            let mut best = old;
            // In-band stored gaps, walked as the flat row slice in
            // storage order. Position 0 is the (i,j) gap itself (the
            // free 0 + w'(i,j) candidate already seeded via `old`).
            let row = pw.row(a);
            let mut pos = 0usize;
            for e in 0..=pw.emax(d) {
                let g = d - e;
                for t in 0..=e {
                    if pos > 0 {
                        let pwv = row[pos];
                        if pwv.is_finite_cost() {
                            let p = i + t;
                            let cand = pwv.add(w_prev.get(p, p + g));
                            best = best.min2(cand);
                        }
                        stats.candidates += 1;
                    }
                    pos += 1;
                }
            }
            for k in i + 1..j {
                let cand = problem
                    .f(i, k, j)
                    .add(w_prev.get(i, k))
                    .add(w_prev.get(k, j));
                best = best.min2(cand);
                stats.candidates += 1;
            }
            if best < old {
                stats.changed = true;
                stats.writes += 1;
                flags[j - i - 1] = true;
            }
            *out_cell = best;
        }
        stats
    };
    let total = exec.map_reduce_rows_sided_mut(
        w_next.as_mut_slice(),
        &spans,
        &mut flags,
        &flag_spans,
        1,
        process_w_row,
        OpStats::default,
        OpStats::merge,
    );
    (total, flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;
    use crate::seq::solve_sequential;

    const SEQ: ExecBackend = ExecBackend::Sequential;

    fn chain(dims: Vec<u64>) -> impl DpProblem<u64> {
        let n = dims.len() - 1;
        FnProblem::new(n, |_| 0u64, move |i, k, j| dims[i] * dims[k] * dims[j])
    }

    /// Drive (activate, square, pebble) for 2*ceil(sqrt(n)) iterations and
    /// return the w table — a miniature of the full solver, used to test
    /// the ops in isolation.
    fn run_dense(p: &impl DpProblem<u64>, exec: &ExecBackend) -> WTable<u64> {
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        let iters = 2 * pardp_pebble::ceil_sqrt(n as u64);
        for _ in 0..iters {
            a_activate_dense(p, &w, &mut pw, exec);
            a_square_dense(&pw, &mut pw_next, exec);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, exec);
            std::mem::swap(&mut w, &mut w_next);
        }
        w
    }

    #[test]
    fn dense_ops_compute_clrs_chain() {
        let p = chain(vec![30, 35, 15, 5, 10, 20, 25]);
        let w = run_dense(&p, &SEQ);
        assert_eq!(w.root(), 15125);
        assert!(w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn parallel_and_sequential_ops_agree() {
        let p = chain(vec![7, 3, 9, 4, 12, 5, 8, 6, 10, 2, 11]);
        let seq = run_dense(&p, &SEQ);
        for backend in [ExecBackend::Parallel, ExecBackend::Threads(4)] {
            let par = run_dense(&p, &backend);
            assert!(seq.table_eq(&par), "{backend}");
        }
        assert!(seq.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn activate_seeds_single_edge_partials() {
        // After one activate on fresh tables, pw'(i,j,i,k) must equal
        // f(i,k,j) + w'(k,j) when (k,j) is a leaf, else infinity.
        let p = chain(vec![2, 3, 4, 5]);
        let n = 3;
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let stats = a_activate_dense(&p, &w, &mut pw, &SEQ);
        assert!(stats.changed);
        // (0,3) with k=1: gap (0,1) gets f(0,1,3) + w(1,3) = inf (w(1,3) unknown).
        assert!(!pw.get(0, 3, 0, 1).is_finite_cost());
        // (0,2) with k=1: gap (0,1) gets f(0,1,2) + w(1,2) = 2*3*4 + 0.
        assert_eq!(pw.get(0, 2, 0, 1), 24);
        assert_eq!(pw.get(0, 2, 1, 2), 24); // symmetric gap
                                            // Diagonal untouched.
        assert_eq!(pw.get(0, 3, 0, 3), 0);
    }

    #[test]
    fn square_is_monotone_and_idempotent_at_fixpoint() {
        let p = chain(vec![4, 2, 7, 3, 5, 6]);
        let n = p.n();
        let mut w = solve_sequential(&p); // final w values
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        // Iterate to fixpoint.
        for _ in 0..20 {
            a_activate_dense(&p, &w, &mut pw, &SEQ);
            let s = a_square_dense(&pw, &mut pw_next, &SEQ);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
            std::mem::swap(&mut w, &mut w_next);
            if !s.changed {
                break;
            }
        }
        // One more round must change nothing.
        let a = a_activate_dense(&p, &w, &mut pw, &SEQ);
        let s = a_square_dense(&pw, &mut pw_next, &SEQ);
        std::mem::swap(&mut pw, &mut pw_next);
        let pb = a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
        assert!(!a.changed && !s.changed && !pb.changed);
    }

    #[test]
    fn rytter_square_reaches_the_same_values() {
        let p = chain(vec![5, 9, 2, 6, 7, 3, 8]);
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        for _ in 0..(2 * (n as f64).log2().ceil() as usize + 4) {
            a_activate_dense(&p, &w, &mut pw, &SEQ);
            a_square_rytter(&pw, &mut pw_next, &SEQ);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
            std::mem::swap(&mut w, &mut w_next);
        }
        assert!(w.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn rytter_examines_more_candidates_than_restricted() {
        // The full composition is Theta(n^6) vs the restricted Theta(n^5):
        // the ratio must exceed 1 and grow roughly linearly with n.
        let ratio = |n: usize| {
            let pw = DensePw::<u64>::new(n);
            let mut next1 = DensePw::new(n);
            let mut next2 = DensePw::new(n);
            let restricted = a_square_dense(&pw, &mut next1, &SEQ);
            let full = a_square_rytter(&pw, &mut next2, &SEQ);
            assert!(full.candidates > restricted.candidates, "n={n}");
            full.candidates as f64 / restricted.candidates as f64
        };
        let r10 = ratio(10);
        let r30 = ratio(30);
        assert!(r10 > 1.5, "r10={r10}");
        assert!(r30 > 1.5 * r10, "ratio must grow with n: {r10} -> {r30}");
    }

    #[test]
    fn banded_ops_match_dense_with_full_band() {
        // With band >= n the banded algorithm stores everything, so it
        // must agree with the dense one step by step.
        let p = chain(vec![3, 8, 2, 5, 7, 4, 6, 9]);
        let n = p.n();
        let mut w_d = WTable::new(n);
        let mut w_b = WTable::new(n);
        for i in 0..n {
            w_d.set(i, i + 1, p.init(i));
            w_b.set(i, i + 1, p.init(i));
        }
        let mut pwd = DensePw::new(n);
        let mut pwd_next = DensePw::new(n);
        let mut pwb = BandedPw::new(n, n);
        let mut pwb_next = BandedPw::new(n, n);
        let mut wd_next = w_d.clone();
        let mut wb_next = w_b.clone();
        for _ in 0..6 {
            a_activate_dense(&p, &w_d, &mut pwd, &SEQ);
            a_activate_banded(&p, &w_b, &mut pwb, &SEQ);
            a_square_dense(&pwd, &mut pwd_next, &SEQ);
            a_square_banded(&pwb, &mut pwb_next, &SEQ);
            std::mem::swap(&mut pwd, &mut pwd_next);
            std::mem::swap(&mut pwb, &mut pwb_next);
            a_pebble_dense(&pwd, &w_d, &mut wd_next, &SEQ);
            a_pebble_banded(&p, &pwb, &w_b, &mut wb_next, None, &SEQ);
            std::mem::swap(&mut w_d, &mut wd_next);
            std::mem::swap(&mut w_b, &mut wb_next);
            // Tables agree cell-for-cell at every step.
            for i in 0..n {
                for j in i + 1..=n {
                    assert_eq!(w_d.get(i, j), w_b.get(i, j), "w ({i},{j})");
                    for pp in i..j {
                        for qq in pp + 1..=j {
                            assert_eq!(
                                pwd.get(i, j, pp, qq),
                                pwb.get(i, j, pp, qq),
                                "pw ({i},{j},{pp},{qq})"
                            );
                        }
                    }
                }
            }
        }
        assert!(w_d.table_eq(&solve_sequential(&p)));
    }

    #[test]
    fn banded_square_work_is_much_smaller() {
        let n = 24usize;
        let band = 2 * pardp_pebble::ceil_sqrt(n as u64) as usize;
        let dense = DensePw::<u64>::new(n);
        let mut dense_next = DensePw::new(n);
        let banded = BandedPw::<u64>::new(n, band);
        let mut banded_next = BandedPw::new(n, band);
        let sd = a_square_dense(&dense, &mut dense_next, &SEQ);
        let sb = a_square_banded(&banded, &mut banded_next, &SEQ);
        assert!(
            sb.candidates * 2 < sd.candidates,
            "banded {} vs dense {}",
            sb.candidates,
            sd.candidates
        );
    }

    #[test]
    fn windowed_pebble_skips_out_of_window_pairs() {
        let p = chain(vec![3, 8, 2, 5, 7, 4]);
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let pw = BandedPw::new(n, n);
        let mut w_next = w.clone();
        // Window (0,1]: only leaf-sized pairs — nothing to improve, and
        // longer pairs must not be touched (they stay infinity).
        let stats = a_pebble_banded(&p, &pw, &w, &mut w_next, Some((0, 1)), &SEQ);
        assert!(!stats.changed);
        assert!(!w_next.get(0, n).is_finite_cost());
    }

    #[test]
    fn square_strategies_are_bit_identical() {
        // Warm tables a couple of iterations, then one square per
        // strategy: tables, candidates and writes must match exactly.
        let p = chain(vec![7, 3, 9, 4, 12, 5, 8, 6, 10, 2, 11, 13, 1]);
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        for _ in 0..2 {
            a_activate_dense(&p, &w, &mut pw, &SEQ);
            a_square_dense(&pw, &mut pw_next, &SEQ);
            std::mem::swap(&mut pw, &mut pw_next);
            a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
            std::mem::swap(&mut w, &mut w_next);
        }
        let mut reference = DensePw::new(n);
        let (base, _) =
            a_square_dense_scheduled(&pw, &mut reference, SquareStrategy::Naive, None, &SEQ);
        for strategy in [
            SquareStrategy::Auto,
            SquareStrategy::Tiled(1),
            SquareStrategy::Tiled(3),
            SquareStrategy::Tiled(7),
            SquareStrategy::Tiled(1000),
        ] {
            let mut out = DensePw::new(n);
            let (stats, rows) = a_square_dense_scheduled(&pw, &mut out, strategy, None, &SEQ);
            assert_eq!(out.as_slice(), reference.as_slice(), "{strategy}");
            assert_eq!(stats, base, "{strategy}");
            assert_eq!(rows.len(), pw.dim());
            assert_eq!(rows.iter().any(|&b| b), stats.changed, "{strategy}");
        }
        // Rytter: streamed vs naive.
        let mut y_ref = DensePw::new(n);
        let y_base = a_square_rytter_with(&pw, &mut y_ref, SquareStrategy::Naive, &SEQ);
        let mut y_out = DensePw::new(n);
        let y_stats = a_square_rytter_with(&pw, &mut y_out, SquareStrategy::Auto, &SEQ);
        assert_eq!(y_out.as_slice(), y_ref.as_slice());
        assert_eq!(y_stats, y_base);
    }

    #[test]
    fn skipped_rows_copy_forward_and_report_clean() {
        let p = chain(vec![5, 2, 8, 3, 6, 4, 7]);
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        a_activate_dense(&p, &w, &mut pw, &SEQ);
        let mut full = DensePw::new(n);
        let (full_stats, _) =
            a_square_dense_scheduled(&pw, &mut full, SquareStrategy::Auto, None, &SEQ);
        // Skip everything: the output must be a verbatim copy of the
        // input, with zero candidates and no change.
        let mut all_skipped = DensePw::new(n);
        let skip = vec![true; pw.dim()];
        let (stats, rows) = a_square_dense_scheduled(
            &pw,
            &mut all_skipped,
            SquareStrategy::Auto,
            Some(&skip),
            &SEQ,
        );
        assert_eq!(all_skipped.as_slice(), pw.as_slice());
        assert_eq!(stats, OpStats::default());
        assert!(rows.iter().all(|&b| !b));
        // Skip nothing via an all-false mask: identical to no mask.
        let mut none_skipped = DensePw::new(n);
        let no_skip = vec![false; pw.dim()];
        let (stats, _) = a_square_dense_scheduled(
            &pw,
            &mut none_skipped,
            SquareStrategy::Auto,
            Some(&no_skip),
            &SEQ,
        );
        assert_eq!(none_skipped.as_slice(), full.as_slice());
        assert_eq!(stats, full_stats);
    }

    #[test]
    fn writes_count_actual_stores_consistently() {
        // On a converged instance every op must report writes == 0 and
        // changed == false; mid-run, changed must equal writes > 0.
        let p = chain(vec![4, 2, 7, 3, 5, 6, 9]);
        let n = p.n();
        let mut w = WTable::new(n);
        for i in 0..n {
            w.set(i, i + 1, p.init(i));
        }
        let mut pw = DensePw::new(n);
        let mut pw_next = DensePw::new(n);
        let mut w_next = w.clone();
        for _ in 0..2 * pardp_pebble::ceil_sqrt(n as u64) {
            let act = a_activate_dense(&p, &w, &mut pw, &SEQ);
            let sq = a_square_dense(&pw, &mut pw_next, &SEQ);
            std::mem::swap(&mut pw, &mut pw_next);
            let pb = a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
            std::mem::swap(&mut w, &mut w_next);
            for (name, s) in [("activate", act), ("square", sq), ("pebble", pb)] {
                assert_eq!(s.changed, s.writes > 0, "{name}: {s:?}");
            }
        }
        // At the fixpoint: one more sweep of every op stores nothing.
        let act = a_activate_dense(&p, &w, &mut pw, &SEQ);
        let sq = a_square_dense(&pw, &mut pw_next, &SEQ);
        std::mem::swap(&mut pw, &mut pw_next);
        let pb = a_pebble_dense(&pw, &w, &mut w_next, &SEQ);
        for s in [act, sq, pb] {
            assert_eq!(s.writes, 0, "{s:?}");
            assert!(!s.changed);
        }
    }

    #[test]
    fn windowed_pebble_copies_are_not_writes() {
        // A window that excludes every pair copies all values forward:
        // zero writes, no change — same rule as the re-minimised path.
        let p = chain(vec![3, 8, 2, 5, 7, 4]);
        let n = p.n();
        let w = solve_sequential(&p);
        let pw = BandedPw::new(n, n);
        let mut w_next = WTable::new(n);
        let stats = a_pebble_banded(&p, &pw, &w, &mut w_next, Some((0, 0)), &SEQ);
        assert_eq!(stats.writes, 0);
        assert!(!stats.changed);
        assert!(w_next.table_eq(&w));
        // And a full (unwindowed) pass over final values also stores
        // nothing new.
        let stats = a_pebble_banded(&p, &pw, &w, &mut w_next, None, &SEQ);
        assert_eq!(stats.writes, 0);
        assert!(!stats.changed);
    }

    #[test]
    fn square_strategy_parsing_and_display() {
        assert_eq!("naive".parse::<SquareStrategy>(), Ok(SquareStrategy::Naive));
        assert_eq!("auto".parse::<SquareStrategy>(), Ok(SquareStrategy::Auto));
        assert_eq!(
            "48".parse::<SquareStrategy>(),
            Ok(SquareStrategy::Tiled(48))
        );
        // Degenerate edges are rejected with a pointed message, not
        // silently mapped to auto.
        let zero = "0".parse::<SquareStrategy>().unwrap_err();
        assert!(zero.contains("degenerate"), "{zero}");
        assert!(zero.contains("auto"), "{zero}");
        let unknown = "blocky".parse::<SquareStrategy>().unwrap_err();
        assert!(unknown.contains("unknown square strategy"), "{unknown}");
        assert!(unknown.contains("positive integer"), "{unknown}");
        assert_eq!(SquareStrategy::Naive.to_string(), "naive");
        assert_eq!(SquareStrategy::Auto.to_string(), "auto");
        assert_eq!(SquareStrategy::Tiled(0).to_string(), "auto");
        assert_eq!(SquareStrategy::Tiled(32).to_string(), "tiled:32");
        assert_eq!(SquareStrategy::Naive.tile_for(100), None);
        assert_eq!(SquareStrategy::Auto.tile_for(10), Some(10));
        assert_eq!(
            SquareStrategy::Auto.tile_for(10_000),
            Some(SquareStrategy::AUTO_TILE)
        );
        assert_eq!(SquareStrategy::Tiled(16).tile_for(10_000), Some(16));
    }

    #[test]
    fn banded_ops_agree_across_backends() {
        let p = chain(vec![9, 4, 7, 2, 8, 3, 6, 5, 10, 1, 12, 11]);
        let n = p.n();
        let band = 2 * pardp_pebble::ceil_sqrt(n as u64) as usize;
        let run = |exec: &ExecBackend| {
            let mut w = WTable::new(n);
            for i in 0..n {
                w.set(i, i + 1, p.init(i));
            }
            let mut pw = BandedPw::new(n, band);
            let mut pw_next = BandedPw::new(n, band);
            let mut w_next = w.clone();
            for _ in 0..2 * pardp_pebble::ceil_sqrt(n as u64) {
                a_activate_banded(&p, &w, &mut pw, exec);
                a_square_banded(&pw, &mut pw_next, exec);
                std::mem::swap(&mut pw, &mut pw_next);
                a_pebble_banded(&p, &pw, &w, &mut w_next, None, exec);
                std::mem::swap(&mut w, &mut w_next);
            }
            w
        };
        let seq = run(&SEQ);
        let par = run(&ExecBackend::Threads(4));
        assert!(seq.table_eq(&par));
        assert!(seq.table_eq(&solve_sequential(&p)));
    }
}
