//! Deterministic interleaving checker — a vendored, std-only,
//! shuttle-style model scheduler.
//!
//! The parallel substrate of this crate (the [`crate::exec`] pool, the
//! [`crate::serve`] job queue and regime gate, the [`crate::telemetry`]
//! event stream) makes ordering promises that example-based tests can
//! only sample at the mercy of the OS scheduler. This module removes
//! the mercy: a model of the concurrent protocol is written against the
//! shim primitives below ([`thread::spawn`], [`sync::Mutex`],
//! [`sync::Condvar`], [`sync::RwLock`]), and the [`Checker`] runs it
//! under a cooperative scheduler that
//!
//! * serializes execution — exactly one model thread runs at a time, so
//!   every run is a *schedule* (a sequence of thread choices),
//! * makes every synchronization operation a scheduling point,
//! * drives all choices from a seeded [splitmix64] generator, so a
//!   schedule is **replayable from its seed** exactly like a
//!   [`crate::fault::FaultPlan`],
//! * detects deadlocks (no runnable thread while unfinished threads
//!   remain), lost wakeups (a special case of the former), livelocks
//!   (step budget), model panics, and poisoned-lock misuse.
//!
//! The primitives mirror `std::sync` closely — including lock
//! *poisoning*, so the repo's single sanctioned recovery idiom
//! ([`crate::fault::unpoison`]) has a model twin ([`unpoison`]) and a
//! model that reintroduces a raw `.lock().unwrap()` after a panic fails
//! under the checker.
//!
//! ```
//! use pardp_core::check::{self, Checker};
//!
//! let report = Checker::new().seed(7).schedules(64).run(|| {
//!     let n = std::sync::Arc::new(check::sync::Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = n.clone();
//!             check::thread::spawn(move || {
//!                 *check::unpoison(n.lock()) += 1;
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(*check::unpoison(n.lock()), 2);
//! });
//! assert!(report.failures.is_empty(), "{:?}", report.failures);
//! assert!(report.distinct > 1);
//! ```
//!
//! The checker runs model threads on real OS threads but parks all of
//! them except the chosen one, so the model code is genuinely
//! sequential: no data race can occur *inside the checker*; what is
//! being checked is the protocol logic (who waits for what, who wakes
//! whom, what an unwind releases), which is exactly the layer where the
//! near-misses of PRs 6–8 lived.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::any::Any;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Golden-ratio increment of the splitmix64 generator.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// FNV-1a 64-bit offset basis (same constants as the canonical hasher
/// in [`crate::spec`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// splitmix64 — the schedule-choice generator. Tiny, seedable, and
/// identical on every platform, which is all the checker needs.
#[derive(Clone, Debug)]
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next() % n as u64) as usize
    }
}

/// Derive the per-schedule seed from the master seed and the schedule
/// index; exposed through [`Failure::seed`] so one failing schedule can
/// be replayed in isolation with [`Checker::replay`].
fn schedule_seed(master: u64, index: usize) -> u64 {
    SplitMix::new(master ^ (index as u64 + 1).wrapping_mul(GOLDEN)).next()
}

/// Teardown sentinel: when a schedule is aborted (deadlock, step
/// budget), parked model threads are unwound with this payload. The
/// [`catch_unwind`] shim re-throws it so model-level `catch_unwind`
/// cannot swallow a teardown.
struct Abort;

type Tid = usize;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockOn {
    /// Waiting to acquire mutex `.0`.
    Lock(usize),
    /// Waiting to acquire the read side of rwlock `.0`.
    RwRead(usize),
    /// Waiting to acquire the write side of rwlock `.0`.
    RwWrite(usize),
    /// Parked on condvar `.0`; will re-acquire mutex `.1` once
    /// notified.
    CondWait(usize, usize),
    /// Waiting for thread `.0` to finish.
    Join(Tid),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

#[derive(Clone, Debug)]
enum Res {
    Lock {
        locked: bool,
        poisoned: bool,
    },
    Rw {
        readers: usize,
        writer: bool,
        poisoned: bool,
    },
    Cond,
}

struct SchedState {
    threads: Vec<Run>,
    active: Option<Tid>,
    res: Vec<Res>,
    rng: SplitMix,
    trace: u64,
    steps: usize,
    max_steps: usize,
    unfinished: usize,
    abort: bool,
    failures: Vec<String>,
}

struct Scheduler {
    st: StdMutex<SchedState>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Scheduler>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

fn ctx() -> (Arc<Scheduler>, Tid) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("check::* primitives may only be used inside Checker::run")
    })
}

impl Scheduler {
    fn new(seed: u64, max_steps: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            st: StdMutex::new(SchedState {
                threads: Vec::new(),
                active: None,
                res: Vec::new(),
                rng: SplitMix::new(seed),
                trace: FNV_OFFSET,
                steps: 0,
                max_steps,
                unfinished: 0,
                abort: false,
                failures: Vec::new(),
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        // The scheduler's own mutex is never poisoned in a healthy run:
        // every model panic is caught at the thread top wrapper before
        // it can unwind through a held state guard. Recover anyway so a
        // checker bug degrades into a test failure, not a poison
        // cascade.
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mark every blocked thread whose resource became available as
    /// runnable again. Called after each release / finish / notify.
    fn recompute(st: &mut SchedState) {
        for t in 0..st.threads.len() {
            let Run::Blocked(b) = st.threads[t] else {
                continue;
            };
            let wake = match b {
                BlockOn::Lock(m) => matches!(st.res[m], Res::Lock { locked: false, .. }),
                BlockOn::RwRead(r) => matches!(st.res[r], Res::Rw { writer: false, .. }),
                BlockOn::RwWrite(r) => {
                    matches!(
                        st.res[r],
                        Res::Rw {
                            readers: 0,
                            writer: false,
                            ..
                        }
                    )
                }
                BlockOn::CondWait(..) => false,
                BlockOn::Join(other) => matches!(st.threads[other], Run::Finished),
            };
            if wake {
                st.threads[t] = Run::Runnable;
            }
        }
    }

    /// The single scheduling decision: pick the next thread to run
    /// among the runnable ones, fold the choice into the trace hash,
    /// and wake it. Detects deadlock and the step budget.
    fn pick(&self, st: &mut SchedState) {
        let runnable: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t], Run::Runnable))
            .collect();
        if runnable.is_empty() {
            if st.unfinished > 0 {
                let stuck: Vec<String> = (0..st.threads.len())
                    .filter_map(|t| match st.threads[t] {
                        Run::Blocked(b) => Some(format!("t{t} blocked on {b:?}")),
                        _ => None,
                    })
                    .collect();
                st.failures.push(format!("deadlock: {}", stuck.join(", ")));
                st.abort = true;
            }
            st.active = None;
            self.cv.notify_all();
            return;
        }
        let choice = runnable[st.rng.below(runnable.len())];
        st.active = Some(choice);
        st.trace = fnv1a(st.trace, choice as u64);
        st.steps += 1;
        if st.steps > st.max_steps {
            st.failures.push(format!(
                "schedule exceeded {} steps (livelock?)",
                st.max_steps
            ));
            st.abort = true;
        }
        self.cv.notify_all();
    }

    /// Park until this thread is the active one. Panics with the
    /// [`Abort`] sentinel when the schedule has been torn down.
    fn wait_for_turn<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        me: Tid,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(Abort);
            }
            if st.active == Some(me) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A voluntary scheduling point: the running thread stays runnable
    /// but the scheduler re-decides who goes next (possibly the same
    /// thread).
    fn yield_now(&self, me: Tid) {
        let mut st = self.lock_state();
        debug_assert_eq!(st.active, Some(me));
        self.pick(&mut st);
        drop(self.wait_for_turn(st, me));
    }

    /// Block the running thread on `b` and hand control to the
    /// scheduler; returns once the thread is scheduled again.
    fn block_on(&self, me: Tid, mut st: std::sync::MutexGuard<'_, SchedState>, b: BlockOn) {
        st.threads[me] = Run::Blocked(b);
        self.pick(&mut st);
        let mut st = self.wait_for_turn(st, me);
        st.threads[me] = Run::Runnable;
    }

    fn alloc(&self, r: Res) -> usize {
        let mut st = self.lock_state();
        st.res.push(r);
        st.res.len() - 1
    }

    /// Acquire model mutex `m`; returns whether it was poisoned.
    fn acquire_lock(&self, me: Tid, m: usize) -> bool {
        self.yield_now(me);
        loop {
            let mut st = self.lock_state();
            if let Res::Lock { locked, poisoned } = &mut st.res[m] {
                if !*locked {
                    *locked = true;
                    return *poisoned;
                }
            }
            self.block_on(me, st, BlockOn::Lock(m));
        }
    }

    /// Release model mutex `m`. `poison` marks the lock poisoned (the
    /// guard was dropped during a panic); `quiet` skips the scheduling
    /// point (unwind/teardown paths must never block or re-panic).
    fn release_lock(&self, me: Tid, m: usize, poison: bool, quiet: bool) {
        let mut st = self.lock_state();
        if let Res::Lock { locked, poisoned } = &mut st.res[m] {
            *locked = false;
            *poisoned |= poison;
        }
        Self::recompute(&mut st);
        if quiet || st.abort {
            self.cv.notify_all();
            return;
        }
        drop(st);
        self.yield_now(me);
    }

    fn acquire_read(&self, me: Tid, r: usize) -> bool {
        self.yield_now(me);
        loop {
            let mut st = self.lock_state();
            if let Res::Rw {
                readers,
                writer,
                poisoned,
            } = &mut st.res[r]
            {
                if !*writer {
                    *readers += 1;
                    return *poisoned;
                }
            }
            self.block_on(me, st, BlockOn::RwRead(r));
        }
    }

    fn acquire_write(&self, me: Tid, r: usize) -> bool {
        self.yield_now(me);
        loop {
            let mut st = self.lock_state();
            if let Res::Rw {
                readers,
                writer,
                poisoned,
            } = &mut st.res[r]
            {
                if *readers == 0 && !*writer {
                    *writer = true;
                    return *poisoned;
                }
            }
            self.block_on(me, st, BlockOn::RwWrite(r));
        }
    }

    fn release_read(&self, me: Tid, r: usize, quiet: bool) {
        let mut st = self.lock_state();
        if let Res::Rw { readers, .. } = &mut st.res[r] {
            *readers -= 1;
        }
        Self::recompute(&mut st);
        if quiet || st.abort {
            self.cv.notify_all();
            return;
        }
        drop(st);
        self.yield_now(me);
    }

    fn release_write(&self, me: Tid, r: usize, poison: bool, quiet: bool) {
        let mut st = self.lock_state();
        if let Res::Rw {
            writer, poisoned, ..
        } = &mut st.res[r]
        {
            *writer = false;
            *poisoned |= poison;
        }
        Self::recompute(&mut st);
        if quiet || st.abort {
            self.cv.notify_all();
            return;
        }
        drop(st);
        self.yield_now(me);
    }

    /// Atomically release mutex `m` and park on condvar `c`; once
    /// notified, re-acquire `m`. Returns whether `m` was poisoned at
    /// re-acquisition.
    fn cond_wait(&self, me: Tid, c: usize, m: usize) -> bool {
        {
            let mut st = self.lock_state();
            if let Res::Lock { locked, .. } = &mut st.res[m] {
                *locked = false;
            }
            Self::recompute(&mut st);
            self.block_on(me, st, BlockOn::CondWait(c, m));
        }
        // Notified: contend for the mutex again like any other waiter.
        loop {
            let mut st = self.lock_state();
            if let Res::Lock { locked, poisoned } = &mut st.res[m] {
                if !*locked {
                    *locked = true;
                    return *poisoned;
                }
            }
            self.block_on(me, st, BlockOn::Lock(m));
        }
    }

    /// Wake waiters of condvar `c`: one (chosen by the schedule rng) or
    /// all. A woken waiter transitions to contending for its mutex.
    fn notify(&self, c: usize, all: bool) {
        let mut st = self.lock_state();
        let waiters: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t], Run::Blocked(BlockOn::CondWait(cc, _)) if cc == c))
            .collect();
        if waiters.is_empty() {
            return;
        }
        let woken: Vec<Tid> = if all {
            waiters
        } else {
            let i = st.rng.below(waiters.len());
            st.trace = fnv1a(st.trace, 0x6e6f_7469_6679 ^ waiters[i] as u64);
            vec![waiters[i]]
        };
        for t in woken {
            if let Run::Blocked(BlockOn::CondWait(_, m)) = st.threads[t] {
                st.threads[t] = Run::Blocked(BlockOn::Lock(m));
            }
        }
        Self::recompute(&mut st);
        self.cv.notify_all();
    }

    /// Thread exit protocol: mark finished, wake joiners, hand off.
    fn finish(&self, me: Tid, quiet: bool) {
        let mut st = self.lock_state();
        st.threads[me] = Run::Finished;
        st.unfinished -= 1;
        Self::recompute(&mut st);
        if quiet || st.abort {
            self.cv.notify_all();
            return;
        }
        st.active = None;
        self.pick(&mut st);
    }

    fn record_failure(&self, msg: String) {
        let mut st = self.lock_state();
        if st.failures.len() < 32 {
            st.failures.push(msg);
        }
    }
}

/// Extract a printable message from a panic payload.
fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Launch `body` as a model thread with identity `id` on a real OS
/// thread that first parks until the scheduler picks it.
fn launch(sched: &Arc<Scheduler>, id: Tid, body: impl FnOnce() + Send + 'static) {
    let sched2 = Arc::clone(sched);
    let os = std::thread::spawn(move || {
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched2), id)));
        {
            let st = sched2.lock_state();
            // Parking before first execution keeps spawn deterministic:
            // the child runs only when the schedule says so. A teardown
            // while parked unwinds with `Abort`, caught right below.
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                drop(sched2.wait_for_turn(st, id));
            }));
            if r.is_err() {
                sched2.finish(id, true);
                return;
            }
        }
        match panic::catch_unwind(AssertUnwindSafe(body)) {
            Ok(()) => sched2.finish(id, false),
            Err(p) if p.is::<Abort>() => sched2.finish(id, true),
            Err(p) => {
                sched2.record_failure(format!("t{id} panicked: {}", panic_message(p.as_ref())));
                sched2.finish(id, false);
            }
        }
    });
    sched
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os);
}

/// One failing schedule of a [`Checker`] run.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Index of the failing schedule within the run.
    pub schedule: usize,
    /// The schedule's own seed — replay it with [`Checker::replay`].
    pub seed: u64,
    /// What went wrong (deadlock dump, panic message, step budget).
    pub messages: Vec<String>,
}

/// The outcome of a [`Checker`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// How many schedules were executed.
    pub schedules: usize,
    /// How many *distinct* interleavings were observed (schedules are
    /// fingerprinted by the FNV-1a hash of their thread-choice trace).
    pub distinct: usize,
    /// Order-sensitive digest of every schedule trace — two runs with
    /// the same seed produce the same digest (seed determinism).
    pub digest: u64,
    /// Every failing schedule, in execution order.
    pub failures: Vec<Failure>,
}

/// The deterministic interleaving checker. Construct, configure the
/// seed / schedule count / step budget, then [`run`](Checker::run) a
/// model closure built from the [`thread`] and [`sync`] shims.
#[derive(Clone, Debug)]
pub struct Checker {
    seed: u64,
    schedules: usize,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

impl Checker {
    /// A checker with the default seed (0), 2048 schedules, and a
    /// 20 000-step budget per schedule.
    pub fn new() -> Self {
        Checker {
            seed: 0,
            schedules: 2048,
            max_steps: 20_000,
        }
    }

    /// Set the master seed (per-schedule seeds derive from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set how many schedules to explore.
    pub fn schedules(mut self, n: usize) -> Self {
        self.schedules = n.max(1);
        self
    }

    /// Set the per-schedule step budget (exceeding it is a failure).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n.max(1);
        self
    }

    /// Explore `schedules` interleavings of `model` and report.
    ///
    /// The model closure runs once per schedule on a fresh scheduler;
    /// it must create all of its shared state (shim mutexes, spawned
    /// threads) inside the closure.
    pub fn run<F>(&self, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        let mut seen = HashSet::new();
        let mut digest = FNV_OFFSET;
        let mut failures = Vec::new();
        for i in 0..self.schedules {
            let seed = schedule_seed(self.seed, i);
            let (trace, msgs) = run_one(seed, self.max_steps, Arc::clone(&model));
            seen.insert(trace);
            digest = fnv1a(digest, trace);
            if !msgs.is_empty() && failures.len() < 16 {
                failures.push(Failure {
                    schedule: i,
                    seed,
                    messages: msgs,
                });
            }
        }
        Report {
            schedules: self.schedules,
            distinct: seen.len(),
            digest,
            failures,
        }
    }

    /// Replay a single schedule from a [`Failure::seed`].
    pub fn replay<F>(&self, seed: u64, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let (trace, msgs) = run_one(seed, self.max_steps, Arc::new(model));
        Report {
            schedules: 1,
            distinct: 1,
            digest: fnv1a(FNV_OFFSET, trace),
            failures: if msgs.is_empty() {
                Vec::new()
            } else {
                vec![Failure {
                    schedule: 0,
                    seed,
                    messages: msgs,
                }]
            },
        }
    }
}

/// Execute one schedule; returns (trace hash, failure messages).
fn run_one<F>(seed: u64, max_steps: usize, model: Arc<F>) -> (u64, Vec<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = Scheduler::new(seed, max_steps);
    {
        let mut st = sched.lock_state();
        st.threads.push(Run::Runnable);
        st.unfinished = 1;
        st.active = Some(0);
        st.trace = fnv1a(st.trace, 0);
    }
    launch(&sched, 0, move || model());
    // Join every OS thread the schedule spawned (the vector grows while
    // model threads run, so drain until it stays empty).
    loop {
        let hs: Vec<_> = {
            let mut h = sched.handles.lock().unwrap_or_else(|e| e.into_inner());
            h.drain(..).collect()
        };
        if hs.is_empty() {
            break;
        }
        for h in hs {
            let _ = h.join();
        }
    }
    let st = sched.lock_state();
    (st.trace, st.failures.clone())
}

/// A lock was poisoned: some thread panicked while holding it. Mirrors
/// `std::sync::PoisonError`; recover deliberately with [`unpoison`].
pub struct Poisoned<G>(G);

impl<G> std::fmt::Debug for Poisoned<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Poisoned { .. }")
    }
}

impl<G> Poisoned<G> {
    /// Recover the guard despite the poison (the model equivalent of
    /// `PoisonError::into_inner`).
    pub fn into_inner(self) -> G {
        self.0
    }
}

/// The model twin of [`crate::fault::unpoison`]: the single sanctioned
/// poisoned-lock recovery. Models that call `.lock().unwrap()` instead
/// panic under the checker whenever a schedule poisons the lock first —
/// which is exactly the regression the real lint rule pins.
pub fn unpoison<G>(r: Result<G, Poisoned<G>>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// `catch_unwind` for model code: like [`std::panic::catch_unwind`] but
/// re-throws the checker's internal teardown payload so a model cannot
/// swallow a schedule abort.
pub fn catch_unwind<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Err(p) if p.is::<Abort>() => panic::resume_unwind(p),
        other => other,
    }
}

/// A voluntary scheduling point, for modelling racy *non*-synchronized
/// steps (e.g. work between two lock regions).
pub fn yield_now() {
    let (sched, me) = ctx();
    sched.yield_now(me);
}

/// Model threads: [`spawn`](thread::spawn) and
/// [`JoinHandle`](thread::JoinHandle), mirroring `std::thread`.
pub mod thread {
    use super::*;

    /// Handle to a model thread; join it to retrieve the closure's
    /// return value (or the panic message if the thread panicked).
    pub struct JoinHandle<T> {
        id: Tid,
        result: Arc<StdMutex<Option<Result<T, String>>>>,
    }

    /// Spawn a model thread. The checker registers it immediately but
    /// only runs it when a schedule picks it.
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (sched, _me) = ctx();
        let id = {
            let mut st = sched.lock_state();
            st.threads.push(Run::Runnable);
            st.unfinished += 1;
            st.threads.len() - 1
        };
        let result = Arc::new(StdMutex::new(None));
        let slot = Arc::clone(&result);
        launch(&sched, id, move || {
            // Propagate panics to both the joiner (like std) and the
            // schedule failure list (via the launch wrapper), by
            // catching here, recording, and re-panicking.
            match super::catch_unwind(f) {
                Ok(v) => *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v)),
                Err(p) => {
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some(Err(panic_message(p.as_ref())));
                    panic::resume_unwind(p);
                }
            }
        });
        JoinHandle { id, result }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish; `Err` carries the panic
        /// message if it panicked (mirroring `std`'s `Result`).
        pub fn join(self) -> Result<T, String> {
            let (sched, me) = ctx();
            sched.yield_now(me);
            loop {
                let st = sched.lock_state();
                if matches!(st.threads[self.id], Run::Finished) {
                    break;
                }
                sched.block_on(me, st, BlockOn::Join(self.id));
            }
            self.result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .unwrap_or_else(|| Err("thread torn down before finishing".into()))
        }
    }
}

/// Model synchronization primitives: [`Mutex`](sync::Mutex),
/// [`Condvar`](sync::Condvar) and [`RwLock`](sync::RwLock), mirroring
/// `std::sync` including poisoning.
pub mod sync {
    use super::*;
    use std::ops::{Deref, DerefMut};

    /// A model mutex. Every `lock` is a scheduling point; dropping the
    /// guard during a panic poisons the lock, exactly like `std`.
    pub struct Mutex<T> {
        id: usize,
        sched: Arc<Scheduler>,
        data: StdMutex<T>,
    }

    /// RAII guard for [`Mutex`]; releasing it is a scheduling point.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Create a model mutex (must run inside [`Checker::run`]).
        #[allow(clippy::new_ret_no_self)]
        pub fn new(value: T) -> Self {
            let (sched, _) = ctx();
            let id = sched.alloc(Res::Lock {
                locked: false,
                poisoned: false,
            });
            Mutex {
                id,
                sched,
                data: StdMutex::new(value),
            }
        }

        /// Acquire the lock; `Err` means it is poisoned.
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, Poisoned<MutexGuard<'_, T>>> {
            let (_, me) = ctx();
            let poisoned = self.sched.acquire_lock(me, self.id);
            let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
            let guard = MutexGuard {
                lock: self,
                inner: Some(inner),
            };
            if poisoned {
                Err(Poisoned(guard))
            } else {
                Ok(guard)
            }
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard in wait transition")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard in wait transition")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_none() {
                // Consumed by Condvar::wait — the model release already
                // happened there.
                return;
            }
            let panicking = std::thread::panicking();
            let (_, me) = ctx();
            self.lock
                .sched
                .release_lock(me, self.lock.id, panicking, panicking);
        }
    }

    /// A model condvar. `notify_one` picks the woken waiter with the
    /// schedule rng, so wake order is part of the explored space.
    pub struct Condvar {
        id: usize,
        sched: Arc<Scheduler>,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Condvar {
        /// Create a model condvar (must run inside [`Checker::run`]).
        pub fn new() -> Self {
            let (sched, _) = ctx();
            let id = sched.alloc(Res::Cond);
            Condvar { id, sched }
        }

        /// Atomically release the guard's mutex and park; re-acquires
        /// on wake. `Err` means the mutex was poisoned meanwhile.
        pub fn wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> Result<MutexGuard<'a, T>, Poisoned<MutexGuard<'a, T>>> {
            let lock = guard.lock;
            // Consume the std guard; the model release + park + re-
            // acquire is one atomic protocol step in `cond_wait`.
            guard.inner.take();
            drop(guard);
            let (_, me) = ctx();
            let poisoned = self.sched.cond_wait(me, self.id, lock.id);
            let inner = lock.data.lock().unwrap_or_else(|e| e.into_inner());
            let guard = MutexGuard {
                lock,
                inner: Some(inner),
            };
            if poisoned {
                Err(Poisoned(guard))
            } else {
                Ok(guard)
            }
        }

        /// Wake one waiter (chosen by the schedule rng).
        pub fn notify_one(&self) {
            self.sched.notify(self.id, false);
        }

        /// Wake every waiter.
        pub fn notify_all(&self) {
            self.sched.notify(self.id, true);
        }
    }

    /// A model reader-writer lock (the serve *regime gate* shape:
    /// small jobs share the read side, large jobs take the write side).
    pub struct RwLock<T> {
        id: usize,
        sched: Arc<Scheduler>,
        data: std::sync::RwLock<T>,
    }

    /// Shared-read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    }

    /// Exclusive-write guard for [`RwLock`]; dropping it during a
    /// panic poisons the lock (like `std`, only writers poison).
    pub struct RwLockWriteGuard<'a, T> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    }

    impl<T> RwLock<T> {
        /// Create a model rwlock (must run inside [`Checker::run`]).
        pub fn new(value: T) -> Self {
            let (sched, _) = ctx();
            let id = sched.alloc(Res::Rw {
                readers: 0,
                writer: false,
                poisoned: false,
            });
            RwLock {
                id,
                sched,
                data: std::sync::RwLock::new(value),
            }
        }

        /// Acquire a shared read guard; `Err` means poisoned.
        pub fn read(&self) -> Result<RwLockReadGuard<'_, T>, Poisoned<RwLockReadGuard<'_, T>>> {
            let (_, me) = ctx();
            let poisoned = self.sched.acquire_read(me, self.id);
            let inner = self.data.read().unwrap_or_else(|e| e.into_inner());
            let guard = RwLockReadGuard {
                lock: self,
                inner: Some(inner),
            };
            if poisoned {
                Err(Poisoned(guard))
            } else {
                Ok(guard)
            }
        }

        /// Acquire the exclusive write guard; `Err` means poisoned.
        pub fn write(&self) -> Result<RwLockWriteGuard<'_, T>, Poisoned<RwLockWriteGuard<'_, T>>> {
            let (_, me) = ctx();
            let poisoned = self.sched.acquire_write(me, self.id);
            let inner = self.data.write().unwrap_or_else(|e| e.into_inner());
            let guard = RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
            };
            if poisoned {
                Err(Poisoned(guard))
            } else {
                Ok(guard)
            }
        }
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("read guard present")
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.inner.take();
            let panicking = std::thread::panicking();
            let (_, me) = ctx();
            self.lock.sched.release_read(me, self.lock.id, panicking);
        }
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("write guard present")
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("write guard present")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.inner.take();
            let panicking = std::thread::panicking();
            let (_, me) = ctx();
            self.lock
                .sched
                .release_write(me, self.lock.id, panicking, panicking);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Silence panic backtraces from model threads (they are expected
    /// in failure-detection tests) while keeping test-thread panics
    /// loud. Model threads are unnamed; libtest threads carry the test
    /// name.
    fn quiet_model_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if std::thread::current().name().is_some() {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn same_seed_same_digest() {
        let model = || {
            let m = Arc::new(sync::Mutex::new(0u32));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || *unpoison(m.lock()) += 1)
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*unpoison(m.lock()), 3);
        };
        let a = Checker::new().seed(42).schedules(64).run(model);
        let b = Checker::new().seed(42).schedules(64).run(model);
        let c = Checker::new().seed(43).schedules(64).run(model);
        assert_eq!(a.digest, b.digest, "same seed must replay identically");
        assert_ne!(a.digest, c.digest, "different seed should diverge");
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert!(a.distinct > 1, "3 contending threads must interleave");
    }

    #[test]
    fn detects_abba_deadlock() {
        quiet_model_panics();
        let report = Checker::new().seed(1).schedules(256).run(|| {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _ga = unpoison(a2.lock());
                let _gb = unpoison(b2.lock());
            });
            {
                let _gb = unpoison(b.lock());
                let _ga = unpoison(a.lock());
            }
            let _ = h.join();
        });
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.messages.iter().any(|m| m.contains("deadlock"))),
            "ABBA ordering must deadlock in some schedule: {report:?}"
        );
    }

    #[test]
    fn failing_schedule_replays_from_its_seed() {
        quiet_model_panics();
        let model = || {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _ga = unpoison(a2.lock());
                let _gb = unpoison(b2.lock());
            });
            {
                let _gb = unpoison(b.lock());
                let _ga = unpoison(a.lock());
            }
            let _ = h.join();
        };
        let report = Checker::new().seed(5).schedules(256).run(model);
        let failure = report.failures.first().expect("ABBA must fail somewhere");
        let replay = Checker::new().replay(failure.seed, model);
        assert_eq!(
            replay.failures.len(),
            1,
            "replaying the failing seed must reproduce the failure"
        );
        assert_eq!(replay.failures[0].messages, failure.messages);
    }

    #[test]
    fn poisons_locks_across_caught_panics() {
        quiet_model_panics();
        let poisoned_seen = Arc::new(AtomicUsize::new(0));
        let seen = poisoned_seen.clone();
        let report = Checker::new().seed(9).schedules(64).run(move || {
            let m = Arc::new(sync::Mutex::new(0u32));
            let m2 = m.clone();
            let h = thread::spawn(move || {
                let _ = catch_unwind(|| {
                    let _g = unpoison(m2.lock());
                    panic!("job panic while holding the lock");
                });
            });
            h.join().unwrap();
            match m.lock() {
                Ok(_) => panic!("lock must be poisoned after the panic"),
                Err(p) => {
                    drop(p.into_inner());
                }
            }
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(poisoned_seen.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn condvar_wakeups_are_not_lost_with_the_guarded_pattern() {
        let report = Checker::new().seed(3).schedules(128).run(|| {
            let state = Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
            let s2 = state.clone();
            let h = thread::spawn(move || {
                let (m, cv) = &*s2;
                *unpoison(m.lock()) = true;
                cv.notify_one();
            });
            let (m, cv) = &*state;
            let mut done = unpoison(m.lock());
            while !*done {
                done = unpoison(cv.wait(done));
            }
            drop(done);
            h.join().unwrap();
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.distinct > 1);
    }

    #[test]
    fn step_budget_catches_livelock() {
        quiet_model_panics();
        let report = Checker::new()
            .seed(2)
            .schedules(4)
            .max_steps(200)
            .run(|| loop {
                yield_now();
            });
        assert_eq!(
            report.failures.len(),
            4,
            "every schedule must hit the budget"
        );
        assert!(report.failures[0].messages[0].contains("exceeded"));
    }

    #[test]
    fn rwlock_write_poisons_read_does_not() {
        quiet_model_panics();
        let report = Checker::new().seed(11).schedules(32).run(|| {
            let rw = Arc::new(sync::RwLock::new(0u32));
            let rw2 = rw.clone();
            let h = thread::spawn(move || {
                let _ = catch_unwind(|| {
                    let _g = unpoison(rw2.write());
                    panic!("writer panic");
                });
            });
            h.join().unwrap();
            assert!(rw.write().is_err(), "writer panic must poison");
            let rw3 = rw.clone();
            let h = thread::spawn(move || {
                let _ = catch_unwind(|| {
                    let _g = unpoison(rw3.read());
                    // A reader panicking...
                    panic!("reader panic");
                });
            });
            h.join().unwrap();
            // ...does not *newly* poison (std semantics); the lock is
            // still poisoned from the writer, which is all we assert.
            assert!(unpoison(rw.read()).eq(&0));
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }
}
