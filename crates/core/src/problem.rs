//! The dynamic-programming problem interface: recurrence (*).
//!
//! Every problem the paper covers is specified by three ingredients (§1):
//!
//! ```text
//! c(i,j) = min_{i<k<j} { c(i,k) + c(k,j) + f(i,k,j) },   0 <= i < j <= n, i+1 < j
//! c(i,i+1) = init(i),                                     0 <= i <= n-1
//! ```
//!
//! with non-negative `f` and `init`. [`DpProblem`] is exactly that triple;
//! concrete instances (matrix chain, optimal BST, triangulation) live in
//! the `pardp-apps` crate, and [`FnProblem`] wraps arbitrary closures.

use crate::weight::Weight;

/// A dynamic-programming instance of recurrence (*) over `n` objects.
///
/// Interval endpoints range over `0..=n`; the goal value is `c(0, n)`.
/// Implementations must be cheap to query: `f` is called `Theta(n)` times
/// per table cell, so it should be `O(1)` after construction (precompute
/// prefix sums, etc.).
pub trait DpProblem<W: Weight>: Sync {
    /// Number of objects (`n` in the paper). Intervals `(i, j)` satisfy
    /// `0 <= i < j <= n`.
    fn n(&self) -> usize;

    /// The leaf value `c(i, i+1)` for `0 <= i < n`. Must be non-negative.
    fn init(&self, i: usize) -> W;

    /// The decomposition cost `f(i, k, j)` for `0 <= i < k < j <= n`.
    /// Must be non-negative.
    fn f(&self, i: usize, k: usize, j: usize) -> W;

    /// A short display name for reports.
    fn name(&self) -> &str {
        "problem"
    }

    /// Validate basic well-formedness (non-negativity, finite costs) by
    /// exhaustive scan — `O(n^3)`, intended for tests and small instances.
    fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if n == 0 {
            return Err("problem must have at least one object".into());
        }
        // `partial_cmp` makes the NaN case explicit: incomparable values
        // (float NaN) are rejected alongside genuinely negative ones.
        let non_negative = |v: &W| {
            matches!(
                v.partial_cmp(&W::ZERO),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            )
        };
        for i in 0..n {
            let v = self.init(i);
            if !non_negative(&v) || !v.is_finite_cost() {
                return Err(format!("init({i}) = {v} is not a finite non-negative cost"));
            }
        }
        for i in 0..n {
            for k in i + 1..n + 1 {
                for j in k + 1..n + 1 {
                    let v = self.f(i, k, j);
                    if !non_negative(&v) || !v.is_finite_cost() {
                        return Err(format!(
                            "f({i},{k},{j}) = {v} is not a finite non-negative cost"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A problem given by closures — the quickest way to pose a custom
/// recurrence (*) instance.
///
/// ```
/// use pardp_core::problem::{DpProblem, FnProblem};
/// // Matrix chain with dimensions 10 x 20 x 5 (two matrices).
/// let dims = vec![10u64, 20, 5];
/// let p = FnProblem::new(
///     2,
///     |_i| 0u64,
///     move |i, k, j| dims[i] * dims[k] * dims[j],
/// );
/// assert_eq!(p.n(), 2);
/// assert_eq!(p.f(0, 1, 2), 1000);
/// ```
pub struct FnProblem<W, FI, FF>
where
    FI: Fn(usize) -> W + Sync,
    FF: Fn(usize, usize, usize) -> W + Sync,
{
    n: usize,
    init_fn: FI,
    f_fn: FF,
    name: String,
}

impl<W, FI, FF> FnProblem<W, FI, FF>
where
    W: Weight,
    FI: Fn(usize) -> W + Sync,
    FF: Fn(usize, usize, usize) -> W + Sync,
{
    /// Create a closure-backed problem over `n` objects.
    pub fn new(n: usize, init_fn: FI, f_fn: FF) -> Self {
        assert!(n >= 1, "need at least one object");
        FnProblem {
            n,
            init_fn,
            f_fn,
            name: "fn-problem".to_string(),
        }
    }

    /// Set the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<W, FI, FF> DpProblem<W> for FnProblem<W, FI, FF>
where
    W: Weight,
    FI: Fn(usize) -> W + Sync,
    FF: Fn(usize, usize, usize) -> W + Sync,
{
    fn n(&self) -> usize {
        self.n
    }

    fn init(&self, i: usize) -> W {
        debug_assert!(i < self.n);
        (self.init_fn)(i)
    }

    fn f(&self, i: usize, k: usize, j: usize) -> W {
        debug_assert!(i < k && k < j && j <= self.n);
        (self.f_fn)(i, k, j)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A problem with all `f` and `init` values materialised in flat tables.
/// `O(n^3)` memory; used by tests (arbitrary instances from proptest) and
/// by generators that construct adversarial cost structures explicitly.
#[derive(Debug, Clone)]
pub struct TabulatedProblem<W> {
    n: usize,
    init: Vec<W>,
    /// `f(i,k,j)` at index `(i * (n+1) + k) * (n+1) + j`.
    f: Vec<W>,
    name: String,
}

impl<W: Weight> TabulatedProblem<W> {
    /// Build from explicit tables. `f` entries outside `i < k < j` are
    /// ignored (callers may leave them as `W::ZERO`).
    pub fn new(init: Vec<W>, f_at: impl Fn(usize, usize, usize) -> W) -> Self {
        let n = init.len();
        assert!(n >= 1);
        let m = n + 1;
        let mut f = vec![W::ZERO; m * m * m];
        for i in 0..n {
            for k in i + 1..m {
                for j in k + 1..m {
                    f[(i * m + k) * m + j] = f_at(i, k, j);
                }
            }
        }
        TabulatedProblem {
            n,
            init,
            f,
            name: "tabulated".to_string(),
        }
    }

    /// Set the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Overwrite a single `f` entry (used by adversarial generators).
    pub fn set_f(&mut self, i: usize, k: usize, j: usize, v: W) {
        assert!(i < k && k < j && j <= self.n);
        let m = self.n + 1;
        self.f[(i * m + k) * m + j] = v;
    }
}

impl<W: Weight> DpProblem<W> for TabulatedProblem<W> {
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn init(&self, i: usize) -> W {
        self.init[i]
    }

    #[inline]
    fn f(&self, i: usize, k: usize, j: usize) -> W {
        let m = self.n + 1;
        self.f[(i * m + k) * m + j]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_problem_basics() {
        let p = FnProblem::new(3, |i| i as u64, |i, k, j| (i + k + j) as u64).with_name("t");
        assert_eq!(p.n(), 3);
        assert_eq!(p.init(2), 2);
        assert_eq!(p.f(0, 1, 3), 4);
        assert_eq!(p.name(), "t");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn tabulated_matches_closure() {
        let f = |i: usize, k: usize, j: usize| (i * 100 + k * 10 + j) as u64;
        let tab = TabulatedProblem::new(vec![1u64, 2, 3, 4], f);
        assert_eq!(tab.n(), 4);
        for i in 0..4 {
            assert_eq!(tab.init(i), (i + 1) as u64);
            for k in i + 1..5 {
                for j in k + 1..5 {
                    assert_eq!(tab.f(i, k, j), f(i, k, j), "({i},{k},{j})");
                }
            }
        }
    }

    #[test]
    fn set_f_overrides() {
        let mut tab = TabulatedProblem::new(vec![0u64; 3], |_, _, _| 5);
        tab.set_f(0, 1, 3, 99);
        assert_eq!(tab.f(0, 1, 3), 99);
        assert_eq!(tab.f(0, 1, 2), 5);
    }

    #[test]
    fn validate_rejects_infinite_costs() {
        let p = FnProblem::new(2, |_| u64::MAX / 2, |_, _, _| 0u64);
        assert!(p.validate().is_err());
        let p = FnProblem::new(2, |_| 0u64, |_, _, _| u64::MAX);
        assert!(p.validate().is_err());
    }
}
