//! Property-based tests of the PRAM cost model: Brent-time laws,
//! timeline consistency and audit behaviour on arbitrary phase logs.

use pardp_pram::{AuditMode, PhaseRecord, Pram, SharedArray, Timeline};
use proptest::prelude::*;

/// Strategy: an arbitrary phase (map or reduce with mixed histogram).
fn phase_strategy() -> impl Strategy<Value = PhaseRecord> {
    prop_oneof![
        (1u64..10_000).prop_map(|t| PhaseRecord::map("m", t)),
        (1u64..200, 1u64..100).prop_map(|(r, f)| PhaseRecord::reduce("r", r, f)),
        proptest::collection::vec((1u64..64, 1u64..50), 1..6)
            .prop_map(|h| PhaseRecord::reduce_from_histogram("h", h)),
    ]
}

fn pram_strategy() -> impl Strategy<Value = Pram> {
    proptest::collection::vec(phase_strategy(), 1..12).prop_map(|phases| {
        let mut pram = Pram::new("prop");
        for ph in phases {
            pram.push(ph);
        }
        pram
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn brent_time_laws(pram in pram_strategy(), p in 1u64..10_000) {
        let m = pram.metrics().clone();
        // T_1 = W; T_inf = D; D <= T_p <= W; Brent's inequality.
        prop_assert_eq!(pram.brent_time(1), m.work);
        prop_assert_eq!(pram.brent_time(u64::MAX), m.depth);
        let t = pram.brent_time(p);
        prop_assert!(t >= m.depth);
        prop_assert!(t <= m.work);
        prop_assert!(t <= m.work / p + m.depth);
        prop_assert!(t >= m.work.div_ceil(p));
    }

    #[test]
    fn brent_time_is_monotone_in_p(pram in pram_strategy()) {
        let mut prev = u64::MAX;
        for p in [1u64, 2, 3, 5, 8, 16, 64, 1024, 1 << 20] {
            let t = pram.brent_time(p);
            prop_assert!(t <= prev, "p={p}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn timeline_is_consistent_with_machine(pram in pram_strategy(), p in 1u64..5_000) {
        let tl = Timeline::schedule(&pram, p);
        prop_assert_eq!(tl.makespan, pram.brent_time(p));
        prop_assert_eq!(tl.total_work, pram.metrics().work);
        prop_assert_eq!(tl.phases.len(), pram.phases().len());
        // Contiguous, ordered spans.
        let mut cursor = 0;
        for ph in &tl.phases {
            prop_assert_eq!(ph.start, cursor);
            cursor = ph.end;
        }
        prop_assert_eq!(cursor, tl.makespan);
        // Utilisation in (0, 1].
        let u = tl.utilisation();
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }

    #[test]
    fn processors_for_depth_is_sufficient(pram in pram_strategy()) {
        let p = pram.processors_for_depth(1.0);
        prop_assert!(pram.brent_time(p) <= pram.metrics().depth);
        if p > 1 {
            prop_assert!(pram.brent_time(p - 1) > pram.metrics().depth);
        }
    }

    #[test]
    fn reduce_histogram_work_matches_sum(hist in proptest::collection::vec((1u64..64, 1u64..50), 1..8)) {
        let ph = PhaseRecord::reduce_from_histogram("h", hist.clone());
        let expect: u64 = hist.iter().map(|&(f, c)| (f - 1) * c).sum();
        prop_assert_eq!(ph.work, expect);
        let max_depth = hist.iter().map(|&(f, _)| pardp_pram::ceil_log2(f) as u64).max().unwrap();
        prop_assert_eq!(ph.depth, max_depth);
    }

    #[test]
    fn shared_array_detects_any_double_write(len in 2usize..64, idx in 0usize..64) {
        let idx = idx % len;
        let mut a = SharedArray::new("t", len, 0u64, AuditMode::Full);
        a.write(idx, 1).unwrap();
        prop_assert!(a.write(idx, 2).is_err());
        a.barrier();
        prop_assert!(a.write(idx, 3).is_ok());
    }

    #[test]
    fn shared_array_allows_disjoint_writes(len in 1usize..64) {
        let mut a = SharedArray::new("t", len, 0u64, AuditMode::Full);
        for i in 0..len {
            prop_assert!(a.write(i, i as u64).is_ok());
        }
        a.barrier();
        for i in 0..len {
            prop_assert_eq!(a.read(i).unwrap(), i as u64);
        }
    }
}
