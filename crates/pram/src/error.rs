//! Error types for CREW PRAM audit violations.

use std::fmt;

/// A violation of the PRAM execution discipline detected by an audited run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// Two (or more) processors wrote the same shared-memory cell within a
    /// single synchronous step. This violates the *exclusive write* rule of
    /// the CREW PRAM.
    WriteConflict {
        /// Name of the audited array.
        array: &'static str,
        /// Linear index of the conflicting cell.
        index: usize,
        /// Step counter at which the conflict occurred.
        step: u64,
    },
    /// A processor read a cell that had already been written *within the
    /// same synchronous step*. On a real PRAM, all reads of a step happen
    /// before all writes, so a sequential emulation that observes the new
    /// value diverges from PRAM semantics. We flag this as an error because
    /// it almost always indicates a missing double buffer.
    ReadAfterWriteInStep {
        /// Name of the audited array.
        array: &'static str,
        /// Linear index of the offending cell.
        index: usize,
        /// Step counter at which the violation occurred.
        step: u64,
    },
    /// An access was out of the bounds of the audited array.
    OutOfBounds {
        /// Name of the audited array.
        array: &'static str,
        /// Linear index of the offending access.
        index: usize,
        /// Length of the array.
        len: usize,
    },
}

impl fmt::Display for PramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PramError::WriteConflict { array, index, step } => write!(
                f,
                "CREW violation: concurrent writes to {array}[{index}] in step {step}"
            ),
            PramError::ReadAfterWriteInStep { array, index, step } => write!(
                f,
                "PRAM synchrony violation: read of {array}[{index}] after a write in step {step}"
            ),
            PramError::OutOfBounds { array, index, len } => {
                write!(f, "out-of-bounds access: {array}[{index}] (len {len})")
            }
        }
    }
}

impl std::error::Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = PramError::WriteConflict {
            array: "pw",
            index: 7,
            step: 3,
        };
        let s = e.to_string();
        assert!(s.contains("pw[7]"));
        assert!(s.contains("step 3"));
        let e = PramError::ReadAfterWriteInStep {
            array: "w",
            index: 1,
            step: 9,
        };
        assert!(e.to_string().contains("synchrony"));
        let e = PramError::OutOfBounds {
            array: "w",
            index: 10,
            len: 10,
        };
        assert!(e.to_string().contains("out-of-bounds"));
    }
}
