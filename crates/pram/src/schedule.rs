//! Brent-scheduled timelines: executing a recorded phase log on `p`
//! virtual processors.
//!
//! [`Timeline::schedule`] assigns every layer of every phase its start
//! and end step under the exact layer-by-layer Brent schedule (all `w`
//! operations of a layer are spread over `ceil(w / p)` steps). The result
//! supports utilisation queries and an ASCII Gantt rendering used by the
//! E5 experiment discussion.

use serde::{Deserialize, Serialize};

use crate::machine::Pram;

/// One scheduled phase on the timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduledPhase {
    /// Phase label.
    pub name: String,
    /// First time step (inclusive).
    pub start: u64,
    /// One past the last time step.
    pub end: u64,
    /// Total operations executed in the phase.
    pub work: u64,
}

/// A full schedule of a machine's phase log on `p` processors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    /// Processor count the timeline was scheduled for.
    pub processors: u64,
    /// The phases, in execution order.
    pub phases: Vec<ScheduledPhase>,
    /// Total steps.
    pub makespan: u64,
    /// Total operations.
    pub total_work: u64,
}

impl Timeline {
    /// Schedule `pram`'s phase log on `p` processors (exact Brent, layer
    /// by layer).
    pub fn schedule(pram: &Pram, p: u64) -> Timeline {
        assert!(p >= 1);
        let mut t = 0u64;
        let mut phases = Vec::with_capacity(pram.phases().len());
        let mut total_work = 0u64;
        for ph in pram.phases() {
            let start = t;
            for &layer in &ph.layers {
                t += layer.div_ceil(p);
            }
            phases.push(ScheduledPhase {
                name: ph.name.clone(),
                start,
                end: t,
                work: ph.work,
            });
            total_work += ph.work;
        }
        Timeline {
            processors: p,
            phases,
            makespan: t,
            total_work,
        }
    }

    /// Average processor utilisation over the makespan: `W / (p * T)`.
    pub fn utilisation(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.total_work as f64 / (self.processors as f64 * self.makespan as f64)
    }

    /// Aggregate scheduled spans by phase-name prefix (before `'/'`).
    pub fn spans_by_operation(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for ph in &self.phases {
            let key = ph.name.split('/').next().unwrap_or(&ph.name).to_string();
            let dur = ph.end - ph.start;
            match out.iter_mut().find(|(k, _)| *k == key) {
                Some((_, d)) => *d += dur,
                None => out.push((key, dur)),
            }
        }
        out
    }

    /// Render an ASCII Gantt chart (one row per operation group),
    /// `width` characters across the makespan.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let groups = self.spans_by_operation();
        let mut rows: Vec<(String, Vec<bool>)> = groups
            .iter()
            .map(|(k, _)| (k.clone(), vec![false; width]))
            .collect();
        let scale = |step: u64| -> usize {
            if self.makespan == 0 {
                0
            } else {
                ((step as u128 * width as u128) / self.makespan.max(1) as u128) as usize
            }
        };
        for ph in &self.phases {
            let key = ph.name.split('/').next().unwrap_or(&ph.name);
            if let Some((_, cells)) = rows.iter_mut().find(|(k, _)| k == key) {
                let a = scale(ph.start);
                let b = scale(ph.end).min(width.saturating_sub(1));
                for cell in cells.iter_mut().take(b + 1).skip(a) {
                    *cell = true;
                }
            }
        }
        let label_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, cells) in rows {
            out.push_str(&format!("{k:>label_w$} |"));
            for c in cells {
                out.push(if c { '#' } else { ' ' });
            }
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>label_w$}  0 .. {} steps on p = {} ({} ops, {:.1}% utilised)\n",
            "",
            self.makespan,
            self.processors,
            self.total_work,
            100.0 * self.utilisation()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pram() -> Pram {
        let mut pram = Pram::new("t");
        pram.map_phase("a/x", 100);
        pram.reduce_phase("b/y", 10, 16);
        pram.map_phase("a/z", 50);
        pram
    }

    #[test]
    fn makespan_matches_brent_time() {
        let pram = sample_pram();
        for p in [1u64, 3, 16, 1000] {
            let tl = Timeline::schedule(&pram, p);
            assert_eq!(tl.makespan, pram.brent_time(p), "p={p}");
            assert_eq!(tl.total_work, pram.metrics().work);
        }
    }

    #[test]
    fn phases_are_contiguous_and_ordered() {
        let tl = Timeline::schedule(&sample_pram(), 4);
        let mut prev_end = 0;
        for ph in &tl.phases {
            assert_eq!(ph.start, prev_end);
            assert!(ph.end >= ph.start);
            prev_end = ph.end;
        }
        assert_eq!(prev_end, tl.makespan);
    }

    #[test]
    fn utilisation_is_one_on_single_processor() {
        let tl = Timeline::schedule(&sample_pram(), 1);
        assert!((tl.utilisation() - 1.0).abs() < 1e-12);
        // More processors -> lower or equal utilisation.
        let tl16 = Timeline::schedule(&sample_pram(), 16);
        assert!(tl16.utilisation() <= 1.0 + 1e-12);
    }

    #[test]
    fn spans_group_by_prefix() {
        let tl = Timeline::schedule(&sample_pram(), 2);
        let spans = tl.spans_by_operation();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "a");
        assert_eq!(spans[1].0, "b");
        let total: u64 = spans.iter().map(|(_, d)| d).sum();
        assert_eq!(total, tl.makespan);
    }

    #[test]
    fn gantt_renders_all_groups() {
        let tl = Timeline::schedule(&sample_pram(), 2);
        let g = tl.render_gantt(40);
        assert!(g.contains("a |") || g.contains("a|") || g.contains('a'));
        assert!(g.contains('#'));
        assert!(g.contains("steps on p = 2"));
    }

    #[test]
    fn empty_machine_timeline() {
        let pram = Pram::new("empty");
        let tl = Timeline::schedule(&pram, 8);
        assert_eq!(tl.makespan, 0);
        assert!((tl.utilisation() - 1.0).abs() < 1e-12);
    }
}
