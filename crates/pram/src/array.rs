//! Audited shared memory: CREW discipline checking.
//!
//! [`SharedArray`] wraps a flat vector and tracks, per synchronous step,
//! which cells have been written. Under [`AuditMode::Full`] it reports
//! * a second write to the same cell in one step (**exclusive-write
//!   violation**), and
//! * a read of a cell already written in the current step (**synchrony
//!   violation**: on a PRAM, a step's reads all precede its writes, so an
//!   emulation that observes the freshly written value is not executing the
//!   PRAM program).
//!
//! The tracker costs one `u32` stamp per cell and O(1) per access, so fully
//! audited runs remain practical for the table sizes used in tests
//! (`n <= 24`, i.e. tens of millions of accesses).

use crate::error::PramError;

/// Whether accesses are audited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Check every access against the CREW discipline.
    Full,
    /// No checking; `SharedArray` behaves like a plain vector.
    Off,
}

/// A shared-memory array with per-step CREW access auditing.
#[derive(Debug, Clone)]
pub struct SharedArray<T> {
    name: &'static str,
    data: Vec<T>,
    /// Step stamp of the last write to each cell; `0` means "never written
    /// in any step" (step counters start at 1).
    write_stamp: Vec<u32>,
    step: u32,
    mode: AuditMode,
}

impl<T: Clone> SharedArray<T> {
    /// Create an array of `len` cells initialised to `init`.
    pub fn new(name: &'static str, len: usize, init: T, mode: AuditMode) -> Self {
        SharedArray {
            name,
            data: vec![init; len],
            write_stamp: match mode {
                AuditMode::Full => vec![0; len],
                AuditMode::Off => Vec::new(),
            },
            step: 1,
            mode,
        }
    }

    /// Wrap an existing vector.
    pub fn from_vec(name: &'static str, data: Vec<T>, mode: AuditMode) -> Self {
        let len = data.len();
        SharedArray {
            name,
            data,
            write_stamp: match mode {
                AuditMode::Full => vec![0; len],
                AuditMode::Off => Vec::new(),
            },
            step: 1,
            mode,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Advance to the next synchronous step: all write stamps of the
    /// previous step become stale.
    pub fn barrier(&mut self) {
        self.step = self.step.checked_add(1).expect("step counter overflow");
    }

    /// Current step counter.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Audited read.
    pub fn read(&self, index: usize) -> Result<T, PramError> {
        if index >= self.data.len() {
            return Err(PramError::OutOfBounds {
                array: self.name,
                index,
                len: self.data.len(),
            });
        }
        if self.mode == AuditMode::Full && self.write_stamp[index] == self.step {
            return Err(PramError::ReadAfterWriteInStep {
                array: self.name,
                index,
                step: self.step as u64,
            });
        }
        Ok(self.data[index].clone())
    }

    /// Audited exclusive write.
    pub fn write(&mut self, index: usize, value: T) -> Result<(), PramError> {
        if index >= self.data.len() {
            return Err(PramError::OutOfBounds {
                array: self.name,
                index,
                len: self.data.len(),
            });
        }
        if self.mode == AuditMode::Full {
            if self.write_stamp[index] == self.step {
                return Err(PramError::WriteConflict {
                    array: self.name,
                    index,
                    step: self.step as u64,
                });
            }
            self.write_stamp[index] = self.step;
        }
        self.data[index] = value;
        Ok(())
    }

    /// Unchecked view of the underlying data (for inspection after a run).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume the wrapper, returning the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_roundtrip() {
        let mut a = SharedArray::new("t", 4, 0i64, AuditMode::Full);
        a.write(2, 42).unwrap();
        a.barrier();
        assert_eq!(a.read(2).unwrap(), 42);
        assert_eq!(a.read(0).unwrap(), 0);
    }

    #[test]
    fn double_write_in_step_is_a_crew_violation() {
        let mut a = SharedArray::new("t", 4, 0i64, AuditMode::Full);
        a.write(1, 1).unwrap();
        let err = a.write(1, 2).unwrap_err();
        assert!(matches!(err, PramError::WriteConflict { index: 1, .. }));
        // After a barrier the cell is writable again.
        a.barrier();
        a.write(1, 3).unwrap();
        assert_eq!(a.as_slice()[1], 3);
    }

    #[test]
    fn distinct_cells_in_one_step_are_fine() {
        let mut a = SharedArray::new("t", 8, 0u32, AuditMode::Full);
        for i in 0..8 {
            a.write(i, i as u32).unwrap();
        }
        a.barrier();
        for i in 0..8 {
            assert_eq!(a.read(i).unwrap(), i as u32);
        }
    }

    #[test]
    fn read_after_write_in_same_step_is_flagged() {
        let mut a = SharedArray::new("t", 4, 0i64, AuditMode::Full);
        a.write(3, 7).unwrap();
        let err = a.read(3).unwrap_err();
        assert!(matches!(
            err,
            PramError::ReadAfterWriteInStep { index: 3, .. }
        ));
    }

    #[test]
    fn audit_off_allows_everything() {
        let mut a = SharedArray::new("t", 2, 0i64, AuditMode::Off);
        a.write(0, 1).unwrap();
        a.write(0, 2).unwrap();
        assert_eq!(a.read(0).unwrap(), 2);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut a = SharedArray::new("t", 2, 0i64, AuditMode::Full);
        assert!(matches!(a.read(5), Err(PramError::OutOfBounds { .. })));
        assert!(matches!(a.write(5, 0), Err(PramError::OutOfBounds { .. })));
    }

    #[test]
    fn from_vec_and_into_inner() {
        let a = SharedArray::from_vec("t", vec![1, 2, 3], AuditMode::Full);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.into_inner(), vec![1, 2, 3]);
    }
}
