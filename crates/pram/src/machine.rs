//! The PRAM machine: a sequence of recorded synchronous phases.

use serde::{Deserialize, Serialize};

use crate::metrics::{brent_time_of_layers, Metrics, PhaseRecord};

/// A CREW PRAM execution recorder.
///
/// A `Pram` owns an ordered log of [`PhaseRecord`]s. Algorithms under study
/// call [`Pram::map_phase`] / [`Pram::reduce_phase`] as they execute their
/// parallel steps; the machine aggregates PRAM work, depth and processor
/// demand, and can afterwards report the exact Brent-scheduled time on any
/// processor count, per-operation breakdowns, and the processor–time
/// product used by the paper's comparisons.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pram {
    name: String,
    phases: Vec<PhaseRecord>,
    metrics: Metrics,
}

impl Pram {
    /// Create an empty machine with a label used in reports.
    pub fn new(name: impl Into<String>) -> Self {
        Pram {
            name: name.into(),
            phases: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    /// The machine's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record a flat parallel map of `tasks` unit operations
    /// (work `tasks`, depth 1).
    pub fn map_phase(&mut self, name: &str, tasks: u64) {
        self.push(PhaseRecord::map(name, tasks));
    }

    /// Record `reductions` simultaneous balanced-tree reductions over
    /// `fan_in` candidates each (work `reductions * (fan_in - 1)`, depth
    /// `ceil(log2 fan_in)`).
    pub fn reduce_phase(&mut self, name: &str, reductions: u64, fan_in: u64) {
        self.push(PhaseRecord::reduce(name, reductions, fan_in));
    }

    /// Record a pre-built phase.
    pub fn push(&mut self, phase: PhaseRecord) {
        self.metrics.work += phase.work;
        self.metrics.depth += phase.depth;
        self.metrics.peak_processors = self.metrics.peak_processors.max(phase.peak_processors);
        self.metrics.phases += 1;
        self.phases.push(phase);
    }

    /// Aggregated metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The ordered phase log.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Exact execution time on `p` processors: each unit-depth layer of each
    /// phase runs in `ceil(layer_work / p)` steps (Brent scheduling).
    pub fn brent_time(&self, p: u64) -> u64 {
        self.phases
            .iter()
            .map(|ph| brent_time_of_layers(&ph.layers, p))
            .sum()
    }

    /// The smallest processor count for which the Brent time is within
    /// `slack` steps of the unbounded-processor depth. This is the
    /// "processors sufficient for the stated time bound" quantity the paper
    /// reports (e.g. `O(n^5 / log n)` processors for `O(sqrt(n) log n)`
    /// time): beyond it, more processors no longer help.
    pub fn processors_for_depth(&self, slack_factor: f64) -> u64 {
        let depth = self.metrics.depth.max(1);
        let target = ((depth as f64) * slack_factor).ceil() as u64;
        let mut lo = 1u64;
        let mut hi = self.metrics.peak_processors.max(1);
        if self.brent_time(hi) > target {
            return hi;
        }
        // Binary search for the smallest p with brent_time(p) <= target.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.brent_time(mid) <= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Work aggregated by phase-name prefix (everything before the first
    /// `'/'`), for per-operation breakdowns like
    /// `a-activate` / `a-square` / `a-pebble`.
    pub fn work_by_operation(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for ph in &self.phases {
            let key = ph.name.split('/').next().unwrap_or(&ph.name).to_string();
            match out.iter_mut().find(|(k, _)| *k == key) {
                Some((_, w)) => *w += ph.work,
                None => out.push((key, ph.work)),
            }
        }
        out
    }

    /// Merge another machine's log into this one (appending its phases).
    pub fn absorb(&mut self, other: Pram) {
        for ph in other.phases {
            self.push(ph);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_across_phases() {
        let mut pram = Pram::new("t");
        pram.map_phase("a", 100);
        pram.reduce_phase("b", 10, 16); // work 150, depth 4, peak 80
        let m = pram.metrics();
        assert_eq!(m.work, 100 + 150);
        assert_eq!(m.depth, 1 + 4);
        assert_eq!(m.peak_processors, 100);
        assert_eq!(m.phases, 2);
    }

    #[test]
    fn brent_time_sums_layers() {
        let mut pram = Pram::new("t");
        pram.map_phase("a", 100);
        pram.reduce_phase("b", 1, 8); // layers 4,2,1
        assert_eq!(pram.brent_time(1), 100 + 7);
        assert_eq!(pram.brent_time(4), 25 + 1 + 1 + 1);
        assert_eq!(pram.brent_time(1000), 1 + 3);
    }

    #[test]
    fn processors_for_depth_is_monotone_boundary() {
        let mut pram = Pram::new("t");
        pram.map_phase("a", 1 << 16);
        pram.reduce_phase("b", 1 << 8, 1 << 8);
        let p = pram.processors_for_depth(1.0);
        assert!(p >= 1);
        assert!(pram.brent_time(p) <= pram.metrics().depth);
        if p > 1 {
            assert!(pram.brent_time(p - 1) > pram.metrics().depth);
        }
    }

    #[test]
    fn work_by_operation_groups_prefixes() {
        let mut pram = Pram::new("t");
        pram.map_phase("a-square/seed", 5);
        pram.reduce_phase("a-square/min", 2, 4);
        pram.map_phase("a-pebble/close", 7);
        let groups = pram.work_by_operation();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], ("a-square".to_string(), 5 + 2 * 3));
        assert_eq!(groups[1], ("a-pebble".to_string(), 7));
    }

    #[test]
    fn absorb_appends() {
        let mut a = Pram::new("a");
        a.map_phase("x", 1);
        let mut b = Pram::new("b");
        b.map_phase("y", 2);
        a.absorb(b);
        assert_eq!(a.metrics().work, 3);
        assert_eq!(a.phases().len(), 2);
    }
}
