//! # pardp-pram — a CREW PRAM cost-model simulator
//!
//! The algorithm of Huang, Liu and Viswanathan (ICPP 1990 / TCS 106 (1992))
//! is stated for a **concurrent-read exclusive-write parallel random access
//! machine** (CREW PRAM): a synchronous machine in which any number of
//! processors may read a shared memory cell in one step, but at most one
//! processor may write a given cell per step.
//!
//! No such machine exists in hardware, so this crate provides the closest
//! executable substitute: a *cost-model simulator*. It does not try to be a
//! cycle-accurate machine; instead it
//!
//! * executes the algorithm's synchronous *phases* (parallel maps and
//!   balanced-tree reductions) while **accounting** the exact PRAM costs —
//!   unit **work** (total operations), **depth** (parallel time under an
//!   unbounded number of processors) and **peak processor demand**;
//! * derives the running time on `p` processors by **Brent's theorem**
//!   (`T_p <= W/p + D`, computed exactly layer by layer rather than via the
//!   inequality);
//! * optionally *audits* the exclusive-write discipline with
//!   [`SharedArray`], which detects two writes to the same cell within one
//!   synchronous step (a CREW violation) as well as a read of a cell that
//!   was already written in the same step (a synchrony violation: PRAM
//!   semantics say all reads of a step happen before all writes).
//!
//! The intended use (see `pardp-core::pram_exec`) is to replay each
//! `a-activate` / `a-square` / `a-pebble` operation of the paper as one or
//! more recorded phases, producing the processor/time/work tables of
//! EXPERIMENTS.md (experiment E5).
//!
//! ## Example
//!
//! ```
//! use pardp_pram::{Pram, PhaseKind};
//!
//! let mut pram = Pram::new("demo");
//! // A parallel map over 1000 cells: work 1000, depth 1.
//! pram.map_phase("init", 1000);
//! // 100 independent min-reductions, each over 50 candidates:
//! // work 100*49, depth ceil(log2 50) = 6.
//! pram.reduce_phase("min", 100, 50);
//! let m = pram.metrics();
//! assert_eq!(m.work, 1000 + 100 * 49);
//! assert_eq!(m.depth, 1 + 6);
//! // Brent-scheduled time on 64 processors.
//! assert!(pram.brent_time(64) >= m.depth);
//! assert!(pram.brent_time(1) == m.work);
//! # let _ = PhaseKind::Map;
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
pub mod array;
pub mod error;
pub mod machine;
pub mod metrics;
pub mod schedule;

pub use array::{AuditMode, SharedArray};
pub use error::PramError;
pub use machine::Pram;
pub use metrics::{Metrics, PhaseKind, PhaseRecord};
pub use schedule::{ScheduledPhase, Timeline};

/// Ceiling of `log2(x)` for `x >= 1`; 0 for `x <= 1`.
///
/// This is the depth of a balanced binary reduction tree over `x` inputs,
/// the canonical PRAM schedule for computing a `min` of `x` values.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn ceil_log2_powers_of_two_are_exact() {
        for e in 0..40u32 {
            assert_eq!(ceil_log2(1u64 << e), e);
        }
    }
}
