//! Work / depth / processor accounting for PRAM executions.
//!
//! The costs recorded here follow the standard work-depth model used by the
//! paper's analysis (§4):
//!
//! * a **map phase** over `t` tasks costs work `t`, depth `1`, and demands
//!   `t` processors;
//! * a **reduce phase** of `r` independent reductions, each over `m`
//!   candidates, is scheduled as `r` balanced binary trees: work
//!   `r * (m - 1)`, depth `ceil(log2 m)`, peak demand `r * ceil(m / 2)`.
//!
//! The paper's headline processor counts divide by `log n` because `p`
//! processors can simulate a reduction layer by layer (Brent's theorem)
//! without changing the asymptotic time; [`Pram::brent_time`](crate::Pram::brent_time) computes
//! that schedule exactly from the recorded per-layer work.

use serde::{Deserialize, Serialize};

use crate::ceil_log2;

/// The kind of a recorded phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// A flat parallel map: every task is one unit of work in one time step.
    Map,
    /// A collection of independent balanced-tree reductions.
    Reduce,
}

/// One recorded phase of a PRAM execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Human-readable label, e.g. `"a-square/compose"`.
    pub name: String,
    /// Phase kind.
    pub kind: PhaseKind,
    /// Total unit operations in this phase.
    pub work: u64,
    /// Parallel time of this phase with unbounded processors.
    pub depth: u64,
    /// Maximum number of simultaneously busy processors in this phase.
    pub peak_processors: u64,
    /// Work per unit-depth layer, outermost first. For a map phase this is
    /// a single layer; for a reduce phase there is one layer per reduction
    /// tree level. Used for exact Brent scheduling.
    pub layers: Vec<u64>,
}

/// Aggregated metrics of a PRAM execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Total unit operations across all phases.
    pub work: u64,
    /// Total parallel time with unbounded processors.
    pub depth: u64,
    /// Maximum processor demand over all phases.
    pub peak_processors: u64,
    /// Number of recorded phases.
    pub phases: u64,
}

impl Metrics {
    /// The processor–time product at the machine's peak demand: the
    /// quantity the paper uses to compare algorithms ("PT product").
    pub fn pt_product(&self) -> u128 {
        self.peak_processors as u128 * self.depth as u128
    }
}

/// Exact Brent-scheduled execution time on `p` processors for a sequence of
/// layers with the given work counts: `sum_i ceil(w_i / p)`.
pub fn brent_time_of_layers(layers: &[u64], p: u64) -> u64 {
    assert!(p >= 1, "Brent scheduling needs at least one processor");
    layers.iter().map(|&w| w.div_ceil(p)).sum()
}

/// Build the layer profile of a reduce phase: `r` simultaneous balanced
/// binary reductions over `m` candidates each.
///
/// Layer `l` (starting from the leaves) pairs up the `ceil(m / 2^l)`
/// survivors of the previous layer, costing `r * floor(m_l / 2)` operations
/// where `m_l` is the survivor count entering the layer.
pub fn reduce_layers(reductions: u64, fan_in: u64) -> Vec<u64> {
    let mut layers = Vec::with_capacity(ceil_log2(fan_in.max(1)) as usize);
    let mut m = fan_in;
    while m > 1 {
        let ops = m / 2;
        layers.push(reductions * ops);
        m -= ops;
    }
    layers
}

impl PhaseRecord {
    /// A flat map phase over `tasks` unit operations.
    pub fn map(name: impl Into<String>, tasks: u64) -> Self {
        PhaseRecord {
            name: name.into(),
            kind: PhaseKind::Map,
            work: tasks,
            depth: if tasks == 0 { 0 } else { 1 },
            peak_processors: tasks,
            layers: if tasks == 0 { vec![] } else { vec![tasks] },
        }
    }

    /// `reductions` independent balanced-tree min-reductions, each over
    /// `fan_in` candidates.
    pub fn reduce(name: impl Into<String>, reductions: u64, fan_in: u64) -> Self {
        let layers = reduce_layers(reductions, fan_in);
        let work: u64 = layers.iter().sum();
        let depth = layers.len() as u64;
        let peak = layers.first().copied().unwrap_or(0);
        PhaseRecord {
            name: name.into(),
            kind: PhaseKind::Reduce,
            work,
            depth,
            peak_processors: peak,
            layers,
        }
    }

    /// Simultaneous reductions with *mixed* fan-ins, given as a histogram
    /// of `(fan_in, count)` entries. All reductions start in the same
    /// step, so layer `l` aggregates the `l`-th reduction-tree level of
    /// every group; the phase depth is the largest group's depth. This is
    /// how the `a-square` / `a-pebble` steps are accounted: every cell
    /// `(i,j,p,q)` has its own candidate count.
    pub fn reduce_from_histogram(
        name: impl Into<String>,
        hist: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let mut layers: Vec<u64> = Vec::new();
        for (fan_in, count) in hist {
            let group = reduce_layers(count, fan_in);
            if group.len() > layers.len() {
                layers.resize(group.len(), 0);
            }
            for (l, w) in group.into_iter().enumerate() {
                layers[l] += w;
            }
        }
        let work: u64 = layers.iter().sum();
        let depth = layers.len() as u64;
        let peak = layers.first().copied().unwrap_or(0);
        PhaseRecord {
            name: name.into(),
            kind: PhaseKind::Reduce,
            work,
            depth,
            peak_processors: peak,
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_phase_costs() {
        let ph = PhaseRecord::map("m", 10);
        assert_eq!(ph.work, 10);
        assert_eq!(ph.depth, 1);
        assert_eq!(ph.peak_processors, 10);
        assert_eq!(ph.layers, vec![10]);
    }

    #[test]
    fn empty_map_phase_is_free() {
        let ph = PhaseRecord::map("m", 0);
        assert_eq!(ph.work, 0);
        assert_eq!(ph.depth, 0);
        assert!(ph.layers.is_empty());
    }

    #[test]
    fn reduce_phase_costs_match_closed_forms() {
        // One reduction over m candidates costs m-1 work, ceil(log2 m) depth.
        for m in 1..200u64 {
            let ph = PhaseRecord::reduce("r", 1, m);
            assert_eq!(ph.work, m.saturating_sub(1), "work for m={m}");
            assert_eq!(ph.depth, ceil_log2(m) as u64, "depth for m={m}");
        }
    }

    #[test]
    fn reduce_phase_scales_linearly_in_reductions() {
        let one = PhaseRecord::reduce("r", 1, 37);
        let many = PhaseRecord::reduce("r", 100, 37);
        assert_eq!(many.work, 100 * one.work);
        assert_eq!(many.depth, one.depth);
        assert_eq!(many.peak_processors, 100 * one.peak_processors);
    }

    #[test]
    fn reduce_layers_halve() {
        let layers = reduce_layers(1, 8);
        assert_eq!(layers, vec![4, 2, 1]);
        let layers = reduce_layers(1, 7);
        // 7 -> 3 ops leaves 4; 4 -> 2 ops leaves 2; 2 -> 1 op leaves 1.
        assert_eq!(layers, vec![3, 2, 1]);
        let layers = reduce_layers(3, 2);
        assert_eq!(layers, vec![3]);
    }

    #[test]
    fn brent_time_endpoints() {
        let layers = reduce_layers(10, 64); // work 630, depth 6
        let work: u64 = layers.iter().sum();
        assert_eq!(brent_time_of_layers(&layers, 1), work);
        // With unbounded processors the time equals the depth.
        assert_eq!(brent_time_of_layers(&layers, u64::MAX), layers.len() as u64);
        // Monotone non-increasing in p.
        let mut prev = u64::MAX;
        for p in 1..100 {
            let t = brent_time_of_layers(&layers, p);
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn brent_inequality_holds() {
        // T_p <= W/p + D (Brent's theorem).
        let layers = reduce_layers(17, 93);
        let work: u64 = layers.iter().sum();
        let depth = layers.len() as u64;
        for p in 1..50 {
            let t = brent_time_of_layers(&layers, p);
            assert!(t <= work / p + depth, "p={p}");
            assert!(t >= depth);
            assert!(t >= work.div_ceil(p));
        }
    }

    #[test]
    fn histogram_reduce_matches_uniform_when_degenerate() {
        let uniform = PhaseRecord::reduce("r", 10, 16);
        let hist = PhaseRecord::reduce_from_histogram("r", vec![(16, 10)]);
        assert_eq!(uniform.work, hist.work);
        assert_eq!(uniform.depth, hist.depth);
        assert_eq!(uniform.layers, hist.layers);
    }

    #[test]
    fn histogram_reduce_mixes_depths() {
        // One reduction over 8 (depth 3) + four over 2 (depth 1).
        let ph = PhaseRecord::reduce_from_histogram("r", vec![(8, 1), (2, 4)]);
        assert_eq!(ph.depth, 3);
        assert_eq!(ph.work, 7 + 4);
        assert_eq!(ph.layers, vec![4 + 4, 2, 1]);
    }

    #[test]
    fn pt_product() {
        let m = Metrics {
            work: 10,
            depth: 4,
            peak_processors: 8,
            phases: 2,
        };
        assert_eq!(m.pt_product(), 32);
    }
}
