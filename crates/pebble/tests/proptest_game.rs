//! Property-based tests of the pebbling game on *arbitrary* full binary
//! trees: Lemma 3.3 and its invariants must hold for every shape, not
//! just the named generators.

use pardp_pebble::game::{moves_to_pebble, PebbleGame};
use pardp_pebble::gen::{from_shape, TreeShape};
use pardp_pebble::invariants::play_checked;
use pardp_pebble::{lemma_move_bound, SquareRule};
use proptest::prelude::*;

/// Strategy: arbitrary tree shapes with up to `max_leaves` leaves.
fn shape_strategy(max_leaves: usize) -> impl Strategy<Value = TreeShape> {
    let leaf = Just(TreeShape::Leaf).boxed();
    leaf.prop_recursive(12, max_leaves as u32, 2, |inner| {
        (inner.clone(), inner).prop_map(|(l, r)| TreeShape::Node(Box::new(l), Box::new(r)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lemma_bound_holds_for_arbitrary_shapes(shape in shape_strategy(64)) {
        let tree = from_shape(&shape);
        let n = tree.n_leaves();
        let moves = moves_to_pebble(&tree, SquareRule::Modified);
        prop_assert!(moves <= lemma_move_bound(n), "{moves} > bound for n={n}");
    }

    #[test]
    fn pointer_jump_never_slower(shape in shape_strategy(48)) {
        let tree = from_shape(&shape);
        let modified = moves_to_pebble(&tree, SquareRule::Modified);
        let jump = moves_to_pebble(&tree, SquareRule::PointerJump);
        prop_assert!(jump <= modified, "jump {jump} > modified {modified}");
    }

    #[test]
    fn invariants_hold_for_arbitrary_shapes(shape in shape_strategy(48)) {
        let tree = from_shape(&shape);
        let mut game = PebbleGame::new(&tree, SquareRule::Modified);
        let result = play_checked(&mut game);
        prop_assert!(result.is_ok(), "violation: {:?}", result.err());
    }

    #[test]
    fn moves_bounded_by_height_plus_one(shape in shape_strategy(48)) {
        // A node pebbles at most one move after its slower child, so the
        // game never needs more than height+1 moves.
        let tree = from_shape(&shape);
        let moves = moves_to_pebble(&tree, SquareRule::Modified);
        prop_assert!(moves <= tree.height() as u64 + 1,
            "{moves} > height {} + 1", tree.height());
    }

    #[test]
    fn interval_labels_partition_leaves(shape in shape_strategy(48)) {
        let tree = from_shape(&shape);
        let labels = tree.interval_labels();
        let n = tree.n_leaves();
        // Root covers (0, n); leaf labels are exactly (t, t+1) for t in 0..n.
        prop_assert_eq!(labels[tree.root()], (0, n));
        let mut leaf_starts: Vec<usize> = tree
            .node_ids()
            .filter(|&x| tree.is_leaf(x))
            .map(|x| {
                let (i, j) = labels[x];
                assert_eq!(j, i + 1);
                i
            })
            .collect();
        leaf_starts.sort_unstable();
        prop_assert_eq!(leaf_starts, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn subtree_sizes_are_consistent(shape in shape_strategy(48)) {
        let tree = from_shape(&shape);
        for x in tree.node_ids() {
            let node = tree.node(x);
            match (node.left, node.right) {
                (Some(l), Some(r)) => {
                    prop_assert_eq!(tree.size(x), tree.size(l) + tree.size(r));
                    prop_assert!(tree.is_ancestor(x, l) && tree.is_ancestor(x, r));
                    prop_assert!(!tree.is_ancestor(l, r));
                }
                _ => prop_assert_eq!(tree.size(x), 1),
            }
        }
    }

    #[test]
    fn replay_is_deterministic(shape in shape_strategy(32)) {
        let tree = from_shape(&shape);
        let mut g1 = PebbleGame::new(&tree, SquareRule::Modified);
        let s1 = g1.play();
        let mut g2 = PebbleGame::new(&tree, SquareRule::Modified);
        let s2 = g2.play();
        prop_assert_eq!(s1.moves, s2.moves);
        prop_assert_eq!(s1.per_move.len(), s2.per_move.len());
    }
}
