//! The pebbling game of §3, with strict synchronous (PRAM) semantics.
//!
//! Every operation is evaluated "for all nodes x in parallel": each
//! sub-operation reads only the *pre-operation* state. `square` and
//! `pebble` therefore run double-buffered; `activate` only writes the cell
//! it alone reads (`cond(x)` guarded by `cond(x) = x`), so it is safely
//! executed in place.

use serde::{Deserialize, Serialize};

use crate::tree::{FullBinaryTree, NodeId};

/// Which square rule the game uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SquareRule {
    /// The paper's **modified** square (§3): advance `cond(x)` one level,
    /// to the child of `cond(x)` that is an ancestor of `cond(cond(x))`.
    /// This mirrors the restricted composition of `a-square` (eq. 2c).
    Modified,
    /// Rytter's original square: jump `cond(x) := cond(cond(x))`
    /// (full pointer doubling, mirroring composition through arbitrary
    /// intermediate gaps — the O(n^6)-work algorithm of \[8\]).
    PointerJump,
}

/// Statistics of one move (activate + square + pebble).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveStats {
    /// Nodes whose `cond` left themselves in the activate step.
    pub activated: u64,
    /// Nodes whose `cond` advanced in the square step.
    pub squared: u64,
    /// Nodes newly pebbled in the pebble step.
    pub pebbled: u64,
}

/// Statistics of a finished game.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameStats {
    /// Moves played until the root was pebbled.
    pub moves: u64,
    /// Per-move statistics.
    pub per_move: Vec<MoveStats>,
    /// Number of leaves of the tree.
    pub n_leaves: usize,
}

/// Game state on a borrowed tree.
#[derive(Debug, Clone)]
pub struct PebbleGame<'t> {
    tree: &'t FullBinaryTree,
    rule: SquareRule,
    pebbled: Vec<bool>,
    cond: Vec<NodeId>,
    moves: u64,
    // Scratch double buffers, reused across moves (no per-move allocation).
    cond_next: Vec<NodeId>,
    pebbled_next: Vec<bool>,
}

impl<'t> PebbleGame<'t> {
    /// Initial position: leaves pebbled, `cond(x) = x` everywhere.
    pub fn new(tree: &'t FullBinaryTree, rule: SquareRule) -> Self {
        let n = tree.n_nodes();
        let pebbled: Vec<bool> = (0..n).map(|x| tree.is_leaf(x)).collect();
        let cond: Vec<NodeId> = (0..n).collect();
        PebbleGame {
            tree,
            rule,
            cond_next: cond.clone(),
            pebbled_next: pebbled.clone(),
            pebbled,
            cond,
            moves: 0,
        }
    }

    /// The tree being played on.
    pub fn tree(&self) -> &FullBinaryTree {
        self.tree
    }

    /// Whether node `x` is pebbled.
    #[inline]
    pub fn is_pebbled(&self, x: NodeId) -> bool {
        self.pebbled[x]
    }

    /// Whether `x` was pebbled just *before* the pebble sub-step of the
    /// most recent move (i.e. the state the activate and square sub-steps
    /// of that move actually observed). Before any move this equals
    /// [`Self::is_pebbled`]. Used by the §3 invariant (b) checker: pebbles
    /// placed in the current move's pebble step have not yet been
    /// responded to by any activate/square.
    #[inline]
    pub fn was_pebbled_before_last_pebble(&self, x: NodeId) -> bool {
        self.pebbled_next[x]
    }

    /// Current `cond` pointer of `x`.
    #[inline]
    pub fn cond(&self, x: NodeId) -> NodeId {
        self.cond[x]
    }

    /// Whether the root is pebbled (the game's goal).
    pub fn root_pebbled(&self) -> bool {
        self.pebbled[self.tree.root()]
    }

    /// Moves played so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Number of pebbled nodes.
    pub fn pebble_count(&self) -> usize {
        self.pebbled.iter().filter(|&&p| p).count()
    }

    /// The **activate** step: for all `x` with `cond(x) = x` and a pebbled
    /// child, point `cond(x)` at the other child. If both children are
    /// pebbled the choice is immaterial; we deterministically pick the
    /// right child (the "other" child of the pebbled left one).
    pub fn activate(&mut self) -> u64 {
        let mut activated = 0;
        for x in 0..self.tree.n_nodes() {
            if self.cond[x] != x {
                continue;
            }
            let node = self.tree.node(x);
            if let (Some(l), Some(r)) = (node.left, node.right) {
                if self.pebbled[l] {
                    self.cond[x] = r;
                    activated += 1;
                } else if self.pebbled[r] {
                    self.cond[x] = l;
                    activated += 1;
                }
            }
        }
        activated
    }

    /// The **square** step under the configured [`SquareRule`], evaluated
    /// synchronously (all reads see the pre-square pointers).
    pub fn square(&mut self) -> u64 {
        let mut squared = 0;
        for x in 0..self.tree.n_nodes() {
            let y = self.cond[x];
            let z = self.cond[y];
            self.cond_next[x] = if z != y {
                squared += 1;
                match self.rule {
                    SquareRule::Modified => self.tree.child_towards(y, z),
                    SquareRule::PointerJump => z,
                }
            } else {
                y
            };
        }
        std::mem::swap(&mut self.cond, &mut self.cond_next);
        squared
    }

    /// The **pebble** step: pebble every unpebbled `x` whose `cond(x)` is
    /// pebbled, synchronously.
    pub fn pebble(&mut self) -> u64 {
        let mut newly = 0;
        for x in 0..self.tree.n_nodes() {
            let p = self.pebbled[x] || self.pebbled[self.cond[x]];
            if p && !self.pebbled[x] {
                newly += 1;
            }
            self.pebbled_next[x] = p;
        }
        std::mem::swap(&mut self.pebbled, &mut self.pebbled_next);
        newly
    }

    /// One full move: activate, square, pebble.
    pub fn do_move(&mut self) -> MoveStats {
        let activated = self.activate();
        let squared = self.square();
        let pebbled = self.pebble();
        self.moves += 1;
        MoveStats {
            activated,
            squared,
            pebbled,
        }
    }

    /// Play until the root is pebbled; returns full statistics.
    ///
    /// # Panics
    /// If the root is not pebbled within `4 * n + 8` moves (it provably is
    /// within `2 * ceil(sqrt(n))`) — a failure here indicates a broken
    /// game implementation.
    pub fn play(&mut self) -> GameStats {
        let n = self.tree.n_leaves();
        let cap = 4 * n as u64 + 8;
        let mut per_move = Vec::new();
        while !self.root_pebbled() {
            assert!(
                self.moves < cap,
                "game failed to converge within {cap} moves (n={n})"
            );
            per_move.push(self.do_move());
        }
        GameStats {
            moves: self.moves,
            per_move,
            n_leaves: n,
        }
    }

    /// Reset to the initial position.
    pub fn reset(&mut self) {
        for x in 0..self.tree.n_nodes() {
            self.pebbled[x] = self.tree.is_leaf(x);
            self.cond[x] = x;
        }
        self.moves = 0;
    }
}

/// Play a fresh game on `tree` under `rule`, returning the number of moves
/// until the root is pebbled.
pub fn moves_to_pebble(tree: &FullBinaryTree, rule: SquareRule) -> u64 {
    PebbleGame::new(tree, rule).play().moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::lemma_move_bound;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn single_leaf_needs_zero_moves() {
        let t = gen::complete(1);
        let mut g = PebbleGame::new(&t, SquareRule::Modified);
        assert!(g.root_pebbled());
        assert_eq!(g.play().moves, 0);
    }

    #[test]
    fn two_leaves_need_one_move() {
        // Move 1's activate points cond(root) at the other child — itself
        // a pebbled leaf — so the same move's pebble step pebbles the root.
        let t = gen::complete(2);
        let moves = moves_to_pebble(&t, SquareRule::Modified);
        assert_eq!(moves, 1);
    }

    #[test]
    fn complete_trees_pebble_in_about_log_moves() {
        for e in 1..=10u32 {
            let n = 1usize << e;
            let t = gen::complete(n);
            let moves = moves_to_pebble(&t, SquareRule::Modified);
            // A complete tree pebbles one level per move.
            assert!(moves <= e as u64 + 2, "n={n} moves={moves}");
            assert!(moves >= e as u64 / 2, "n={n} moves={moves}");
        }
    }

    #[test]
    fn all_shapes_respect_the_lemma_bound() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [2usize, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233] {
            let shapes = [
                gen::complete(n),
                gen::skewed(n, gen::Side::Left),
                gen::skewed(n, gen::Side::Right),
                gen::zigzag(n),
                gen::random_split(n, &mut rng),
                gen::random_remy(n, &mut rng),
            ];
            for (idx, t) in shapes.iter().enumerate() {
                let moves = moves_to_pebble(t, SquareRule::Modified);
                assert!(
                    moves <= lemma_move_bound(n),
                    "shape {idx} n={n}: {moves} > {}",
                    lemma_move_bound(n)
                );
            }
        }
    }

    #[test]
    fn pointer_jump_is_never_slower() {
        let mut rng = SmallRng::seed_from_u64(2);
        for n in [4usize, 9, 17, 40, 77, 150] {
            for t in [
                gen::zigzag(n),
                gen::skewed(n, gen::Side::Left),
                gen::random_split(n, &mut rng),
            ] {
                let slow = moves_to_pebble(&t, SquareRule::Modified);
                let fast = moves_to_pebble(&t, SquareRule::PointerJump);
                assert!(fast <= slow, "n={n}: jump {fast} > modified {slow}");
            }
        }
    }

    #[test]
    fn pointer_jump_is_logarithmic_even_on_zigzag() {
        for n in [16usize, 64, 256, 1024] {
            let t = gen::zigzag(n);
            let moves = moves_to_pebble(&t, SquareRule::PointerJump);
            let log = (n as f64).log2().ceil() as u64;
            assert!(moves <= 2 * log + 2, "n={n} moves={moves} log={log}");
        }
    }

    #[test]
    fn zigzag_modified_is_order_sqrt_n() {
        // Theta(sqrt(n)) worst case: moves should exceed sqrt(n)/2 and stay
        // below the 2*ceil(sqrt(n)) bound.
        for n in [64usize, 256, 1024, 4096] {
            let t = gen::zigzag(n);
            let moves = moves_to_pebble(&t, SquareRule::Modified);
            let sqrt = (n as f64).sqrt();
            assert!(moves as f64 >= sqrt * 0.5, "n={n} moves={moves}");
            assert!(moves <= lemma_move_bound(n), "n={n} moves={moves}");
        }
    }

    #[test]
    fn pebbles_are_monotone_and_moves_logged() {
        let t = gen::zigzag(50);
        let mut g = PebbleGame::new(&t, SquareRule::Modified);
        let mut prev = g.pebble_count();
        while !g.root_pebbled() {
            g.do_move();
            let now = g.pebble_count();
            assert!(now >= prev, "pebbling must be monotone");
            prev = now;
        }
        let stats_moves = g.moves();
        g.reset();
        assert_eq!(g.pebble_count(), t.n_leaves());
        let replay = g.play();
        assert_eq!(replay.moves, stats_moves, "deterministic replay");
    }

    #[test]
    fn per_move_stats_sum_to_total_pebbles() {
        let t = gen::random_split(60, &mut SmallRng::seed_from_u64(5));
        let mut g = PebbleGame::new(&t, SquareRule::Modified);
        let stats = g.play();
        let pebbled_total: u64 = stats.per_move.iter().map(|m| m.pebbled).sum();
        // All internal nodes get pebbled on the way to the root... not
        // necessarily; but at least every pebble accounted is a new node,
        // and the root is among them.
        assert!(pebbled_total >= 1);
        assert!(pebbled_total <= (t.n_nodes() - t.n_leaves()) as u64);
        assert_eq!(g.pebble_count(), t.n_leaves() + pebbled_total as usize);
    }
}
