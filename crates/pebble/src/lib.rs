//! # pardp-pebble — the pebbling game of Huang–Liu–Viswanathan (§3)
//!
//! The correctness and the `O(sqrt(n))`-move bound of the paper's sublinear
//! parallel dynamic-programming algorithm rest on a **pebbling game** played
//! on the (unknown) optimal decomposition tree. This crate implements that
//! game exactly as specified, together with the tree shapes of the paper's
//! Figures 1 and 2 and the average-case analysis of §6.
//!
//! ## The game (paper §3)
//!
//! A *full binary tree* (every internal node has two children) starts with
//! all leaves pebbled and every node's `cond` pointer aimed at itself.
//! A **move** is the sequence of three synchronous parallel operations:
//!
//! * **activate** — if `cond(x) = x` and at least one child of `x` is
//!   pebbled, point `cond(x)` at the *other* child;
//! * **square** — if `cond(cond(x)) != cond(x)`, advance `cond(x)` to the
//!   child of `cond(x)` that is an ancestor of `cond(cond(x))` (the paper's
//!   *modified* square; Rytter's original game instead jumps straight to
//!   `cond(cond(x))` — both are provided, see [`game::SquareRule`]);
//! * **pebble** — if `x` is unpebbled but `cond(x)` is pebbled, pebble `x`.
//!
//! Lemma 3.3 proves the root of any full binary tree with `n` leaves is
//! pebbled within `2 * ceil(sqrt(n))` moves. The zigzag tree (Fig. 2a)
//! achieves `Theta(sqrt(n))`; complete and path-shaped trees, and random
//! trees on average (§6), need only `O(log n)` moves.
//!
//! ## Modules
//!
//! * [`tree`] — arena-allocated full binary trees with subtree sizes,
//!   Euler-tour ancestor tests and DP-interval labels;
//! * [`gen`] — the tree shapes of the paper (complete, skewed, zigzag,
//!   random splits, uniform Catalan via Rémy's algorithm);
//! * [`game`] — the game itself, with strict synchronous semantics;
//! * [`invariants`] — the two invariants stated after Lemma 3.3;
//! * [`chain`] — the heavy-chain decomposition of the Lemma 3.3 proof
//!   (Fig. 1), also the basis of the §5 processor reduction;
//! * [`analysis`] — the §6 average-case recurrence `T(n)` and empirical
//!   move statistics;
//! * [`render`] — ASCII renderings of tree shapes (Fig. 2 regeneration).

#![deny(unsafe_op_in_unsafe_fn)]
pub mod analysis;
pub mod chain;
pub mod game;
pub mod gen;
pub mod invariants;
pub mod render;
pub mod tree;

pub use game::{GameStats, MoveStats, PebbleGame, SquareRule};
pub use tree::{FullBinaryTree, NodeId, TreeBuilder};

/// `2 * ceil(sqrt(n))`: the number of moves Lemma 3.3 guarantees to pebble
/// the root of a full binary tree with `n` leaves, and the iteration count
/// of the paper's algorithm (§2).
#[inline]
pub fn lemma_move_bound(n_leaves: usize) -> u64 {
    2 * ceil_sqrt(n_leaves as u64)
}

/// Ceiling of the integer square root.
#[inline]
pub fn ceil_sqrt(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).sqrt() as u64;
    // Correct floating-point drift in both directions.
    while r * r > x {
        r -= 1;
    }
    while r * r < x {
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_sqrt_exact() {
        assert_eq!(ceil_sqrt(0), 0);
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(3), 2);
        assert_eq!(ceil_sqrt(4), 2);
        assert_eq!(ceil_sqrt(5), 3);
        assert_eq!(ceil_sqrt(9), 3);
        assert_eq!(ceil_sqrt(10), 4);
        assert_eq!(ceil_sqrt(15), 4);
        assert_eq!(ceil_sqrt(16), 4);
        assert_eq!(ceil_sqrt(17), 5);
    }

    #[test]
    fn ceil_sqrt_brute_force_agreement() {
        for x in 0..10_000u64 {
            let r = ceil_sqrt(x);
            assert!(r * r >= x, "x={x} r={r}");
            assert!(r == 0 || (r - 1) * (r - 1) < x, "x={x} r={r}");
        }
    }

    #[test]
    fn lemma_move_bound_values() {
        assert_eq!(lemma_move_bound(1), 2);
        assert_eq!(lemma_move_bound(4), 4);
        assert_eq!(lemma_move_bound(5), 6);
        assert_eq!(lemma_move_bound(16), 8);
        assert_eq!(lemma_move_bound(100), 20);
    }
}
