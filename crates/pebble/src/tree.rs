//! Arena-allocated full binary trees.
//!
//! The pebbling game needs, per node: children, parent, the subtree **size**
//! (number of leaves — Definition 3.2 of the paper), and constant-time
//! ancestor tests (for the modified square move). Nodes live in a flat
//! arena and are addressed by [`NodeId`], so the whole game state is a pair
//! of flat vectors — cache-friendly and trivially cloneable.

use serde::{Deserialize, Serialize};

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// A node of a full binary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Left child, if internal.
    pub left: Option<NodeId>,
    /// Right child, if internal.
    pub right: Option<NodeId>,
    /// Parent, `None` for the root.
    pub parent: Option<NodeId>,
    /// Number of leaves in the subtree rooted here (`size` in the paper).
    pub size: u32,
    /// Depth from the root (root has depth 0).
    pub depth: u32,
}

impl Node {
    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left.is_none()
    }
}

/// An immutable full binary tree with precomputed sizes, depths and
/// Euler-tour intervals for O(1) ancestor queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullBinaryTree {
    nodes: Vec<Node>,
    root: NodeId,
    n_leaves: usize,
    /// Euler-tour entry times.
    tin: Vec<u32>,
    /// Euler-tour exit times.
    tout: Vec<u32>,
}

/// Incremental builder for [`FullBinaryTree`].
///
/// ```
/// use pardp_pebble::tree::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// let l1 = b.leaf();
/// let l2 = b.leaf();
/// let l3 = b.leaf();
/// let inner = b.internal(l1, l2);
/// let root = b.internal(inner, l3);
/// let tree = b.build(root);
/// assert_eq!(tree.n_leaves(), 3);
/// assert_eq!(tree.size(root), 3);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TreeBuilder { nodes: Vec::new() }
    }

    /// Builder with preallocated capacity for a tree with `n_leaves` leaves
    /// (which has exactly `2 * n_leaves - 1` nodes).
    pub fn with_leaf_capacity(n_leaves: usize) -> Self {
        TreeBuilder {
            nodes: Vec::with_capacity(2 * n_leaves.max(1) - 1),
        }
    }

    /// Add a leaf; returns its id.
    pub fn leaf(&mut self) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            left: None,
            right: None,
            parent: None,
            size: 1,
            depth: 0,
        });
        id
    }

    /// Add an internal node over two existing, parentless nodes.
    ///
    /// # Panics
    /// If either child does not exist or already has a parent (which would
    /// make the structure a DAG, not a tree).
    pub fn internal(&mut self, left: NodeId, right: NodeId) -> NodeId {
        assert!(
            left < self.nodes.len() && right < self.nodes.len(),
            "child out of range"
        );
        assert_ne!(left, right, "children must be distinct");
        assert!(
            self.nodes[left].parent.is_none(),
            "left child already has a parent"
        );
        assert!(
            self.nodes[right].parent.is_none(),
            "right child already has a parent"
        );
        let id = self.nodes.len();
        let size = self.nodes[left].size + self.nodes[right].size;
        self.nodes.push(Node {
            left: Some(left),
            right: Some(right),
            parent: None,
            size,
            depth: 0,
        });
        self.nodes[left].parent = Some(id);
        self.nodes[right].parent = Some(id);
        id
    }

    /// Finalise the tree with the given root, computing depths and the
    /// Euler tour.
    ///
    /// # Panics
    /// If `root` has a parent, or if any built node is unreachable from
    /// `root` (the builder must be used to build exactly one tree).
    pub fn build(self, root: NodeId) -> FullBinaryTree {
        let mut nodes = self.nodes;
        assert!(root < nodes.len(), "root out of range");
        assert!(nodes[root].parent.is_none(), "root must not have a parent");

        let mut tin = vec![u32::MAX; nodes.len()];
        let mut tout = vec![0u32; nodes.len()];
        let mut clock = 0u32;
        let mut n_leaves = 0usize;
        // Iterative DFS: (node, entering?) to set depth / tin / tout.
        let mut stack: Vec<(NodeId, bool)> = vec![(root, true)];
        nodes[root].depth = 0;
        while let Some((x, entering)) = stack.pop() {
            if entering {
                tin[x] = clock;
                clock += 1;
                stack.push((x, false));
                let d = nodes[x].depth;
                if let (Some(l), Some(r)) = (nodes[x].left, nodes[x].right) {
                    nodes[l].depth = d + 1;
                    nodes[r].depth = d + 1;
                    stack.push((r, true));
                    stack.push((l, true));
                } else {
                    n_leaves += 1;
                }
            } else {
                tout[x] = clock;
                clock += 1;
            }
        }
        assert!(
            tin.iter().all(|&t| t != u32::MAX),
            "all built nodes must be reachable from the root"
        );
        assert_eq!(nodes.len(), 2 * n_leaves - 1, "tree must be full binary");
        FullBinaryTree {
            nodes,
            root,
            n_leaves,
            tin,
            tout,
        }
    }
}

impl FullBinaryTree {
    /// Number of leaves (`n` in the paper's analysis).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Total number of nodes (`2n - 1`).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, x: NodeId) -> &Node {
        &self.nodes[x]
    }

    /// Subtree size (number of leaves under `x`) — Definition 3.2.
    #[inline]
    pub fn size(&self, x: NodeId) -> u32 {
        self.nodes[x].size
    }

    /// Whether `x` is a leaf.
    #[inline]
    pub fn is_leaf(&self, x: NodeId) -> bool {
        self.nodes[x].is_leaf()
    }

    /// Depth of `x` (root = 0).
    #[inline]
    pub fn depth(&self, x: NodeId) -> u32 {
        self.nodes[x].depth
    }

    /// Height of the tree (max depth over nodes).
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Whether `a` is an ancestor of `b`. **Every node is an ancestor of
    /// itself**, matching the paper's convention in the square move.
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.tin[a] <= self.tin[b] && self.tout[b] <= self.tout[a]
    }

    /// The child of `y` that is an ancestor of `z`, where `z` is a proper
    /// descendant of `y`. Used verbatim by the modified square move.
    ///
    /// # Panics
    /// If `z` is not a proper descendant of `y`.
    #[inline]
    pub fn child_towards(&self, y: NodeId, z: NodeId) -> NodeId {
        debug_assert!(
            self.is_ancestor(y, z) && y != z,
            "z must be a proper descendant of y"
        );
        let l = self.nodes[y].left.expect("internal node");
        if self.is_ancestor(l, z) {
            l
        } else {
            let r = self.nodes[y].right.expect("internal node");
            debug_assert!(self.is_ancestor(r, z));
            r
        }
    }

    /// All node ids (arena order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.nodes.len()
    }

    /// Leaves in left-to-right order.
    pub fn leaves_in_order(&self) -> Vec<NodeId> {
        let mut leaves = Vec::with_capacity(self.n_leaves);
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            match (self.nodes[x].left, self.nodes[x].right) {
                (Some(l), Some(r)) => {
                    stack.push(r);
                    stack.push(l);
                }
                _ => leaves.push(x),
            }
        }
        leaves
    }

    /// Label every node with its dynamic-programming interval `(i, j)`:
    /// the `t`-th leaf (left to right) gets `(t, t+1)` and an internal node
    /// over intervals `(i, k)`, `(k, j)` gets `(i, j)` — exactly the node
    /// names `(i, j)` used throughout the paper (§2, set `S`).
    pub fn interval_labels(&self) -> Vec<(usize, usize)> {
        let mut labels = vec![(usize::MAX, usize::MAX); self.nodes.len()];
        let mut next_leaf = 0usize;
        // Post-order so children are labelled before parents.
        let mut stack: Vec<(NodeId, bool)> = vec![(self.root, true)];
        while let Some((x, entering)) = stack.pop() {
            if entering {
                if let (Some(l), Some(r)) = (self.nodes[x].left, self.nodes[x].right) {
                    stack.push((x, false));
                    stack.push((r, true));
                    stack.push((l, true));
                } else {
                    labels[x] = (next_leaf, next_leaf + 1);
                    next_leaf += 1;
                }
            } else {
                let l = self.nodes[x].left.unwrap();
                let r = self.nodes[x].right.unwrap();
                debug_assert_eq!(labels[l].1, labels[r].0, "children intervals must abut");
                labels[x] = (labels[l].0, labels[r].1);
            }
        }
        labels
    }

    /// Structural equality check useful in tests (ignores arena numbering).
    pub fn same_shape(&self, other: &FullBinaryTree) -> bool {
        fn rec(a: &FullBinaryTree, x: NodeId, b: &FullBinaryTree, y: NodeId) -> bool {
            match (
                (a.nodes[x].left, a.nodes[x].right),
                (b.nodes[y].left, b.nodes[y].right),
            ) {
                ((None, None), (None, None)) => true,
                ((Some(al), Some(ar)), (Some(bl), Some(br))) => {
                    rec(a, al, b, bl) && rec(a, ar, b, br)
                }
                _ => false,
            }
        }
        self.n_leaves == other.n_leaves && rec(self, self.root, other, other.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_leaf_tree() -> FullBinaryTree {
        let mut b = TreeBuilder::new();
        let l1 = b.leaf();
        let l2 = b.leaf();
        let l3 = b.leaf();
        let inner = b.internal(l1, l2);
        let root = b.internal(inner, l3);
        b.build(root)
    }

    #[test]
    fn sizes_and_counts() {
        let t = three_leaf_tree();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.size(t.root()), 3);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn depths_are_levels() {
        let t = three_leaf_tree();
        assert_eq!(t.depth(t.root()), 0);
        let inner = t.node(t.root()).left.unwrap();
        assert_eq!(t.depth(inner), 1);
        let l1 = t.node(inner).left.unwrap();
        assert_eq!(t.depth(l1), 2);
    }

    #[test]
    fn ancestor_queries() {
        let t = three_leaf_tree();
        let root = t.root();
        let inner = t.node(root).left.unwrap();
        let l1 = t.node(inner).left.unwrap();
        let l3 = t.node(root).right.unwrap();
        assert!(t.is_ancestor(root, l1));
        assert!(t.is_ancestor(root, root));
        assert!(t.is_ancestor(inner, l1));
        assert!(!t.is_ancestor(l1, inner));
        assert!(!t.is_ancestor(inner, l3));
        assert_eq!(t.child_towards(root, l1), inner);
        assert_eq!(t.child_towards(root, l3), l3);
        assert_eq!(t.child_towards(inner, l1), l1);
    }

    #[test]
    fn interval_labels_match_structure() {
        let t = three_leaf_tree();
        let labels = t.interval_labels();
        assert_eq!(labels[t.root()], (0, 3));
        let inner = t.node(t.root()).left.unwrap();
        assert_eq!(labels[inner], (0, 2));
        let leaves = t.leaves_in_order();
        assert_eq!(labels[leaves[0]], (0, 1));
        assert_eq!(labels[leaves[1]], (1, 2));
        assert_eq!(labels[leaves[2]], (2, 3));
    }

    #[test]
    fn leaves_in_order_is_left_to_right() {
        let t = three_leaf_tree();
        let leaves = t.leaves_in_order();
        assert_eq!(leaves.len(), 3);
        let labels = t.interval_labels();
        for (idx, &leaf) in leaves.iter().enumerate() {
            assert_eq!(labels[leaf], (idx, idx + 1));
        }
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn builder_rejects_dags() {
        let mut b = TreeBuilder::new();
        let l1 = b.leaf();
        let l2 = b.leaf();
        let _x = b.internal(l1, l2);
        let _y = b.internal(l1, l2); // l1 already has a parent
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn builder_rejects_shared_child() {
        let mut b = TreeBuilder::new();
        let l1 = b.leaf();
        let _ = b.internal(l1, l1);
    }

    #[test]
    fn single_leaf_tree() {
        let mut b = TreeBuilder::new();
        let l = b.leaf();
        let t = b.build(l);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.n_nodes(), 1);
        assert!(t.is_leaf(t.root()));
    }

    #[test]
    fn same_shape_distinguishes() {
        let a = three_leaf_tree();
        let b = three_leaf_tree();
        assert!(a.same_shape(&b));
        let mut bb = TreeBuilder::new();
        let l1 = bb.leaf();
        let l2 = bb.leaf();
        let l3 = bb.leaf();
        let inner = bb.internal(l2, l3);
        let root = bb.internal(l1, inner);
        let c = bb.build(root);
        assert!(!a.same_shape(&c));
    }
}
