//! Heavy-chain decomposition from the proof of Lemma 3.3 (Fig. 1).
//!
//! For a node `x` with `i^2 < size(x) <= (i+1)^2`, at most one child of any
//! node on the way down can have size exceeding `i^2` (two would give
//! `size > 2 i^2 + 2 > (i+1)^2` for `i > 1`). Following those heavy
//! children yields a **chain** `v_1 = x, ..., v_k` ending at the first node
//! both of whose children have size `<= i^2`. The proof shows `k <= 2i + 1`
//! because the off-chain subtree sizes `n_1..n_{k-1}` are each at least 1
//! and sum to at most `2i`.
//!
//! The same decomposition powers the §5 processor reduction: a tree with
//! `i^2 < size <= (i+1)^2` splits into a partial tree with a small
//! root-to-gap size difference (`<= 2i`) and a subtree in the previous
//! size window — which is why only banded partial weights
//! (`(j-i)-(q-p) <= 2*ceil(sqrt(n))`) are ever needed.

use crate::tree::{FullBinaryTree, NodeId};

/// A heavy chain (see module docs).
#[derive(Debug, Clone)]
pub struct Chain {
    /// Chain nodes `v_1 = x, ..., v_k`, each of size `> threshold^2`.
    pub nodes: Vec<NodeId>,
    /// The window parameter `i`.
    pub threshold: u32,
    /// Sizes `n_j` of the off-chain child of `v_j` for `j < k`, plus the
    /// sizes `n_k`, `n_{k+1}` of the last node's two children.
    pub side_sizes: Vec<u32>,
}

impl Chain {
    /// Chain length `k`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the chain is a single node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Compute the heavy chain of `x` for window parameter `i` (`threshold`):
/// follow children of size `> i^2` until both children are `<= i^2`.
///
/// # Panics
/// If `size(x) <= i^2` (then `x` is not in the window) or `x` is a leaf
/// with `i >= 1`.
pub fn heavy_chain(tree: &FullBinaryTree, x: NodeId, threshold: u32) -> Chain {
    let t2 = threshold as u64 * threshold as u64;
    assert!(
        tree.size(x) as u64 > t2,
        "chain root must have size > i^2 (size={}, i={})",
        tree.size(x),
        threshold
    );
    let mut nodes = vec![x];
    let mut side_sizes = Vec::new();
    let mut v = x;
    loop {
        let node = tree.node(v);
        let (l, r) = match (node.left, node.right) {
            (Some(l), Some(r)) => (l, r),
            _ => break, // a heavy leaf can only happen for threshold = 0
        };
        let (ls, rs) = (tree.size(l) as u64, tree.size(r) as u64);
        debug_assert!(
            !(ls > t2 && rs > t2) || threshold <= 1,
            "at most one child can exceed i^2 for i > 1"
        );
        if ls > t2 {
            side_sizes.push(rs as u32);
            nodes.push(l);
            v = l;
        } else if rs > t2 {
            side_sizes.push(ls as u32);
            nodes.push(r);
            v = r;
        } else {
            side_sizes.push(ls as u32);
            side_sizes.push(rs as u32);
            break;
        }
    }
    Chain {
        nodes,
        threshold,
        side_sizes,
    }
}

/// The window parameter of a node: the unique `i >= 0` with
/// `i^2 < size(x) <= (i+1)^2`.
pub fn window_of(size: u32) -> u32 {
    // i = ceil(sqrt(size)) - 1.
    (crate::ceil_sqrt(size as u64) as u32).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn window_of_is_the_inverse_square() {
        for size in 1..=1000u32 {
            let i = window_of(size) as u64;
            let s = size as u64;
            assert!(i * i < s, "size={size} i={i}");
            assert!(s <= (i + 1) * (i + 1), "size={size} i={i}");
        }
    }

    #[test]
    fn chain_length_bound_on_all_shapes() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut trees = vec![
            gen::complete(90),
            gen::skewed(90, gen::Side::Left),
            gen::zigzag(90),
        ];
        for _ in 0..30 {
            trees.push(gen::random_split(
                2 + rand::Rng::gen_range(&mut rng, 0..150usize),
                &mut rng,
            ));
        }
        for t in &trees {
            for x in t.node_ids() {
                let size = t.size(x);
                if size < 2 {
                    continue;
                }
                let i = window_of(size);
                if i == 0 {
                    continue;
                }
                let chain = heavy_chain(t, x, i);
                assert!(
                    chain.len() as u64 <= 2 * i as u64 + 1,
                    "size={size} i={i} k={}",
                    chain.len()
                );
            }
        }
    }

    #[test]
    fn chain_nodes_are_heavy_and_terminal_is_light() {
        let t = gen::zigzag(100);
        let root = t.root();
        let i = window_of(t.size(root));
        let chain = heavy_chain(&t, root, i);
        let t2 = (i as u64) * (i as u64);
        for &v in &chain.nodes {
            assert!(t.size(v) as u64 > t2);
        }
        let last = *chain.nodes.last().unwrap();
        if let (Some(l), Some(r)) = (t.node(last).left, t.node(last).right) {
            assert!(t.size(l) as u64 <= t2);
            assert!(t.size(r) as u64 <= t2);
        }
    }

    #[test]
    fn side_sizes_sum_bound() {
        // n_1 + ... + n_{k+1} = size(x); the first k-1 sum to <= 2i when
        // size(x) <= (i+1)^2 and size(v_k) > i^2.
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..20 {
            let n = 5 + rand::Rng::gen_range(&mut rng, 0..200usize);
            let t = gen::random_split(n, &mut rng);
            let root = t.root();
            let i = window_of(t.size(root));
            if i == 0 {
                continue;
            }
            let chain = heavy_chain(&t, root, i);
            let total: u64 = chain.side_sizes.iter().map(|&s| s as u64).sum();
            assert_eq!(
                total,
                t.size(root) as u64,
                "side sizes partition the leaves"
            );
            if chain.len() >= 2 {
                let off_chain: u64 = chain.side_sizes[..chain.len() - 1]
                    .iter()
                    .map(|&s| s as u64)
                    .sum();
                assert!(
                    off_chain <= 2 * i as u64,
                    "n={n} off-chain sum {off_chain} > 2i = {}",
                    2 * i
                );
            }
        }
    }

    #[test]
    fn chain_on_complete_tree_is_short() {
        let t = gen::complete(256);
        let i = window_of(256); // 15 (15^2=225 < 256 <= 256)
        let chain = heavy_chain(&t, t.root(), i);
        // Balanced halving exits the window quickly: one step halves size.
        assert!(chain.len() <= 3, "k={}", chain.len());
    }
}
