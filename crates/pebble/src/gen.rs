//! Tree-shape generators: the paper's Figure 2 shapes and random models.
//!
//! * [`complete`] — balanced splits; pebbles in `O(log n)` moves;
//! * [`skewed`] — a pure left (or right) caterpillar, Fig. 2b bottom;
//! * [`zigzag`] — the caterpillar that turns at every level, Fig. 2a: the
//!   pathological worst case for which the game needs `Theta(sqrt(n))`
//!   moves, because the restricted square can never compose across a turn;
//! * [`random_split`] — every internal node splits its `m` leaves at a
//!   uniformly random point, the model assumed by the §6 average-case
//!   analysis ("the optimal partition value `k` is equally likely");
//! * [`random_remy`] — uniform over all binary tree shapes (Catalan
//!   distribution) via Rémy's algorithm, a stricter random model used to
//!   check the robustness of the §6 conclusion;
//! * [`from_shape`] — build from an explicit [`TreeShape`] term, used by
//!   property-based tests.

use rand::Rng;

use crate::tree::{FullBinaryTree, NodeId, TreeBuilder};

/// Which side the deep subtree hangs on for skewed caterpillars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Spine descends through left children.
    Left,
    /// Spine descends through right children.
    Right,
}

/// An explicit tree-shape term for tests and serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeShape {
    /// A single leaf.
    Leaf,
    /// An internal node over two subtrees.
    Node(Box<TreeShape>, Box<TreeShape>),
}

impl TreeShape {
    /// Number of leaves of the shape.
    pub fn n_leaves(&self) -> usize {
        match self {
            TreeShape::Leaf => 1,
            TreeShape::Node(l, r) => l.n_leaves() + r.n_leaves(),
        }
    }
}

/// Perfectly balanced splits: `m` leaves split as `ceil(m/2)` / `floor(m/2)`.
///
/// For powers of two this is the complete binary tree of Fig. 2b (top).
pub fn complete(n_leaves: usize) -> FullBinaryTree {
    assert!(n_leaves >= 1);
    let mut b = TreeBuilder::with_leaf_capacity(n_leaves);
    let root = build_balanced(&mut b, n_leaves);
    b.build(root)
}

fn build_balanced(b: &mut TreeBuilder, m: usize) -> NodeId {
    if m == 1 {
        b.leaf()
    } else {
        let half = m / 2;
        let l = build_balanced(b, m - half);
        let r = build_balanced(b, half);
        b.internal(l, r)
    }
}

/// A caterpillar: the spine always descends on `side` (Fig. 2b bottom,
/// "skewed binary tree"). Height is `n_leaves - 1`.
pub fn skewed(n_leaves: usize, side: Side) -> FullBinaryTree {
    assert!(n_leaves >= 1);
    let mut b = TreeBuilder::with_leaf_capacity(n_leaves);
    let mut spine = b.leaf();
    for _ in 1..n_leaves {
        let leaf = b.leaf();
        spine = match side {
            Side::Left => b.internal(spine, leaf),
            Side::Right => b.internal(leaf, spine),
        };
    }
    b.build(spine)
}

/// The zigzag caterpillar of Fig. 2a: the spine alternates sides at every
/// level ("the zigzag tree makes a turn on every level"). This is the
/// paper's pathological worst case: the restricted square move of the game
/// (and the restricted composition of `a-square`) cannot accelerate across
/// a turn, forcing `Theta(sqrt(n))` moves.
pub fn zigzag(n_leaves: usize) -> FullBinaryTree {
    assert!(n_leaves >= 1);
    let mut b = TreeBuilder::with_leaf_capacity(n_leaves);
    let mut spine = b.leaf();
    let mut side = Side::Left;
    for _ in 1..n_leaves {
        let leaf = b.leaf();
        spine = match side {
            Side::Left => b.internal(spine, leaf),
            Side::Right => b.internal(leaf, spine),
        };
        side = match side {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        };
    }
    b.build(spine)
}

/// Random binary tree under the **uniform-split** model of §6: an interval
/// of `m` leaves is split at a position chosen uniformly from the `m - 1`
/// possibilities, recursively.
pub fn random_split<R: Rng>(n_leaves: usize, rng: &mut R) -> FullBinaryTree {
    assert!(n_leaves >= 1);
    let mut b = TreeBuilder::with_leaf_capacity(n_leaves);
    let root = build_random_split(&mut b, n_leaves, rng);
    b.build(root)
}

fn build_random_split<R: Rng>(b: &mut TreeBuilder, m: usize, rng: &mut R) -> NodeId {
    if m == 1 {
        b.leaf()
    } else {
        let k = rng.gen_range(1..m);
        let l = build_random_split(b, k, rng);
        let r = build_random_split(b, m - k, rng);
        b.internal(l, r)
    }
}

/// Uniformly random binary tree shape (Catalan distribution) by Rémy's
/// algorithm: repeatedly pick a uniformly random node `v` (out of the
/// current `2t - 1`), splice in a fresh internal node in `v`'s place whose
/// one child (random side) is a fresh leaf and whose other child is `v`.
pub fn random_remy<R: Rng>(n_leaves: usize, rng: &mut R) -> FullBinaryTree {
    assert!(n_leaves >= 1);
    // Grow a pointer structure, then convert via the builder.
    struct Slot {
        left: Option<usize>,
        right: Option<usize>,
        parent: Option<usize>,
    }
    let mut slots: Vec<Slot> = vec![Slot {
        left: None,
        right: None,
        parent: None,
    }];
    let mut root = 0usize;
    for t in 1..n_leaves {
        let v = rng.gen_range(0..2 * t - 1);
        let leaf_left = rng.gen_bool(0.5);
        let leaf = slots.len();
        slots.push(Slot {
            left: None,
            right: None,
            parent: None,
        });
        let internal = slots.len();
        let (l, r) = if leaf_left { (leaf, v) } else { (v, leaf) };
        slots.push(Slot {
            left: Some(l),
            right: Some(r),
            parent: slots[v].parent,
        });
        if let Some(p) = slots[v].parent {
            if slots[p].left == Some(v) {
                slots[p].left = Some(internal);
            } else {
                slots[p].right = Some(internal);
            }
        } else {
            root = internal;
        }
        slots[v].parent = Some(internal);
        slots[leaf].parent = Some(internal);
    }
    // Convert slots to a builder tree bottom-up (post-order).
    let mut b = TreeBuilder::with_leaf_capacity(n_leaves);
    let mut mapped: Vec<Option<NodeId>> = vec![None; slots.len()];
    let mut stack: Vec<(usize, bool)> = vec![(root, true)];
    while let Some((x, entering)) = stack.pop() {
        if entering {
            match (slots[x].left, slots[x].right) {
                (Some(l), Some(r)) => {
                    stack.push((x, false));
                    stack.push((r, true));
                    stack.push((l, true));
                }
                _ => mapped[x] = Some(b.leaf()),
            }
        } else {
            let l = mapped[slots[x].left.unwrap()].unwrap();
            let r = mapped[slots[x].right.unwrap()].unwrap();
            mapped[x] = Some(b.internal(l, r));
        }
    }
    b.build(mapped[root].unwrap())
}

/// Build a [`FullBinaryTree`] from a [`TreeShape`] term.
pub fn from_shape(shape: &TreeShape) -> FullBinaryTree {
    let mut b = TreeBuilder::with_leaf_capacity(shape.n_leaves());
    let root = build_shape(&mut b, shape);
    b.build(root)
}

fn build_shape(b: &mut TreeBuilder, s: &TreeShape) -> NodeId {
    match s {
        TreeShape::Leaf => b.leaf(),
        TreeShape::Node(l, r) => {
            let li = build_shape(b, l);
            let ri = build_shape(b, r);
            b.internal(li, ri)
        }
    }
}

/// Extract the [`TreeShape`] term of a built tree (inverse of
/// [`from_shape`]).
pub fn to_shape(tree: &FullBinaryTree) -> TreeShape {
    fn rec(t: &FullBinaryTree, x: NodeId) -> TreeShape {
        match (t.node(x).left, t.node(x).right) {
            (Some(l), Some(r)) => TreeShape::Node(Box::new(rec(t, l)), Box::new(rec(t, r))),
            _ => TreeShape::Leaf,
        }
    }
    rec(tree, tree.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_is_balanced() {
        for n in 1..=64usize {
            let t = complete(n);
            assert_eq!(t.n_leaves(), n, "n={n}");
            assert_eq!(t.n_nodes(), 2 * n - 1);
            // Height of a balanced tree is ceil(log2 n).
            let expect = (n as f64).log2().ceil() as u32;
            assert_eq!(t.height(), expect, "n={n}");
        }
    }

    #[test]
    fn skewed_is_a_path() {
        for n in 1..=32usize {
            let t = skewed(n, Side::Left);
            assert_eq!(t.n_leaves(), n);
            assert_eq!(
                t.height() as usize,
                n.saturating_sub(1).max(usize::from(n > 1))
            );
        }
        let l = skewed(8, Side::Left);
        let r = skewed(8, Side::Right);
        assert!(!l.same_shape(&r) || l.n_leaves() <= 2);
    }

    #[test]
    fn zigzag_turns_every_level() {
        let t = zigzag(8);
        assert_eq!(t.n_leaves(), 8);
        assert_eq!(t.height(), 7);
        // Walk the spine: the internal child must alternate sides.
        let mut x = t.root();
        let mut last_side: Option<Side> = None;
        while !t.is_leaf(x) {
            let l = t.node(x).left.unwrap();
            let r = t.node(x).right.unwrap();
            let (next, side) = if !t.is_leaf(l) || t.size(l) > 1 {
                if t.size(l) > t.size(r) {
                    (l, Side::Left)
                } else {
                    (r, Side::Right)
                }
            } else {
                (r, Side::Right)
            };
            if t.size(next) > 1 {
                if let Some(prev) = last_side {
                    assert_ne!(prev, side, "spine must alternate");
                }
                last_side = Some(side);
            }
            x = next;
        }
    }

    #[test]
    fn random_split_has_right_leaf_count() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in 1..=40usize {
            let t = random_split(n, &mut rng);
            assert_eq!(t.n_leaves(), n);
            assert_eq!(t.n_nodes(), 2 * n - 1);
        }
    }

    #[test]
    fn random_remy_has_right_leaf_count() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in 1..=30usize {
            let t = random_remy(n, &mut rng);
            assert_eq!(t.n_leaves(), n, "n={n}");
        }
    }

    #[test]
    fn remy_small_cases_cover_all_shapes() {
        // n = 3 has 2 shapes; both should appear over many samples.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_left = false;
        let mut seen_right = false;
        for _ in 0..200 {
            let t = random_remy(3, &mut rng);
            let root = t.root();
            let l = t.node(root).left.unwrap();
            if t.is_leaf(l) {
                seen_right = true;
            } else {
                seen_left = true;
            }
        }
        assert!(seen_left && seen_right, "both 3-leaf shapes should occur");
    }

    #[test]
    fn shape_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(11);
        for n in 1..=20usize {
            let t = random_split(n, &mut rng);
            let s = to_shape(&t);
            assert_eq!(s.n_leaves(), n);
            let t2 = from_shape(&s);
            assert!(t.same_shape(&t2));
        }
    }
}
