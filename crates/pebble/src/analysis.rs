//! Average-case analysis of the game (§6).
//!
//! Under the model that every internal node splits its leaves at a
//! uniformly random position, the paper bounds the expected number of
//! moves by the recurrence
//!
//! ```text
//! T(1) = 0,
//! T(n) = 1 + (1 / (n-1)) * sum_{i=1}^{n-1} max(T(i), T(n-i)),
//! ```
//!
//! which is `O(log n)` — so the algorithm typically finishes in
//! `O(log^2 n)` time rather than the worst-case `O(sqrt(n) log n)`.
//!
//! This module evaluates the recurrence exactly (using monotonicity of `T`
//! and prefix sums, `O(n)` per value) and gathers empirical move counts on
//! random trees for comparison. The recurrence models "a node pebbles one
//! move after its slower child" and ignores the square acceleration, so it
//! upper-bounds the expected empirical count; both are `Theta(log n)`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::game::{moves_to_pebble, SquareRule};
use crate::gen;

/// Evaluate `T(1..=n_max)` of the §6 recurrence exactly.
///
/// Uses the monotonicity of `T` (verified by a test) to rewrite
/// `sum_i max(T(i), T(n-i))` with prefix sums, so the whole table costs
/// `O(n_max)` time.
pub fn recurrence_t(n_max: usize) -> Vec<f64> {
    assert!(n_max >= 1);
    let mut t = vec![0.0f64; n_max + 1];
    // prefix[m] = sum_{j=1}^{m} T(j)
    let mut prefix = vec![0.0f64; n_max + 1];
    for n in 2..=n_max {
        let sum_max = if n % 2 == 0 {
            let half = n / 2;
            2.0 * (prefix[n - 1] - prefix[half]) + t[half]
        } else {
            let lo = n.div_ceil(2);
            2.0 * (prefix[n - 1] - prefix[lo - 1])
        };
        t[n] = 1.0 + sum_max / (n - 1) as f64;
        prefix[n] = prefix[n - 1] + t[n];
    }
    // Fill prefix[1] retroactively unused; t[0] unused.
    t
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SampleStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for single samples).
    pub std_dev: f64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Number of samples.
    pub samples: usize,
}

impl SampleStats {
    /// Compute statistics from raw values.
    ///
    /// # Panics
    /// If `values` is empty.
    pub fn from_values(values: &[u64]) -> Self {
        assert!(!values.is_empty());
        let n = values.len() as f64;
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = if values.len() > 1 {
            values
                .iter()
                .map(|&v| (v as f64 - mean).powi(2))
                .sum::<f64>()
                / (n - 1.0)
        } else {
            0.0
        };
        SampleStats {
            mean,
            std_dev: var.sqrt(),
            min: *values.iter().min().unwrap(),
            max: *values.iter().max().unwrap(),
            samples: values.len(),
        }
    }
}

/// The random-tree model to sample from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RandomModel {
    /// Uniform split positions (the paper's §6 model).
    UniformSplit,
    /// Uniform over binary tree shapes (Catalan / Rémy).
    Catalan,
}

/// Empirical distribution of game move counts on random trees with
/// `n` leaves.
pub fn empirical_moves(
    n: usize,
    trials: usize,
    model: RandomModel,
    rule: SquareRule,
    seed: u64,
) -> SampleStats {
    let mut rng = SmallRng::seed_from_u64(seed);
    let values: Vec<u64> = (0..trials)
        .map(|_| {
            let tree = match model {
                RandomModel::UniformSplit => gen::random_split(n, &mut rng),
                RandomModel::Catalan => gen::random_remy(n, &mut rng),
            };
            moves_to_pebble(&tree, rule)
        })
        .collect();
    SampleStats::from_values(&values)
}

/// Fit `y ~ a * x^b` by least squares on `(ln x, ln y)`; returns `(a, b)`.
/// Used by the experiment harnesses to report growth exponents (e.g. the
/// `~0.5` exponent of the zigzag worst case).
pub fn fit_power_law(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = ((sy - b * sx) / n).exp();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_base_cases() {
        let t = recurrence_t(4);
        assert_eq!(t[1], 0.0);
        assert_eq!(t[2], 1.0); // only split is (1,1): max(0,0)+1
                               // T(3) = 1 + (max(T1,T2) + max(T2,T1)) / 2 = 1 + T2 = 2.
        assert!((t[3] - 2.0).abs() < 1e-12);
        // T(4) = 1 + (T3 + T2 + T3)/3 = 1 + 5/3.
        assert!((t[4] - (1.0 + 5.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn recurrence_matches_direct_evaluation() {
        // Cross-check the prefix-sum evaluation against the O(n^2) direct
        // form for small n.
        let fast = recurrence_t(200);
        let mut direct = vec![0.0f64; 201];
        for n in 2..=200usize {
            let mut s = 0.0;
            for i in 1..n {
                s += direct[i].max(direct[n - i]);
            }
            direct[n] = 1.0 + s / (n - 1) as f64;
        }
        for n in 1..=200 {
            assert!((fast[n] - direct[n]).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn recurrence_is_monotone_and_logarithmic() {
        let t = recurrence_t(20_000);
        for n in 2..=20_000usize {
            assert!(t[n] + 1e-12 >= t[n - 1], "monotone at {n}");
        }
        // O(log n): T(n) / ln(n) should be bounded by a small constant.
        for n in [100usize, 1_000, 10_000, 20_000] {
            let ratio = t[n] / (n as f64).ln();
            assert!(ratio < 4.0, "n={n} ratio={ratio}");
            assert!(ratio > 0.5, "n={n} ratio={ratio}");
        }
        // Growth from n to n^2 should about double T (log behaviour).
        let r = t[10_000] / t[100];
        assert!(r > 1.5 && r < 2.6, "T(10000)/T(100) = {r}");
    }

    #[test]
    fn empirical_moves_are_logarithmic_on_average() {
        let t = recurrence_t(512);
        for n in [64usize, 256, 512] {
            let stats = empirical_moves(n, 60, RandomModel::UniformSplit, SquareRule::Modified, 42);
            // The recurrence upper-bounds the mean (it ignores square
            // acceleration); allow a +1 cushion for sampling noise.
            assert!(
                stats.mean <= t[n] + 1.0,
                "n={n}: mean {} vs T(n) {}",
                stats.mean,
                t[n]
            );
            // And the mean must be clearly sub-sqrt.
            assert!(stats.mean < (n as f64).sqrt(), "n={n} mean={}", stats.mean);
        }
    }

    #[test]
    fn sample_stats_basics() {
        let s = SampleStats::from_values(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert_eq!(s.samples, 3);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        let single = SampleStats::from_values(&[7]);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn power_law_fit_recovers_exponents() {
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let x = (i * 10) as f64;
                (x, 3.0 * x.powf(0.5))
            })
            .collect();
        let (a, b) = fit_power_law(&pts);
        assert!((b - 0.5).abs() < 1e-9, "b={b}");
        assert!((a - 3.0).abs() < 1e-6, "a={a}");
    }
}
