//! ASCII renderings of tree shapes — regenerates the paper's Fig. 2
//! illustrations (zigzag, complete and skewed binary trees).

use crate::tree::{FullBinaryTree, NodeId};

/// Render the tree as an indented outline, one node per line:
///
/// ```text
/// (0,8) n=8
/// ├─(0,7) n=7
/// │ ├─(0,1)
/// ...
/// ```
pub fn render_indented(tree: &FullBinaryTree) -> String {
    let labels = tree.interval_labels();
    let mut out = String::new();
    fn rec(
        tree: &FullBinaryTree,
        labels: &[(usize, usize)],
        x: NodeId,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
    ) {
        let (i, j) = labels[x];
        if is_root {
            out.push_str(&format!("({i},{j}) n={}\n", tree.size(x)));
        } else {
            let branch = if is_last { "└─" } else { "├─" };
            if tree.is_leaf(x) {
                out.push_str(&format!("{prefix}{branch}({i},{j})\n"));
            } else {
                out.push_str(&format!("{prefix}{branch}({i},{j}) n={}\n", tree.size(x)));
            }
        }
        if let (Some(l), Some(r)) = (tree.node(x).left, tree.node(x).right) {
            let child_prefix = if is_root {
                String::new()
            } else {
                format!("{prefix}{}", if is_last { "  " } else { "│ " })
            };
            rec(tree, labels, l, &child_prefix, false, false, out);
            rec(tree, labels, r, &child_prefix, true, false, out);
        }
    }
    rec(tree, &labels, tree.root(), "", true, true, &mut out);
    out
}

/// Render as a bracket expression with `·` leaves: `((··)·)` etc.
pub fn render_brackets(tree: &FullBinaryTree) -> String {
    fn rec(tree: &FullBinaryTree, x: NodeId, out: &mut String) {
        match (tree.node(x).left, tree.node(x).right) {
            (Some(l), Some(r)) => {
                out.push('(');
                rec(tree, l, out);
                rec(tree, r, out);
                out.push(')');
            }
            _ => out.push('·'),
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), &mut out);
    out
}

/// A one-line profile of the spine: for caterpillar-like trees, the
/// sequence of turns (`L`/`R`) taken by the largest-child path from the
/// root. The zigzag tree of Fig. 2a reads `LRLRLR…` and the skewed tree of
/// Fig. 2b reads `LLLL…`.
pub fn spine_profile(tree: &FullBinaryTree) -> String {
    let mut out = String::new();
    let mut x = tree.root();
    while let (Some(l), Some(r)) = (tree.node(x).left, tree.node(x).right) {
        if tree.size(l) >= tree.size(r) {
            out.push('L');
            x = l;
        } else {
            out.push('R');
            x = r;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn brackets_of_small_trees() {
        assert_eq!(render_brackets(&gen::complete(1)), "·");
        assert_eq!(render_brackets(&gen::complete(2)), "(··)");
        assert_eq!(render_brackets(&gen::skewed(3, gen::Side::Left)), "((··)·)");
        assert_eq!(
            render_brackets(&gen::skewed(3, gen::Side::Right)),
            "(·(··))"
        );
    }

    #[test]
    fn bracket_length_is_linear() {
        let t = gen::zigzag(50);
        let s = render_brackets(&t);
        // 50 leaves + 49 internal nodes with two brackets each.
        assert_eq!(s.chars().count(), 50 + 2 * 49);
    }

    #[test]
    fn spine_profiles_match_fig2() {
        let zig = spine_profile(&gen::zigzag(9));
        assert!(zig.starts_with("LRLR") || zig.starts_with("RLRL"), "{zig}");
        let skew = spine_profile(&gen::skewed(9, gen::Side::Left));
        assert!(skew.chars().all(|c| c == 'L'), "{skew}");
    }

    #[test]
    fn indented_contains_all_intervals() {
        let t = gen::complete(4);
        let s = render_indented(&t);
        for needle in [
            "(0,4)", "(0,2)", "(2,4)", "(0,1)", "(1,2)", "(2,3)", "(3,4)",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
