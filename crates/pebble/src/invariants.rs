//! The two invariants stated after Lemma 3.3 (§3).
//!
//! After `2k` moves, for each node `x` of the tree:
//!
//! * **(a)** if `size(x) <= k^2`, then `x` is pebbled;
//! * **(b)** `size(x) - size(cond(x)) >= 2k + 1`, or no son of `cond(x)` is
//!   pebbled, or `cond(x)` is pebbled.
//!
//! One boundary case needs an interpretation the paper leaves implicit:
//! pebbles placed in the pebble sub-step of move `2k` itself have not yet
//! been seen by any activate or square, so a node `x` whose `cond(x)`
//! acquired a pebbled son only in that final sub-step is exactly on
//! schedule even though the literal disjunction is false. Invariant (b)
//! therefore evaluates "son of `cond(x)` is pebbled" against the state
//! *before* the last pebble sub-step (the state the move's activate and
//! square actually observed); "`cond(x)` is pebbled" uses the current
//! state (the weaker, generous reading). The caterpillar realizes (b)
//! with equality (the size gap grows by exactly one per square), which
//! the tests confirm.

use crate::game::PebbleGame;
use crate::tree::NodeId;

/// A violation of one of the §3 invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant: 'a' or 'b'.
    pub which: char,
    /// Offending node.
    pub node: NodeId,
    /// Explanation.
    pub detail: String,
}

/// Check invariant (a) after `moves` moves: every node of size at most
/// `floor(moves / 2)^2` must be pebbled.
pub fn check_size_invariant(game: &PebbleGame<'_>, moves: u64) -> Result<(), InvariantViolation> {
    let k = moves / 2;
    let bound = (k * k).min(u32::MAX as u64) as u32;
    let tree = game.tree();
    for x in tree.node_ids() {
        if tree.size(x) <= bound && !game.is_pebbled(x) {
            return Err(InvariantViolation {
                which: 'a',
                node: x,
                detail: format!(
                    "after {moves} moves node of size {} (<= {bound}) is unpebbled",
                    tree.size(x)
                ),
            });
        }
    }
    Ok(())
}

/// Check invariant (b) after `moves = 2k` moves (only meaningful at even
/// move counts; odd counts return `Ok` vacuously).
pub fn check_cond_invariant(game: &PebbleGame<'_>, moves: u64) -> Result<(), InvariantViolation> {
    if !moves.is_multiple_of(2) {
        return Ok(());
    }
    let k = moves / 2;
    let tree = game.tree();
    for x in tree.node_ids() {
        let y = game.cond(x);
        if y == x {
            // Vacuous: x has not been activated yet (see module docs).
            continue;
        }
        let gap = tree.size(x) as u64 - tree.size(y) as u64;
        if gap > 2 * k {
            continue;
        }
        if game.is_pebbled(y) {
            continue;
        }
        let node = tree.node(y);
        // Sons are judged by the state before the last pebble sub-step
        // (see module docs).
        let son_pebbled = match (node.left, node.right) {
            (Some(l), Some(r)) => {
                game.was_pebbled_before_last_pebble(l) || game.was_pebbled_before_last_pebble(r)
            }
            _ => false, // a leaf has no sons
        };
        if !son_pebbled {
            continue;
        }
        return Err(InvariantViolation {
            which: 'b',
            node: x,
            detail: format!(
                "after {moves} moves: size gap {gap} < {}, cond unpebbled, son of cond pebbled",
                2 * k + 1
            ),
        });
    }
    Ok(())
}

/// Play a full game while checking both invariants after every move.
/// Returns the move count, or the first violation.
pub fn play_checked(game: &mut PebbleGame<'_>) -> Result<u64, InvariantViolation> {
    while !game.root_pebbled() {
        game.do_move();
        let m = game.moves();
        check_size_invariant(game, m)?;
        check_cond_invariant(game, m)?;
    }
    Ok(game.moves())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::SquareRule;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn invariants_hold_on_fixed_shapes() {
        for n in [2usize, 3, 4, 7, 16, 33, 64, 100, 225, 500] {
            for t in [
                gen::complete(n),
                gen::skewed(n, gen::Side::Left),
                gen::skewed(n, gen::Side::Right),
                gen::zigzag(n),
            ] {
                let mut g = PebbleGame::new(&t, SquareRule::Modified);
                play_checked(&mut g).unwrap_or_else(|v| panic!("n={n}: {v:?}"));
            }
        }
    }

    #[test]
    fn invariants_hold_on_random_trees() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            let n = 2 + (rand::Rng::gen_range(&mut rng, 0..200usize));
            let t = gen::random_split(n, &mut rng);
            let mut g = PebbleGame::new(&t, SquareRule::Modified);
            play_checked(&mut g).unwrap_or_else(|v| panic!("n={n}: {v:?}"));
        }
    }

    #[test]
    fn invariants_hold_under_pointer_jump_too() {
        // Invariant (a) is a consequence of the move bound, which pointer
        // jumping only improves; (b)'s gap growth is at least as fast.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = 2 + (rand::Rng::gen_range(&mut rng, 0..100usize));
            let t = gen::random_split(n, &mut rng);
            let mut g = PebbleGame::new(&t, SquareRule::PointerJump);
            while !g.root_pebbled() {
                g.do_move();
                check_size_invariant(&g, g.moves()).unwrap_or_else(|v| panic!("n={n}: {v:?}"));
            }
        }
    }

    #[test]
    fn size_invariant_detects_a_sabotaged_game() {
        // A game that never pebbles cannot satisfy invariant (a) once
        // k^2 >= 2 (internal nodes of size 2 must be pebbled by then).
        let t = gen::complete(8);
        let g = PebbleGame::new(&t, SquareRule::Modified);
        // 4 "claimed" moves without actually playing.
        let r = check_size_invariant(&g, 4);
        assert!(r.is_err());
        assert_eq!(r.unwrap_err().which, 'a');
    }
}
